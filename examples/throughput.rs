//! The TPC-D throughput test across the paper's three configurations:
//! the isolated RDBMS, SAP R/3 with Native SQL reports, and SAP R/3 with
//! Open SQL reports. Four query streams run their permuted Q1..Q17
//! sequences while an update stream applies UF1/UF2 pairs, and the driver
//! reports the per-stream metered breakdown — busy time, lock-wait time —
//! and the composite QthD metric.
//!
//! ```text
//! cargo run --release --example throughput
//! ```

use r3::reports::SapInterface;
use r3::throughput::SapWorkload;
use r3::{R3System, Release};
use tpcd::throughput::StreamWorkload;
use tpcd::{
    run_throughput_test, DbGen, IsolatedWorkload, LockModel, QueryParams, ThroughputConfig,
};

fn report(result: &tpcd::ThroughputResult) {
    println!("== {} ({} locking) ==", result.configuration, result.lock_model);
    println!("   {} query streams + update stream, SF {}", result.query_streams, result.sf);
    println!("   stream   units   busy(s)   lock-wait(s)   finished(s)");
    for s in &result.streams {
        println!(
            "   {:<6} {:>6} {:>9.2} {:>14.3} {:>13.2}",
            s.stream,
            s.units.len(),
            s.busy_seconds,
            s.lock_wait_seconds,
            s.finished_at
        );
    }
    println!(
        "   elapsed {:.2} simulated s   QthD@{}MB = {:.2}\n",
        result.elapsed_seconds,
        (result.sf * 1000.0).round(),
        result.qthd
    );
}

fn main() {
    let sf = 0.005;
    // Each configuration runs under the old table-granular lock model and
    // the hierarchical (intention + key-range) model, so the update
    // stream's lock-wait drop is visible side by side.
    let models = [LockModel::Table, LockModel::Hierarchical];
    println!("TPC-D throughput test, SF={sf}, 4 query streams, seed 42\n");

    // Configuration 1: the isolated RDBMS.
    let db = rdbms::Database::with_defaults();
    let gen = DbGen::new(sf);
    tpcd::schema::load(&db, &gen).expect("load");
    let params = QueryParams::for_scale(sf);
    for lock_model in models {
        let config =
            ThroughputConfig { query_streams: 4, seed: 42, lock_model, ..Default::default() };
        let workload = IsolatedWorkload { db: &db, gen: &gen };
        let result = run_throughput_test(&workload, &params, sf, &config).expect("throughput");
        report(&result);
    }

    // Configurations 2 and 3: SAP R/3 3.0E with Native and Open SQL.
    for iface in [SapInterface::Native, SapInterface::Open] {
        let sys = R3System::install_default(Release::R30).expect("install");
        sys.load_tpcd(&gen).expect("load");
        for lock_model in models {
            let config =
                ThroughputConfig { query_streams: 4, seed: 42, lock_model, ..Default::default() };
            let workload = SapWorkload { sys: &sys, iface, gen: &gen };
            println!("running {} ({} locking) ...", workload.name(), lock_model.as_str());
            let result = run_throughput_test(&workload, &params, sf, &config).expect("throughput");
            report(&result);
        }
    }
}
