//! Run one TPC-D query in every configuration of the paper's study and
//! compare: isolated RDBMS, then SAP R/3 Releases 2.2G and 3.0E through
//! Native SQL and Open SQL.
//!
//! ```text
//! cargo run --release --example three_tier_tpcd [-- <query number>]
//! ```

use r3::reports::{run_report, SapInterface};
use r3::{R3System, Release};
use rdbms::clock::fmt_duration;
use rdbms::Database;
use tpcd::{DbGen, QueryParams};

fn main() {
    let query: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    assert!((1..=17).contains(&query), "TPC-D has queries 1..=17");
    let sf = 0.002;
    let gen = DbGen::new(sf);
    let params = QueryParams::for_scale(sf);

    println!("TPC-D Q{query} ({}) at SF={sf}\n", tpcd::queries::query_name(query));

    // --- Configuration 1: the isolated RDBMS on the original schema -----
    let db = Database::with_defaults();
    tpcd::schema::load(&db, &gen).expect("load TPC-D");
    db.meter().reset();
    let before = db.snapshot();
    let result = tpcd::run_query(&db, query, &params).expect("query");
    let work = db.snapshot().since(&before);
    let rdbms_s = db.calibration().seconds(&work);
    println!(
        "isolated RDBMS          : {:>10}   ({} rows)",
        fmt_duration(rdbms_s),
        result.rows.len()
    );

    // --- Configurations 2-5: SAP R/3 ------------------------------------
    for release in [Release::R22, Release::R30] {
        let sys = R3System::install_default(release).expect("install R/3");
        sys.load_tpcd(&gen).expect("load SAP");
        sys.meter().reset();
        for iface in [SapInterface::Native, SapInterface::Open] {
            let r = run_report(&sys, iface, query, &params).expect("report");
            println!(
                "SAP R/3 {release} {iface:<11}: {:>10}   ({} rows, {} interface crossings)",
                fmt_duration(r.seconds),
                r.rows,
                r.work.ipc_crossings()
            );
        }
    }

    println!(
        "\nThe paper's point: the same business question costs dramatically\n\
         different amounts depending on where the query processing happens —\n\
         and none of the SAP configurations match the isolated-DBMS numbers\n\
         that database vendors publish."
    );
}
