//! Quickstart: spin up the relational engine, load a small TPC-D database,
//! and run two benchmark queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdbms::Database;
use tpcd::{DbGen, QueryParams};

fn main() {
    // 1. A fresh database engine (10 MB buffer pool, like the paper's
    //    default SAP installation).
    let db = Database::with_defaults();

    // 2. Generate and load TPC-D at a small scale factor. The generator is
    //    seeded: the same SF always produces the same database.
    let gen = DbGen::new(0.002);
    println!(
        "loading TPC-D SF={}: {} parts, {} customers, {} orders ...",
        gen.sf,
        gen.n_parts(),
        gen.n_customers(),
        gen.n_orders()
    );
    tpcd::schema::load(&db, &gen).expect("load");

    // 3. Plain SQL works against the engine.
    let n = db.query("SELECT COUNT(*) FROM lineitem").expect("count").scalar().expect("one value");
    println!("lineitem rows: {n}");

    // 4. Run TPC-D Q1 (pricing summary) and Q6 (forecasting revenue).
    let params = QueryParams::for_scale(gen.sf);
    let q1 = tpcd::run_query(&db, 1, &params).expect("Q1");
    println!("\nQ1 — pricing summary ({} groups):", q1.rows.len());
    println!("  rf ls        sum_qty       sum_charge   count");
    for row in &q1.rows {
        println!("  {}  {}  {:>12}  {:>15}  {:>6}", row[0], row[1], row[2], row[5], row[9]);
    }

    let q6 = tpcd::run_query(&db, 6, &params).expect("Q6");
    println!("\nQ6 — forecast revenue change: {}", q6.rows[0][0]);

    // 5. EXPLAIN shows the optimizer's choices.
    let plan = db.explain("SELECT COUNT(*) FROM orders WHERE o_orderkey = 42").expect("explain");
    println!("\nplan for a key lookup:\n{plan}");

    // 6. The deterministic cost clock metered everything we just did.
    let work = db.snapshot();
    let seconds = db.calibration().seconds(&work);
    println!("metered work: {work}");
    println!(
        "simulated time on the paper's 1996 hardware: {}",
        rdbms::clock::fmt_duration(seconds)
    );
}
