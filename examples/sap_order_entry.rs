//! The paper's motivating workload: a company running its business on SAP
//! R/3. Orders are entered through the checked application logic (batch
//! input), a sales clerk repeatedly looks up part master data (application
//! server buffering), and management asks a decision-support question
//! through Open SQL.
//!
//! ```text
//! cargo run --release --example sap_order_entry
//! ```

use r3::opensql::{CmpOp, Cond, SelectSpec};
use r3::{R3System, Release};
use rdbms::clock::fmt_duration;
use rdbms::sql::ast::AggFunc;
use rdbms::types::Value;
use tpcd::DbGen;

fn main() {
    let sys = R3System::install_default(Release::R30).expect("install R/3 3.0E");
    let gen = DbGen::new(0.002);
    sys.load_tpcd(&gen).expect("initial data load");
    println!("TPC-D Inc. is live on SAP R/3 3.0E (client {}).\n", r3::schema::MANDT);

    // --- 1. Enter new orders through batch input -------------------------
    let (orders, lineitems) = gen.update_stream(1);
    let mut idx = 0;
    let before = sys.snapshot();
    for order in &orders {
        let mut items = Vec::new();
        while idx < lineitems.len() && lineitems[idx].orderkey == order.orderkey {
            items.push(&lineitems[idx]);
            idx += 1;
        }
        sys.batch_input_order(order, &items).expect("order entry");
    }
    let work = sys.snapshot().since(&before);
    println!(
        "entered {} orders through the application logic: {} consistency-check units, {}",
        orders.len(),
        work.check_units(),
        fmt_duration(sys.calibration().seconds(&work))
    );

    // The checks are real: an order for an unknown customer is rejected.
    let mut bogus = orders[0].clone();
    bogus.orderkey += 1_000_000;
    bogus.custkey = 999_999_999;
    let err = sys.batch_input_order(&bogus, &[]);
    println!("order for unknown customer rejected: {}\n", err.unwrap_err());

    // --- 2. A sales clerk looks parts up, with and without buffering -----
    let lookups: Vec<Value> =
        (1..=gen.n_parts()).cycle().take(2000).map(r3::schema::key16).collect();
    let run_lookups = |label: &str| {
        let before = sys.snapshot();
        for key in &lookups {
            sys.open_select(
                &SelectSpec::from_table("MARA").cond(Cond::eq("MATNR", key.clone())).single(),
            )
            .expect("SELECT SINGLE MARA");
        }
        let work = sys.snapshot().since(&before);
        println!(
            "{label}: {} for 2000 lookups ({} DB crossings, {:.0}% buffer hits)",
            fmt_duration(sys.calibration().seconds(&work)),
            work.ipc_crossings(),
            work.cache_hit_ratio() * 100.0
        );
    };
    run_lookups("part lookups, no buffering     ");
    sys.buffer.set_capacity_bytes(20 << 20);
    sys.buffer.enable("MARA");
    run_lookups("part lookups, MARA buffered    ");
    run_lookups("part lookups, warm buffer      ");

    // --- 3. Management asks a question through Open SQL ------------------
    let report = sys
        .open_select(
            &SelectSpec::from_table("VBAK")
                .group(&["PRIOK"])
                .agg(AggFunc::Count, None)
                .agg(AggFunc::Sum, Some("NETWR"))
                .cond(Cond::new("AUDAT", CmpOp::Ge, Value::date(1995, 1, 1))),
        )
        .expect("Open SQL report");
    println!("\norder volume by priority since 1995 (Open SQL, pushed-down aggregation):");
    for row in &report.rows {
        println!("  {:<16} {:>6} orders, total {}", row[0], row[1], row[2]);
    }
}
