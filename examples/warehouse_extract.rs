//! Build a data warehouse from a running SAP R/3 system (the paper's
//! Section 5): extract the eight original TPC-D tables through Open SQL
//! reports, load them into a separate warehouse database, and show that
//! the warehouse answers the decision-support query far faster — at the
//! price of the extraction cost.
//!
//! ```text
//! cargo run --release --example warehouse_extract
//! ```

use r3::extract::extract_warehouse;
use r3::reports::{run_report, SapInterface};
use r3::{R3System, Release};
use rdbms::clock::fmt_duration;
use rdbms::Database;
use tpcd::{DbGen, QueryParams};

fn main() {
    let sf = 0.002;
    let gen = DbGen::new(sf);
    let params = QueryParams::for_scale(sf);

    let sys = R3System::install_default(Release::R30).expect("install");
    sys.load_tpcd(&gen).expect("load");
    println!("operational SAP R/3 system loaded (SF={sf}).\n");

    // --- What does Q5 cost against the operational SAP database? ---------
    sys.meter().reset();
    let op = run_report(&sys, SapInterface::Open, 5, &params).expect("Q5 on SAP");
    println!("Q5 on the operational SAP database (Open SQL): {}", fmt_duration(op.seconds));

    // --- Extract the warehouse (Table 9) ---------------------------------
    println!("\nextracting the warehouse through Open SQL reports:");
    sys.meter().reset();
    let extraction = extract_warehouse(&sys).expect("extract");
    let mut total = 0.0;
    for r in &extraction {
        println!(
            "  {:<9} {:>8} rows  {:>8} KB  {}",
            r.table,
            r.rows,
            r.ascii_bytes / 1024,
            fmt_duration(r.seconds)
        );
        total += r.seconds;
    }
    println!("  extraction total: {}", fmt_duration(total));

    // --- Load the warehouse and re-ask the question ----------------------
    // (The extraction produced ASCII; a warehouse load reads it back. We
    // load from the generator, which is byte-identical data.)
    let warehouse = Database::with_defaults();
    tpcd::schema::load(&warehouse, &gen).expect("warehouse load");
    warehouse.meter().reset();
    let before = warehouse.snapshot();
    let q5 = tpcd::run_query(&warehouse, 5, &params).expect("Q5 on warehouse");
    let wh_work = warehouse.snapshot().since(&before);
    let wh_s = warehouse.calibration().seconds(&wh_work);
    println!(
        "\nQ5 on the warehouse: {} ({} rows) — {:.0}x faster than the operational system",
        fmt_duration(wh_s),
        q5.rows.len(),
        op.seconds / wh_s.max(1e-9)
    );
    println!(
        "\nThe paper's conclusion: the warehouse pays off only if the queries\n\
         issued against it outweigh the extraction cost of {} (comparable to\n\
         one full Open SQL power test).",
        fmt_duration(total)
    );
}
