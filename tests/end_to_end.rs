//! Workspace-level integration tests: the whole reproduction pipeline,
//! spanning rdbms + tpcd + r3.

use r3::reports::{run_report, SapInterface};
use r3::{R3System, Release};
use rdbms::Database;
use tpcd::{DbGen, QueryParams};

const SF: f64 = 0.001;

#[test]
fn full_pipeline_generate_load_validate_query() {
    let gen = DbGen::new(SF);
    // Isolated RDBMS.
    let db = Database::with_defaults();
    tpcd::schema::load(&db, &gen).unwrap();
    let problems = tpcd::validate::validate(&db, &gen).unwrap();
    assert!(problems.is_empty(), "validation: {problems:?}");

    // SAP stack.
    let sys = R3System::install_default(Release::R30).unwrap();
    sys.load_tpcd(&gen).unwrap();

    // Q6 must give the identical answer in both worlds.
    let params = QueryParams::for_scale(SF);
    let isolated = tpcd::run_query(&db, 6, &params).unwrap();
    let sap = r3::reports::run_query_rows(&sys, SapInterface::Native, 6, &params).unwrap();
    assert_eq!(
        isolated.rows[0][0].as_decimal().unwrap(),
        sap[0][0].as_decimal().unwrap(),
        "Q6 answers must match across stacks"
    );
}

#[test]
fn power_test_shapes_hold() {
    // The paper's headline orderings at a small SF: the isolated RDBMS is
    // fastest; Native beats Open within each release; the 3.0 upgrade
    // helps both SAP variants (on the KONV-heavy queries).
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);

    let db = Database::with_defaults();
    tpcd::schema::load(&db, &gen).unwrap();
    db.meter().reset();
    let rdbms_result = tpcd::run_power_test(&db, &gen, &params).unwrap();
    let rdbms_total = rdbms_result.total_queries();

    let mut totals = std::collections::HashMap::new();
    for release in [Release::R22, Release::R30] {
        let sys = R3System::install_default(release).unwrap();
        sys.load_tpcd(&gen).unwrap();
        for iface in [SapInterface::Native, SapInterface::Open] {
            let mut total = 0.0;
            for n in 1..=17 {
                total += run_report(&sys, iface, n, &params).unwrap().seconds;
            }
            totals.insert((release, iface), total);
        }
    }
    let n22 = totals[&(Release::R22, SapInterface::Native)];
    let o22 = totals[&(Release::R22, SapInterface::Open)];
    let n30 = totals[&(Release::R30, SapInterface::Native)];
    let o30 = totals[&(Release::R30, SapInterface::Open)];

    assert!(rdbms_total < n30, "isolated RDBMS beats SAP Native 3.0: {rdbms_total} vs {n30}");
    assert!(n30 < o30, "Native 3.0 beats Open 3.0: {n30} vs {o30}");
    assert!(n22 < o22, "Native 2.2 beats Open 2.2: {n22} vs {o22}");
    assert!(n30 < n22, "the 3.0 upgrade helps Native: {n30} vs {n22}");
    assert!(o30 < o22, "the 3.0 upgrade helps Open massively: {o30} vs {o22}");
}

#[test]
fn q1_much_cheaper_after_30_upgrade() {
    // The paper's single most prominent result: Q1 dropped from ~2h15m to
    // ~1h after the upgrade (both interfaces), because the KONV joins
    // finally push down.
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);
    let mut t = std::collections::HashMap::new();
    for release in [Release::R22, Release::R30] {
        let sys = R3System::install_default(release).unwrap();
        sys.load_tpcd(&gen).unwrap();
        for iface in [SapInterface::Native, SapInterface::Open] {
            let r = run_report(&sys, iface, 1, &params).unwrap();
            t.insert((release, iface), r.seconds);
        }
    }
    for iface in [SapInterface::Native, SapInterface::Open] {
        let r22 = t[&(Release::R22, iface)];
        let r30 = t[&(Release::R30, iface)];
        assert!(
            r30 < r22 * 0.8,
            "{iface}: Q1 should drop substantially after the upgrade ({r22} -> {r30})"
        );
    }
}

#[test]
fn update_functions_round_trip_through_both_stacks() {
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);
    // RDBMS side.
    let db = Database::with_defaults();
    tpcd::schema::load(&db, &gen).unwrap();
    let q6_before = tpcd::run_query(&db, 6, &params).unwrap();
    tpcd::updates::uf1(&db, &gen, 1).unwrap();
    tpcd::updates::uf2(&db, &gen, 1).unwrap();
    let q6_after = tpcd::run_query(&db, 6, &params).unwrap();
    assert_eq!(q6_before.rows, q6_after.rows, "UF1+UF2 leave answers unchanged");

    // SAP side through batch input.
    let sys = R3System::install_default(Release::R22).unwrap();
    sys.load_tpcd(&gen).unwrap();
    let before = r3::reports::run_query_rows(&sys, SapInterface::Open, 6, &params).unwrap();
    r3::batch_input::batch_uf1(&sys, &gen, 1).unwrap();
    r3::batch_input::batch_uf2(&sys, &gen, 1).unwrap();
    let after = r3::reports::run_query_rows(&sys, SapInterface::Open, 6, &params).unwrap();
    assert_eq!(before, after);
}

#[test]
fn warehouse_extraction_total_comparable_to_open_power_test() {
    // Section 5's conclusion: extracting the warehouse costs about as much
    // as one full Open SQL power test.
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);
    let sys = R3System::install_default(Release::R30).unwrap();
    sys.load_tpcd(&gen).unwrap();

    let mut power_total = 0.0;
    for n in 1..=17 {
        power_total += run_report(&sys, SapInterface::Open, n, &params).unwrap().seconds;
    }
    sys.meter().reset();
    let extraction: f64 =
        r3::extract::extract_warehouse(&sys).unwrap().iter().map(|r| r.seconds).sum();
    let ratio = extraction / power_total;
    assert!(
        (0.2..5.0).contains(&ratio),
        "extraction ({extraction:.0}s) should be comparable to the Open power test \
         ({power_total:.0}s), ratio {ratio:.2}"
    );
}

#[test]
fn old_22_reports_still_run_on_30_with_22_performance() {
    // §3.4.4: "the old 2.2G Native and Open SQL reports were operational in
    // 3.0E, but they had virtually the same performance". Our 2.2 report
    // programs run against a 3.0 system by forcing the programs path.
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);
    let s30 = R3System::install_default(Release::R30).unwrap();
    s30.load_tpcd(&gen).unwrap();

    // The new (3.0) Open report for Q3 vs the same query executed with the
    // 2.2-style nested program (which still works on the 3.0 system —
    // single-table Open SQL statements are release-compatible).
    let new_style = run_report(&s30, SapInterface::Open, 3, &params).unwrap();

    let s22_style_sys = R3System::install_default(Release::R22).unwrap();
    s22_style_sys.load_tpcd(&gen).unwrap();
    let old_style = run_report(&s22_style_sys, SapInterface::Open, 3, &params).unwrap();

    assert_eq!(new_style.rows, old_style.rows, "same answer either way");
    assert!(
        old_style.seconds > new_style.seconds,
        "2.2-style nested report ({:.1}s) must be slower than the rewritten \
         3.0 report ({:.1}s)",
        old_style.seconds,
        new_style.seconds
    );
}

#[test]
fn meter_is_the_single_source_of_simulated_time() {
    // Simulated seconds must be reproducible: running the same query twice
    // on identical fresh systems gives identical metered work.
    let gen = DbGen::new(SF);
    let params = QueryParams::for_scale(SF);
    let work = |_: u32| {
        let sys = R3System::install_default(Release::R30).unwrap();
        sys.load_tpcd(&gen).unwrap();
        sys.meter().reset();
        let r = run_report(&sys, SapInterface::Open, 6, &params).unwrap();
        (r.work, r.seconds)
    };
    let (w1, s1) = work(1);
    let (w2, s2) = work(2);
    assert_eq!(w1, w2, "metered work must be deterministic");
    assert_eq!(s1, s2);
}
