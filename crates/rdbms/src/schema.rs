//! Table schemas and rows.

use crate::error::{DbError, DbResult};
use crate::types::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column { name: name.into().to_ascii_uppercase(), ty, nullable: true }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// A schema: an ordered list of columns, optionally qualified by a table
/// alias so expressions can resolve `alias.column` references.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
    /// Qualifier (table name or alias) per column; parallel to `columns`.
    qualifiers: Vec<Option<String>>,
}

pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        let qualifiers = vec![None; columns.len()];
        Schema { columns, qualifiers }
    }

    /// All columns qualified by the same name (a base-table scan).
    pub fn qualified(columns: Vec<Column>, qualifier: &str) -> Self {
        let q = Some(qualifier.to_ascii_uppercase());
        let qualifiers = vec![q; columns.len()];
        Schema { columns, qualifiers }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    pub fn qualifier(&self, i: usize) -> Option<&str> {
        self.qualifiers[i].as_deref()
    }

    /// Append another schema (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        let mut qualifiers = self.qualifiers.clone();
        qualifiers.extend(other.qualifiers.iter().cloned());
        Schema { columns, qualifiers }
    }

    /// Re-qualify every column (e.g. for `FROM (subquery) AS alias`).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        let q = Some(qualifier.to_ascii_uppercase());
        Schema { columns: self.columns.clone(), qualifiers: vec![q; self.columns.len()] }
    }

    /// Resolve a possibly-qualified column reference to an index.
    ///
    /// Ambiguous unqualified references are an analysis error, matching
    /// standard SQL name resolution.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        let name = name.to_ascii_uppercase();
        let qualifier = qualifier.map(|q| q.to_ascii_uppercase());
        let mut found: Option<usize> = None;
        for (i, col) in self.columns.iter().enumerate() {
            if col.name != name {
                continue;
            }
            if let Some(q) = &qualifier {
                if self.qualifiers[i].as_deref() != Some(q.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::analysis(format!("ambiguous column reference '{name}'")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let full = match &qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            DbError::analysis(format!("unknown column '{full}'"))
        })
    }

    /// Like [`Schema::resolve`], but a missing column is `Ok(None)` while
    /// ambiguity is still an error. Used by scoped name resolution, where a
    /// miss falls through to outer scopes.
    pub fn resolve_opt(&self, qualifier: Option<&str>, name: &str) -> DbResult<Option<usize>> {
        let name = name.to_ascii_uppercase();
        let qualifier = qualifier.map(|q| q.to_ascii_uppercase());
        let mut found: Option<usize> = None;
        for (i, col) in self.columns.iter().enumerate() {
            if col.name != name {
                continue;
            }
            if let Some(q) = &qualifier {
                if self.qualifiers[i].as_deref() != Some(q.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::analysis(format!("ambiguous column reference '{name}'")));
            }
            found = Some(i);
        }
        Ok(found)
    }

    /// Look up by name without error (used by the optimizer).
    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.resolve(qualifier, name).ok()
    }

    /// Fixed-width estimate of a row in bytes (planning only).
    pub fn estimated_row_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.fixed_width().unwrap_or(32) + 1).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if let Some(q) = &self.qualifiers[i] {
                write!(f, "{q}.")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A row of values. Rows are reference-counted internally where sharing
/// matters (hash join build sides); the public type is a plain vector for
/// ergonomic construction.
pub type Row = Vec<Value>;

/// Validate and coerce a row against a schema (INSERT path).
pub fn coerce_row(schema: &Schema, row: &[Value]) -> DbResult<Row> {
    if row.len() != schema.len() {
        return Err(DbError::execution(format!(
            "row has {} values, table has {} columns",
            row.len(),
            schema.len()
        )));
    }
    let mut out = Vec::with_capacity(row.len());
    for (v, c) in row.iter().zip(schema.columns()) {
        if v.is_null() {
            if !c.nullable {
                return Err(DbError::constraint(format!("column {} is NOT NULL", c.name)));
            }
            out.push(Value::Null);
        } else {
            out.push(
                v.coerce_to(&c.ty)
                    .map_err(|e| DbError::execution(format!("column {}: {e}", c.name)))?,
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::qualified(
            vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("name", DataType::VarChar(20)),
                Column::new("price", DataType::Decimal { precision: 10, scale: 2 }),
            ],
            "items",
        )
    }

    #[test]
    fn resolve_by_name_and_qualifier() {
        let s = sample();
        assert_eq!(s.resolve(None, "id").unwrap(), 0);
        assert_eq!(s.resolve(Some("items"), "name").unwrap(), 1);
        assert_eq!(s.resolve(Some("ITEMS"), "NAME").unwrap(), 1);
        assert!(s.resolve(Some("other"), "id").is_err());
        assert!(s.resolve(None, "missing").is_err());
    }

    #[test]
    fn resolve_detects_ambiguity() {
        let joined = sample().join(&sample().with_qualifier("i2"));
        assert!(joined.resolve(None, "id").is_err());
        assert_eq!(joined.resolve(Some("items"), "id").unwrap(), 0);
        assert_eq!(joined.resolve(Some("i2"), "id").unwrap(), 3);
    }

    #[test]
    fn join_concatenates() {
        let j = sample().join(&sample().with_qualifier("b"));
        assert_eq!(j.len(), 6);
        assert_eq!(j.qualifier(0), Some("ITEMS"));
        assert_eq!(j.qualifier(3), Some("B"));
    }

    #[test]
    fn coerce_row_checks_arity_nullability_types() {
        let s = sample();
        assert!(coerce_row(&s, &[Value::Int(1)]).is_err());
        assert!(coerce_row(&s, &[Value::Null, Value::Null, Value::Null]).is_err());
        let ok = coerce_row(&s, &[Value::Int(1), Value::str("x"), Value::Int(3)]).unwrap();
        assert_eq!(ok[2].to_string(), "3.00");
    }

    #[test]
    fn column_names_uppercased() {
        let c = Column::new("l_shipdate", DataType::Date);
        assert_eq!(c.name, "L_SHIPDATE");
    }
}
