//! Fixed-size slotted pages.
//!
//! Layout (all little-endian u16 offsets within the page):
//!
//! ```text
//! +--------+--------+---------------------------+------------------+
//! | nslots | freeend| slot dir (4 bytes/slot) ->| ... <- tuple data|
//! +--------+--------+---------------------------+------------------+
//! ```
//!
//! * `nslots` — number of slot-directory entries (including dead slots).
//! * `freeend` — offset of the byte *after* the lowest tuple byte; tuple
//!   data grows downward from the page end.
//! * each slot is `(offset: u16, len: u16)`; a dead (deleted) slot has
//!   `offset == 0`.

use crate::error::{DbError, DbResult};

pub const PAGE_SIZE: usize = 8192;
const HEADER: usize = 4;
const SLOT_SIZE: usize = 4;

/// Page number within the database file space.
pub type PageId = u32;

/// Slot number within a page.
pub type SlotId = u16;

/// A record identifier: physical address of a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: PageId,
    pub slot: SlotId,
}

impl Rid {
    pub fn new(page: PageId, slot: SlotId) -> Self {
        Rid { page, slot }
    }
}

/// One fixed-size page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    /// LSN of the last logged operation that touched this page (kept
    /// beside the 8 KB image, not inside it — the on-"disk" format
    /// predates the WAL). 0 means never logged.
    lsn: u64,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page { data: self.data.clone(), lsn: self.lsn }
    }
}

impl Page {
    /// A fresh, formatted, empty page.
    pub fn new() -> Self {
        let mut p =
            Page { data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(), lsn: 0 };
        p.set_nslots(0);
        p.set_freeend(PAGE_SIZE as u16);
        p
    }

    /// The page LSN: highest log record that modified this page.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Stamp the page LSN (monotone: lower stamps are ignored).
    pub fn stamp_lsn(&mut self, lsn: u64) {
        if lsn > self.lsn {
            self.lsn = lsn;
        }
    }

    fn u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn nslots(&self) -> u16 {
        self.u16_at(0)
    }

    fn set_nslots(&mut self, v: u16) {
        self.set_u16(0, v);
    }

    fn freeend(&self) -> u16 {
        self.u16_at(2)
    }

    fn set_freeend(&mut self, v: u16) {
        self.set_u16(2, v);
    }

    fn slot(&self, i: SlotId) -> (u16, u16) {
        let off = HEADER + i as usize * SLOT_SIZE;
        (self.u16_at(off), self.u16_at(off + 2))
    }

    fn set_slot(&mut self, i: SlotId, offset: u16, len: u16) {
        let off = HEADER + i as usize * SLOT_SIZE;
        self.set_u16(off, offset);
        self.set_u16(off + 2, len);
    }

    /// Free bytes available for one more insert (slot + data).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.nslots() as usize * SLOT_SIZE;
        (self.freeend() as usize).saturating_sub(dir_end)
    }

    /// Can a tuple of `len` bytes be inserted?
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    /// Insert a tuple; returns its slot.
    pub fn insert(&mut self, tuple: &[u8]) -> DbResult<SlotId> {
        if tuple.len() > PAGE_SIZE - HEADER - SLOT_SIZE {
            return Err(DbError::storage(format!(
                "tuple of {} bytes exceeds page capacity",
                tuple.len()
            )));
        }
        if !self.fits(tuple.len()) {
            return Err(DbError::storage("page full"));
        }
        let slot = self.nslots();
        let start = self.freeend() as usize - tuple.len();
        self.data[start..start + tuple.len()].copy_from_slice(tuple);
        self.set_slot(slot, start as u16, tuple.len() as u16);
        self.set_freeend(start as u16);
        self.set_nslots(slot + 1);
        Ok(slot)
    }

    /// Read a live tuple; `None` if the slot is dead or out of range.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.nslots() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None; // dead
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Mark a slot dead. Space is not compacted (lazy delete).
    pub fn delete(&mut self, slot: SlotId) -> DbResult<()> {
        if slot >= self.nslots() {
            return Err(DbError::storage(format!("no slot {slot}")));
        }
        let (off, _) = self.slot(slot);
        if off == 0 {
            return Err(DbError::storage(format!("slot {slot} already dead")));
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Overwrite a tuple in place if the new value fits in the old slot's
    /// bytes; otherwise the caller must delete + re-insert.
    pub fn update_in_place(&mut self, slot: SlotId, tuple: &[u8]) -> DbResult<bool> {
        if slot >= self.nslots() {
            return Err(DbError::storage(format!("no slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return Err(DbError::storage(format!("slot {slot} is dead")));
        }
        if tuple.len() > len as usize {
            return Ok(false);
        }
        let off = off as usize;
        self.data[off..off + tuple.len()].copy_from_slice(tuple);
        self.set_slot(slot as SlotId, off as u16, tuple.len() as u16);
        Ok(true)
    }

    /// Iterate live slot ids.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        (0..self.nslots()).filter(|&s| {
            let (off, _) = self.slot(s);
            off != 0
        })
    }

    /// Count of live tuples.
    pub fn live_count(&self) -> usize {
        self.live_slots().count()
    }

    /// Bytes of live tuple data (for size accounting).
    pub fn live_bytes(&self) -> usize {
        (0..self.nslots())
            .filter_map(|s| {
                let (off, len) = self.slot(s);
                (off != 0).then_some(len as usize)
            })
            .sum()
    }

    /// Raw page bytes (used by B+-tree node codecs).
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    pub fn raw_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
        assert_eq!(p.live_bytes(), 11);
    }

    #[test]
    fn delete_marks_dead() {
        let mut p = Page::new();
        let s0 = p.insert(b"abc").unwrap();
        let s1 = p.insert(b"def").unwrap();
        p.delete(s0).unwrap();
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"def"[..]));
        assert!(p.delete(s0).is_err());
        assert_eq!(p.live_slots().collect::<Vec<_>>(), vec![s1]);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let tuple = [0xABu8; 100];
        let mut n = 0;
        while p.fits(tuple.len()) {
            p.insert(&tuple).unwrap();
            n += 1;
        }
        assert!(n >= 70, "should fit many 100-byte tuples, got {n}");
        assert!(p.insert(&tuple).is_err());
        // everything still readable
        for s in 0..p.nslots() {
            assert_eq!(p.get(s).unwrap(), &tuple[..]);
        }
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn update_in_place_when_fits() {
        let mut p = Page::new();
        let s = p.insert(b"longvalue").unwrap();
        assert!(p.update_in_place(s, b"short").unwrap());
        assert_eq!(p.get(s), Some(&b"short"[..]));
        assert!(!p.update_in_place(s, b"muchlongervaluethanbefore").unwrap());
    }

    #[test]
    fn zero_length_tuples_not_confused_with_dead() {
        // A zero-length tuple would get offset == freeend != 0, so it stays live.
        let mut p = Page::new();
        let s = p.insert(b"x").unwrap();
        let z = p.insert(b"").unwrap();
        assert_eq!(p.get(z), Some(&b""[..]));
        p.delete(s).unwrap();
        assert_eq!(p.get(z), Some(&b""[..]));
    }
}
