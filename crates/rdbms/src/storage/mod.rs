//! Storage layer: slotted pages, row codec, pager (simulated disk + buffer
//! pool), heap files.

pub mod codec;
pub mod heap;
pub mod page;
pub mod pager;

pub use heap::{HeapFile, HeapScan};
pub use page::{Page, PageId, Rid, SlotId, PAGE_SIZE};
pub use pager::{AccessPattern, Pager, PagerConfig};
