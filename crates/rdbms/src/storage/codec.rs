//! Row <-> bytes codec.
//!
//! Encoding is tag-prefixed, little-endian, and self-describing per value:
//!
//! * `0` NULL
//! * `1` Int: i64
//! * `2` Decimal: i128 mantissa + u8 scale
//! * `3` Str: u16 length + UTF-8 bytes
//! * `4` Date: i32 days
//! * `5` Bool: u8
//!
//! There is also an order-preserving *key* encoding for B+-tree keys, where
//! byte-wise comparison of encoded keys matches `Value::total_cmp` on the
//! originals.

use crate::error::{DbError, DbResult};
use crate::types::{Date, Decimal, Value};
use bytes::{Buf, BufMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DEC: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_BOOL: u8 = 5;

/// Append one value to `out`.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        Value::Decimal(d) => {
            out.put_u8(TAG_DEC);
            out.put_i128_le(d.mantissa());
            out.put_u8(d.scale());
        }
        Value::Str(s) => {
            out.put_u8(TAG_STR);
            debug_assert!(s.len() <= u16::MAX as usize);
            out.put_u16_le(s.len() as u16);
            out.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.put_u8(TAG_DATE);
            out.put_i32_le(d.days());
        }
        Value::Bool(b) => {
            out.put_u8(TAG_BOOL);
            out.put_u8(*b as u8);
        }
    }
}

/// Decode one value from the front of `buf`.
pub fn decode_value(buf: &mut &[u8]) -> DbResult<Value> {
    fn need(buf: &&[u8], n: usize) -> DbResult<()> {
        if buf.remaining() < n {
            Err(DbError::storage("truncated tuple"))
        } else {
            Ok(())
        }
    }
    need(buf, 1)?;
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => {
            need(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        TAG_DEC => {
            need(buf, 17)?;
            let mantissa = buf.get_i128_le();
            let scale = buf.get_u8();
            Value::Decimal(Decimal::new(mantissa, scale))
        }
        TAG_STR => {
            need(buf, 2)?;
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len {
                return Err(DbError::storage("truncated string value"));
            }
            let s = std::str::from_utf8(&buf[..len])
                .map_err(|_| DbError::storage("invalid UTF-8 in stored string"))?
                .to_string();
            buf.advance(len);
            Value::Str(s)
        }
        TAG_DATE => {
            need(buf, 4)?;
            Value::Date(Date::from_days(buf.get_i32_le()))
        }
        TAG_BOOL => {
            need(buf, 1)?;
            Value::Bool(buf.get_u8() != 0)
        }
        other => return Err(DbError::storage(format!("unknown value tag {other}"))),
    })
}

/// Encode a whole row.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.iter().map(|v| v.storage_size() + 1).sum());
    debug_assert!(row.len() <= u16::MAX as usize);
    out.put_u16_le(row.len() as u16);
    for v in row {
        encode_value(&mut out, v);
    }
    out
}

/// Decode a whole row.
pub fn decode_row(mut buf: &[u8]) -> DbResult<Vec<Value>> {
    if buf.remaining() < 2 {
        return Err(DbError::storage("truncated row header"));
    }
    let n = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(decode_value(&mut buf)?);
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Order-preserving key encoding (for B+-tree composite keys)
// ---------------------------------------------------------------------------

/// Encode a composite key such that lexicographic byte comparison of the
/// encodings equals `Value::total_cmp` element-wise on the originals.
///
/// * NULL: `0x00`
/// * numeric (Int or Decimal): `0x02` + sign-flipped i128 mantissa at a
///   fixed scale, big-endian
/// * Date: `0x03` + sign-flipped i32 big-endian
/// * Str: `0x04` + trailing-blank-trimmed bytes with `0x00` escaped as
///   `0x00 0xFF` and terminated by `0x00 0x00`
/// * Bool: `0x01` + byte
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 12);
    for v in values {
        match v {
            Value::Null => out.put_u8(0x00),
            Value::Bool(b) => {
                out.put_u8(0x01);
                out.put_u8(*b as u8);
            }
            Value::Int(_) | Value::Decimal(_) => {
                out.put_u8(0x02);
                // Normalize all numerics to scale 6 for comparability; this
                // covers every key column used by the workloads (keys are
                // integers or money with scale <= 2). Values beyond i128/1e6
                // range are not used as index keys.
                let d = v.as_decimal().expect("numeric").rescale(6);
                encode_varnum(&mut out, d.mantissa());
            }
            Value::Date(d) => {
                out.put_u8(0x03);
                let flipped = (d.days() as u32) ^ (1u32 << 31);
                out.put_u32(flipped);
            }
            Value::Str(s) => {
                out.put_u8(0x04);
                for &b in s.trim_end().as_bytes() {
                    if b == 0x00 {
                        out.put_u8(0x00);
                        out.put_u8(0xFF);
                    } else {
                        out.put_u8(b);
                    }
                }
                out.put_u8(0x00);
                out.put_u8(0x00);
            }
        }
    }
    out
}

/// Order-preserving variable-length integer encoding: one prefix byte
/// (`0x80 + len` for non-negatives, `0x80 - len` for negatives) followed by
/// the minimal big-endian two's-complement bytes. Byte-wise comparison of
/// encodings matches numeric comparison, and a 4-byte TPC-D key costs ~4
/// bytes instead of 17 — which is exactly the integer-vs-CHAR(16) index
/// size contrast the paper's Table 2 measures.
fn encode_varnum(out: &mut Vec<u8>, m: i128) {
    let bytes = m.to_be_bytes();
    let mut start = 0usize;
    while start < 15 {
        let b = bytes[start];
        let next = bytes[start + 1];
        if (b == 0x00 && next < 0x80) || (b == 0xFF && next >= 0x80) {
            start += 1;
        } else {
            break;
        }
    }
    let len = (16 - start) as u8;
    if m >= 0 {
        out.put_u8(0x80 + len);
    } else {
        out.put_u8(0x80 - len);
    }
    out.extend_from_slice(&bytes[start..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Decimal;

    #[test]
    fn varnum_is_order_preserving_and_compact() {
        let vals: Vec<i128> = vec![
            i128::MIN,
            -1_000_000_000_000,
            -65_536,
            -256,
            -255,
            -2,
            -1,
            0,
            1,
            2,
            127,
            128,
            255,
            256,
            1_000_000,
            i128::MAX,
        ];
        let encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|&m| {
                let mut v = Vec::new();
                encode_varnum(&mut v, m);
                v
            })
            .collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1], "ordering broken");
        }
        // Small numbers are small.
        let mut five = Vec::new();
        encode_varnum(&mut five, 5);
        assert_eq!(five.len(), 2);
    }

    fn roundtrip(row: Vec<Value>) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(back.iter()) {
            match (a, b) {
                (Value::Null, Value::Null) => {}
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn row_round_trip() {
        roundtrip(vec![
            Value::Int(42),
            Value::Null,
            Value::str("hello world"),
            Value::Decimal(Decimal::parse("-12.345").unwrap()),
            Value::date(1996, 1, 2),
            Value::Bool(true),
        ]);
        roundtrip(vec![]);
        roundtrip(vec![Value::str("")]);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = encode_row(&[Value::str("hello")]);
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[1, 0, 99]).is_err()); // unknown tag
    }

    #[test]
    fn key_encoding_orders_like_total_cmp() {
        let vals = [
            Value::Null,
            Value::Int(-5),
            Value::Int(0),
            Value::Decimal(Decimal::parse("0.5").unwrap()),
            Value::Int(3),
            Value::Decimal(Decimal::parse("3.14").unwrap()),
            Value::Int(1000),
        ];
        for a in &vals {
            for b in &vals {
                let ka = encode_key(std::slice::from_ref(a));
                let kb = encode_key(std::slice::from_ref(b));
                assert_eq!(ka.cmp(&kb), a.total_cmp(b), "key order mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn key_encoding_strings_and_dates() {
        let pairs = [
            (Value::str("APPLE"), Value::str("BANANA")),
            (Value::str("A"), Value::str("AB")),
            (Value::str("ASIA   "), Value::str("ASIA")), // padded equal
            (Value::date(1995, 1, 1), Value::date(1996, 1, 1)),
            (Value::date(1969, 12, 31), Value::date(1970, 1, 1)),
        ];
        for (a, b) in &pairs {
            let ka = encode_key(std::slice::from_ref(a));
            let kb = encode_key(std::slice::from_ref(b));
            assert_eq!(ka.cmp(&kb), a.total_cmp(b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn key_encoding_composite_prefix_property() {
        // (1, "B") < (2, "A")  — first component dominates
        let k1 = encode_key(&[Value::Int(1), Value::str("B")]);
        let k2 = encode_key(&[Value::Int(2), Value::str("A")]);
        assert!(k1 < k2);
        // prefix of composite sorts before its extensions
        let p = encode_key(&[Value::Int(1)]);
        assert!(p < k1);
        assert!(k1.starts_with(&p));
    }

    #[test]
    fn key_encoding_embedded_nul_in_string() {
        let a = Value::Str("a\0b".to_string());
        let b = Value::Str("a".to_string());
        let ka = encode_key(std::slice::from_ref(&a));
        let kb = encode_key(std::slice::from_ref(&b));
        assert_eq!(ka.cmp(&kb), a.total_cmp(&b));
    }
}
