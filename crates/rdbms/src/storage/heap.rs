//! Heap files: unordered collections of rows stored in slotted pages.

use crate::error::{DbError, DbResult};
use crate::schema::Row;
use crate::storage::codec::{decode_row, encode_row};
use crate::storage::page::{PageId, Rid};
use crate::storage::pager::{AccessPattern, Pager};
use parking_lot::RwLock;
use std::sync::Arc;

/// A heap file. Tracks the ordered list of pages it owns plus live-row
/// statistics maintained incrementally on DML.
pub struct HeapFile {
    pager: Arc<Pager>,
    state: RwLock<HeapState>,
}

#[derive(Default)]
struct HeapState {
    pages: Vec<PageId>,
    live_rows: u64,
    live_bytes: u64,
}

impl HeapFile {
    pub fn new(pager: Arc<Pager>) -> Self {
        HeapFile { pager, state: RwLock::new(HeapState::default()) }
    }

    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Insert a row, returning its RID. Appends to the last page; allocates
    /// a new page when full (no free-space map — deletes leave holes, which
    /// matches the simple heap organizations of mid-90s systems).
    pub fn insert(&self, row: &Row) -> DbResult<Rid> {
        let bytes = encode_row(row);
        let mut st = self.state.write();
        if let Some(&last) = st.pages.last() {
            let slot = self.pager.write(last, AccessPattern::Random, |page| {
                if page.fits(bytes.len()) {
                    Some(page.insert(&bytes))
                } else {
                    None
                }
            })?;
            if let Some(slot) = slot {
                st.live_rows += 1;
                st.live_bytes += bytes.len() as u64;
                return Ok(Rid::new(last, slot?));
            }
        }
        let pid = self.pager.allocate();
        let slot = self.pager.write(pid, AccessPattern::Random, |page| page.insert(&bytes))??;
        st.pages.push(pid);
        st.live_rows += 1;
        st.live_bytes += bytes.len() as u64;
        Ok(Rid::new(pid, slot))
    }

    /// Fetch one row by RID. `pattern` lets index scans charge random I/O
    /// while a clustered-order sweep can charge sequential.
    pub fn get(&self, rid: Rid, pattern: AccessPattern) -> DbResult<Option<Row>> {
        let bytes =
            self.pager.read(rid.page, pattern, |page| page.get(rid.slot).map(|b| b.to_vec()))?;
        match bytes {
            Some(b) => Ok(Some(decode_row(&b)?)),
            None => Ok(None),
        }
    }

    /// Delete a row by RID.
    pub fn delete(&self, rid: Rid) -> DbResult<()> {
        let removed_len = self.pager.write(rid.page, AccessPattern::Random, |page| {
            let len = page.get(rid.slot).map(|b| b.len());
            match len {
                Some(l) => {
                    page.delete(rid.slot)?;
                    Ok::<usize, DbError>(l)
                }
                None => Err(DbError::storage(format!("delete of dead or missing rid {rid:?}"))),
            }
        })??;
        let mut st = self.state.write();
        st.live_rows -= 1;
        st.live_bytes -= removed_len as u64;
        Ok(())
    }

    /// Update a row in place when possible; otherwise delete + reinsert.
    /// Returns the (possibly new) RID.
    pub fn update(&self, rid: Rid, row: &Row) -> DbResult<Rid> {
        let bytes = encode_row(row);
        let (updated, old_len) = self.pager.write(rid.page, AccessPattern::Random, |page| {
            let old = page.get(rid.slot).map(|b| b.len());
            match old {
                Some(l) => {
                    Ok::<(bool, usize), DbError>((page.update_in_place(rid.slot, &bytes)?, l))
                }
                None => Err(DbError::storage(format!("update of dead rid {rid:?}"))),
            }
        })??;
        if updated {
            let mut st = self.state.write();
            st.live_bytes = st.live_bytes - old_len as u64 + bytes.len() as u64;
            return Ok(rid);
        }
        self.delete(rid)?;
        self.insert(row)
    }

    pub fn page_count(&self) -> usize {
        self.state.read().pages.len()
    }

    pub fn live_rows(&self) -> u64 {
        self.state.read().live_rows
    }

    /// Live data bytes (Table 2 size accounting).
    pub fn live_bytes(&self) -> u64 {
        self.state.read().live_bytes
    }

    fn pages_snapshot(&self) -> Vec<PageId> {
        self.state.read().pages.clone()
    }

    /// Full sequential scan. Decodes one page of rows at a time.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            pages: self.pages_snapshot(),
            page_idx: 0,
            buffered: Vec::new(),
            buf_idx: 0,
        }
    }
}

/// Iterator over `(Rid, Row)` of a heap file in physical order.
pub struct HeapScan<'a> {
    heap: &'a HeapFile,
    pages: Vec<PageId>,
    page_idx: usize,
    buffered: Vec<(Rid, Row)>,
    buf_idx: usize,
}

impl Iterator for HeapScan<'_> {
    type Item = DbResult<(Rid, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buf_idx < self.buffered.len() {
                let item = self.buffered[self.buf_idx].clone();
                self.buf_idx += 1;
                return Some(Ok(item));
            }
            if self.page_idx >= self.pages.len() {
                return None;
            }
            let pid = self.pages[self.page_idx];
            self.page_idx += 1;
            let res = self.heap.pager.read(pid, AccessPattern::Sequential, |page| {
                let mut rows = Vec::with_capacity(page.live_count());
                for slot in page.live_slots() {
                    let bytes = page.get(slot).expect("live slot");
                    match decode_row(bytes) {
                        Ok(row) => rows.push((Rid::new(pid, slot), row)),
                        Err(e) => return Err(e),
                    }
                }
                Ok(rows)
            });
            match res {
                Ok(Ok(rows)) => {
                    self.buffered = rows;
                    self.buf_idx = 0;
                }
                Ok(Err(e)) | Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{CostMeter, Counter};
    use crate::storage::pager::PagerConfig;
    use crate::types::Value;

    fn heap() -> HeapFile {
        let pager = Pager::new(PagerConfig { pool_pages: 64 }, CostMeter::new());
        HeapFile::new(pager)
    }

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::str(format!("row-{i}"))]
    }

    #[test]
    fn insert_get_round_trip() {
        let h = heap();
        let rid = h.insert(&row(7)).unwrap();
        let got = h.get(rid, AccessPattern::Random).unwrap().unwrap();
        assert_eq!(got, row(7));
        assert_eq!(h.live_rows(), 1);
    }

    #[test]
    fn spills_to_multiple_pages_and_scans_in_order() {
        let h = heap();
        let n = 2000;
        for i in 0..n {
            h.insert(&row(i)).unwrap();
        }
        assert!(h.page_count() > 1, "2000 rows must span pages");
        let scanned: Vec<i64> = h.scan().map(|r| r.unwrap().1[0].as_int().unwrap()).collect();
        assert_eq!(scanned, (0..n).collect::<Vec<_>>());
        assert_eq!(h.live_rows(), n as u64);
    }

    #[test]
    fn delete_removes_from_scan_and_stats() {
        let h = heap();
        let rids: Vec<_> = (0..10).map(|i| h.insert(&row(i)).unwrap()).collect();
        let before = h.live_bytes();
        h.delete(rids[3]).unwrap();
        h.delete(rids[7]).unwrap();
        assert!(h.live_bytes() < before);
        assert_eq!(h.live_rows(), 8);
        let left: Vec<i64> = h.scan().map(|r| r.unwrap().1[0].as_int().unwrap()).collect();
        assert_eq!(left, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        assert!(h.get(rids[3], AccessPattern::Random).unwrap().is_none());
        assert!(h.delete(rids[3]).is_err(), "double delete rejected");
    }

    #[test]
    fn update_in_place_and_relocating() {
        let h = heap();
        let rid = h.insert(&vec![Value::str("a long initial value")]).unwrap();
        // Shorter: stays in place.
        let r2 = h.update(rid, &vec![Value::str("tiny")]).unwrap();
        assert_eq!(r2, rid);
        assert_eq!(h.get(rid, AccessPattern::Random).unwrap().unwrap()[0], Value::str("tiny"));
        // Longer: relocates.
        let long = "x".repeat(200);
        let r3 = h.update(r2, &vec![Value::str(long.clone())]).unwrap();
        assert_ne!(r3, r2);
        assert!(h.get(r2, AccessPattern::Random).unwrap().is_none());
        assert_eq!(h.get(r3, AccessPattern::Random).unwrap().unwrap()[0], Value::str(long));
        assert_eq!(h.live_rows(), 1);
    }

    #[test]
    fn scan_charges_sequential_io_when_pool_small() {
        let meter = CostMeter::new();
        let pager = Pager::new(PagerConfig { pool_pages: 8 }, Arc::clone(&meter));
        let h = HeapFile::new(pager);
        for i in 0..5000 {
            h.insert(&row(i)).unwrap();
        }
        meter.reset();
        let n = h.scan().count();
        assert_eq!(n, 5000);
        assert!(meter.get(Counter::SeqPageReads) > 10, "cold scan reads pages");
        assert_eq!(meter.get(Counter::RandPageReads), 0);
    }
}
