//! The pager: an in-memory "disk" plus an LRU buffer pool with I/O metering.
//!
//! All pages live authoritatively in one in-memory vector (the simulated
//! disk). The buffer pool tracks which pages are *resident*; touching a
//! non-resident page charges one physical read to the [`CostMeter`] —
//! sequential or random according to the caller-declared access pattern —
//! and evicting a dirty page charges one physical write. This reproduces
//! the paper's 10 MB-buffer environment deterministically: a query's I/O
//! bill depends only on its access pattern and the pool size, never on
//! host-machine timing.

use crate::clock::{CostMeter, Counter, WaitEvent, WaitStats};
use crate::error::{DbError, DbResult};
use crate::storage::page::{Page, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Declared access pattern of a page read, used to split I/O metering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Part of a scan over consecutive pages (amortized transfer cost).
    Sequential,
    /// An isolated fetch (index traversal, RID fetch): full seek cost.
    Random,
}

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PagerConfig {
    /// Buffer pool capacity in pages. The paper's default SAP installation
    /// gives the RDBMS 10 MB of buffer: 1280 pages of 8 KB.
    pub pool_pages: usize,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig { pool_pages: 10 * 1024 * 1024 / PAGE_SIZE }
    }
}

impl PagerConfig {
    pub fn with_pool_bytes(bytes: usize) -> Self {
        PagerConfig { pool_pages: (bytes / PAGE_SIZE).max(8) }
    }
}

struct Resident {
    dirty: bool,
    stamp: u64,
}

struct PagerInner {
    pages: Vec<Page>,
    free_list: Vec<PageId>,
    resident: HashMap<PageId, Resident>,
    lru: VecDeque<(PageId, u64)>,
    next_stamp: u64,
    capacity: usize,
    /// Dirty-page table for WAL checkpoints: page id -> recovery LSN (the
    /// first log record that dirtied the page since it was last written
    /// back). Only maintained when a WAL stamps LSNs.
    dirty_lsn: HashMap<PageId, u64>,
}

impl PagerInner {
    fn touch(&mut self, pid: PageId) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(r) = self.resident.get_mut(&pid) {
            r.stamp = stamp;
        }
        self.lru.push_back((pid, stamp));
    }

    /// Make `pid` resident, charging I/O if it was not. Returns true when
    /// a read was charged (a metered buffer miss).
    fn ensure_resident(
        &mut self,
        pid: PageId,
        pattern: AccessPattern,
        meter: &CostMeter,
        charge_read: bool,
    ) -> bool {
        if self.resident.contains_key(&pid) {
            self.touch(pid);
            return false;
        }
        if charge_read {
            match pattern {
                AccessPattern::Sequential => meter.bump(Counter::SeqPageReads),
                AccessPattern::Random => meter.bump(Counter::RandPageReads),
            }
        }
        self.evict_if_needed(meter);
        self.resident.insert(pid, Resident { dirty: false, stamp: 0 });
        self.touch(pid);
        charge_read
    }

    fn evict_if_needed(&mut self, meter: &CostMeter) {
        while self.resident.len() >= self.capacity {
            let Some((pid, stamp)) = self.lru.pop_front() else {
                break;
            };
            let evict = match self.resident.get(&pid) {
                Some(r) if r.stamp == stamp => true,
                _ => false, // stale queue entry
            };
            if evict {
                let r = self.resident.remove(&pid).expect("checked above");
                if r.dirty {
                    meter.bump(Counter::PageWrites);
                }
            }
        }
    }
}

/// Shared pager handle.
pub struct Pager {
    inner: Mutex<PagerInner>,
    meter: Arc<CostMeter>,
    /// Wait-event sink for M$WAIT_EVENTS buffer-miss counts; set once by
    /// the owning [`crate::Database`]. The in-memory "disk" makes misses
    /// stalls of zero duration — the count is the signal.
    wait: OnceLock<Arc<WaitStats>>,
}

impl Pager {
    pub fn new(config: PagerConfig, meter: Arc<CostMeter>) -> Arc<Self> {
        Arc::new(Pager {
            inner: Mutex::new(PagerInner {
                pages: Vec::new(),
                free_list: Vec::new(),
                resident: HashMap::new(),
                lru: VecDeque::new(),
                next_stamp: 0,
                capacity: config.pool_pages.max(8),
                dirty_lsn: HashMap::new(),
            }),
            meter,
            wait: OnceLock::new(),
        })
    }

    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    /// Attach the wait-event sink (idempotent; first caller wins).
    pub(crate) fn set_wait_stats(&self, wait: Arc<WaitStats>) {
        let _ = self.wait.set(wait);
    }

    fn note_miss(&self, missed: bool) {
        if missed {
            if let Some(w) = self.wait.get() {
                w.record(WaitEvent::BufferMiss, Duration::ZERO);
            }
        }
    }

    /// Allocate a fresh page; it enters the pool dirty (no read charge).
    pub fn allocate(&self) -> PageId {
        let mut g = self.inner.lock();
        let pid = match g.free_list.pop() {
            Some(pid) => {
                g.pages[pid as usize] = Page::new();
                pid
            }
            None => {
                g.pages.push(Page::new());
                (g.pages.len() - 1) as PageId
            }
        };
        g.evict_if_needed(&self.meter);
        g.resident.insert(pid, Resident { dirty: true, stamp: 0 });
        g.touch(pid);
        pid
    }

    /// Return a page to the free list. Its contents are discarded.
    pub fn free(&self, pid: PageId) {
        let mut g = self.inner.lock();
        g.resident.remove(&pid);
        g.dirty_lsn.remove(&pid);
        g.free_list.push(pid);
    }

    /// Stamp a page's LSN after its mutation was logged: raises the page
    /// LSN (monotone) and enters the page into the dirty-page table with
    /// this LSN as its recovery LSN if it is not already there.
    pub fn stamp_lsn(&self, pid: PageId, lsn: u64) {
        let mut g = self.inner.lock();
        if (pid as usize) < g.pages.len() {
            g.pages[pid as usize].stamp_lsn(lsn);
            g.dirty_lsn.entry(pid).or_insert(lsn);
        }
    }

    /// The page LSN (0 for unlogged or nonexistent pages).
    pub fn page_lsn(&self, pid: PageId) -> u64 {
        let g = self.inner.lock();
        g.pages.get(pid as usize).map_or(0, |p| p.lsn())
    }

    /// The dirty-page table: (page id, recovery LSN) for every page whose
    /// logged changes have not been written back, sorted by page id.
    /// Logged in fuzzy checkpoints ([`crate::wal::LogPayload::CheckpointEnd`]).
    pub fn dirty_page_table(&self) -> Vec<(PageId, u64)> {
        let g = self.inner.lock();
        let mut dpt: Vec<_> = g.dirty_lsn.iter().map(|(&p, &l)| (p, l)).collect();
        dpt.sort_unstable();
        dpt
    }

    /// Read access to a page.
    pub fn read<R>(
        &self,
        pid: PageId,
        pattern: AccessPattern,
        f: impl FnOnce(&Page) -> R,
    ) -> DbResult<R> {
        let mut g = self.inner.lock();
        if pid as usize >= g.pages.len() {
            return Err(DbError::storage(format!("page {pid} does not exist")));
        }
        let missed = g.ensure_resident(pid, pattern, &self.meter, true);
        let out = f(&g.pages[pid as usize]);
        drop(g);
        self.note_miss(missed);
        Ok(out)
    }

    /// Write access to a page; marks it dirty.
    pub fn write<R>(
        &self,
        pid: PageId,
        pattern: AccessPattern,
        f: impl FnOnce(&mut Page) -> R,
    ) -> DbResult<R> {
        let mut g = self.inner.lock();
        if pid as usize >= g.pages.len() {
            return Err(DbError::storage(format!("page {pid} does not exist")));
        }
        let missed = g.ensure_resident(pid, pattern, &self.meter, true);
        g.resident.get_mut(&pid).expect("resident").dirty = true;
        let out = f(&mut g.pages[pid as usize]);
        drop(g);
        self.note_miss(missed);
        Ok(out)
    }

    /// Total pages ever allocated minus freed (database footprint).
    pub fn allocated_pages(&self) -> usize {
        let g = self.inner.lock();
        g.pages.len() - g.free_list.len()
    }

    /// Number of currently resident pages (for tests).
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().resident.len()
    }

    /// Drop the whole buffer pool content (e.g. between power-test queries
    /// if a cold cache is desired). Dirty pages are "written back" and
    /// charged.
    pub fn flush_all(&self) {
        let mut g = self.inner.lock();
        let dirty = g.resident.values().filter(|r| r.dirty).count();
        self.meter.add(Counter::PageWrites, dirty as u64);
        g.resident.clear();
        g.lru.clear();
        // Everything is now "on disk": the dirty-page table empties, so the
        // next checkpoint records a higher redo bound.
        g.dirty_lsn.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Counter;

    fn pager(pool_pages: usize) -> Arc<Pager> {
        Pager::new(PagerConfig { pool_pages }, CostMeter::new())
    }

    #[test]
    fn allocate_read_write_round_trip() {
        let p = pager(16);
        let pid = p.allocate();
        p.write(pid, AccessPattern::Random, |page| {
            page.insert(b"abc").unwrap();
        })
        .unwrap();
        let got =
            p.read(pid, AccessPattern::Random, |page| page.get(0).map(|b| b.to_vec())).unwrap();
        assert_eq!(got, Some(b"abc".to_vec()));
    }

    #[test]
    fn fresh_allocation_charges_no_read() {
        let p = pager(16);
        let _ = p.allocate();
        assert_eq!(p.meter().get(Counter::SeqPageReads), 0);
        assert_eq!(p.meter().get(Counter::RandPageReads), 0);
    }

    #[test]
    fn cache_hit_charges_nothing_miss_charges_once() {
        let p = pager(8);
        let pid = p.allocate();
        p.read(pid, AccessPattern::Random, |_| ()).unwrap();
        assert_eq!(p.meter().get(Counter::RandPageReads), 0, "resident after alloc");

        // Evict it by touching more pages than capacity.
        let others: Vec<_> = (0..20).map(|_| p.allocate()).collect();
        for &o in &others {
            p.read(o, AccessPattern::Sequential, |_| ()).unwrap();
        }
        p.read(pid, AccessPattern::Random, |_| ()).unwrap();
        assert_eq!(p.meter().get(Counter::RandPageReads), 1, "one miss after eviction");
        p.read(pid, AccessPattern::Random, |_| ()).unwrap();
        assert_eq!(p.meter().get(Counter::RandPageReads), 1, "second read is a hit");
    }

    #[test]
    fn dirty_eviction_charges_write() {
        let p = pager(8);
        let pid = p.allocate();
        p.write(pid, AccessPattern::Random, |pg| {
            pg.insert(b"x").unwrap();
        })
        .unwrap();
        for _ in 0..20 {
            let o = p.allocate();
            p.read(o, AccessPattern::Sequential, |_| ()).unwrap();
        }
        assert!(p.meter().get(Counter::PageWrites) >= 1);
        // Data survives eviction (it lives on the simulated disk).
        let got = p.read(pid, AccessPattern::Random, |pg| pg.get(0).map(|b| b.to_vec())).unwrap();
        assert_eq!(got, Some(b"x".to_vec()));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pager(8);
        let pids: Vec<_> = (0..8).map(|_| p.allocate()).collect();
        // Touch page 0 so it's most recent.
        p.read(pids[0], AccessPattern::Random, |_| ()).unwrap();
        // Allocate one more: someone must go, and it should not be pids[0].
        let _ = p.allocate();
        p.meter().reset();
        p.read(pids[0], AccessPattern::Random, |_| ()).unwrap();
        assert_eq!(p.meter().get(Counter::RandPageReads), 0, "page 0 stayed resident");
    }

    #[test]
    fn free_and_reuse() {
        let p = pager(8);
        let a = p.allocate();
        p.free(a);
        let b = p.allocate();
        assert_eq!(a, b, "freed page id is reused");
        // Reused page is fresh.
        let n = p.read(b, AccessPattern::Random, |pg| pg.nslots()).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn out_of_range_page_errors() {
        let p = pager(8);
        assert!(p.read(99, AccessPattern::Random, |_| ()).is_err());
        assert!(p.write(99, AccessPattern::Random, |_| ()).is_err());
    }

    #[test]
    fn flush_all_forces_cold_cache() {
        let p = pager(8);
        let pid = p.allocate();
        p.flush_all();
        p.meter().reset();
        p.read(pid, AccessPattern::Sequential, |_| ()).unwrap();
        assert_eq!(p.meter().get(Counter::SeqPageReads), 1);
    }
}
