//! Transactions and concurrency control for multi-user workloads.
//!
//! The paper's throughput test (TPC-D §5) runs N concurrent query streams
//! against one update stream, so the engine needs just enough concurrency
//! control to make that meaningful: table-level shared/exclusive locks held
//! to commit (strict two-phase locking), transaction-level rollback via an
//! undo log, and deadlock handling. Lock granularity is the whole table —
//! the same granularity SAP R/3 effectively works at for its own enqueue
//! locks on buffered tables — which keeps the lock manager small while still
//! producing the reader/writer interference the throughput test measures.
//!
//! Deadlocks are detected with a wait-for graph evaluated while a request
//! blocks (the requester that closes a cycle aborts with
//! [`DbError::Deadlock`]); a lock-wait timeout backstops anything the graph
//! misses. Every wait is metered as [`Counter::LockWaits`] and the wall
//! wait duration is accumulated per transaction, so multi-stream drivers
//! can attribute lock-wait time to the right stream.

use crate::catalog::Catalog;
use crate::clock::{CostMeter, Counter, MeterScope, MeterSnapshot};
use crate::db::{Database, ExecOutcome, QueryResult};
use crate::error::{DbError, DbResult};
use crate::schema::Row;
use crate::sql::ast::{Expr, SelectItem, SelectStmt, Statement, TableRef};
use crate::sql::parse_statement;
use crate::storage::Rid;
use crate::types::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transaction identifier (monotonically increasing per database).
pub type TxnId = u64;

/// Lock strength on a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Default)]
struct TableLockState {
    shared: HashSet<TxnId>,
    exclusive: Option<TxnId>,
}

struct LmState {
    tables: HashMap<String, TableLockState>,
    /// What each currently-blocked transaction is waiting for.
    waiting: HashMap<TxnId, (String, LockMode)>,
}

/// Table-level strict two-phase lock manager with wait-for-graph deadlock
/// detection and a timeout fallback.
pub struct LockManager {
    state: Mutex<LmState>,
    released: Condvar,
    timeout: Duration,
}

impl LockManager {
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            state: Mutex::new(LmState { tables: HashMap::new(), waiting: HashMap::new() }),
            released: Condvar::new(),
            timeout,
        }
    }

    /// Acquire (or upgrade to) `mode` on `table` for transaction `me`,
    /// blocking while conflicting holders exist. Returns the wall-clock
    /// time spent blocked (zero when granted immediately).
    pub fn acquire(&self, me: TxnId, table: &str, mode: LockMode) -> DbResult<Duration> {
        let key = table.to_ascii_uppercase();
        let mut st = self.state.lock();
        if Self::held_sufficiently(&st, me, &key, mode) {
            return Ok(Duration::ZERO);
        }
        let start = Instant::now();
        let mut blocked = false;
        loop {
            if Self::conflicting_holders(&st, me, &key, mode).is_empty() {
                st.waiting.remove(&me);
                let entry = st.tables.entry(key).or_default();
                match mode {
                    LockMode::Shared => {
                        entry.shared.insert(me);
                    }
                    LockMode::Exclusive => {
                        entry.shared.remove(&me);
                        entry.exclusive = Some(me);
                    }
                }
                return Ok(if blocked { start.elapsed() } else { Duration::ZERO });
            }
            blocked = true;
            st.waiting.insert(me, (key.clone(), mode));
            if Self::in_cycle(&st, me) {
                st.waiting.remove(&me);
                return Err(DbError::Deadlock(format!(
                    "transaction {me} aborted: deadlock on table {key}"
                )));
            }
            if start.elapsed() >= self.timeout {
                st.waiting.remove(&me);
                return Err(DbError::Deadlock(format!(
                    "transaction {me} aborted: lock wait timeout on table {key}"
                )));
            }
            // Wake periodically even without a release so a cycle formed by
            // two requests registering simultaneously is still detected.
            let tick = self.timeout.min(Duration::from_millis(20));
            self.released.wait_for(&mut st, tick);
        }
    }

    /// Release every lock `me` holds and wake blocked requesters.
    pub fn release_all(&self, me: TxnId) {
        let mut st = self.state.lock();
        st.waiting.remove(&me);
        st.tables.retain(|_, t| {
            t.shared.remove(&me);
            if t.exclusive == Some(me) {
                t.exclusive = None;
            }
            t.exclusive.is_some() || !t.shared.is_empty()
        });
        self.released.notify_all();
    }

    /// Tables `me` currently holds locks on (for tests / introspection).
    pub fn held(&self, me: TxnId) -> Vec<String> {
        let st = self.state.lock();
        let mut out: Vec<String> = st
            .tables
            .iter()
            .filter(|(_, t)| t.exclusive == Some(me) || t.shared.contains(&me))
            .map(|(name, _)| name.clone())
            .collect();
        out.sort();
        out
    }

    fn held_sufficiently(st: &LmState, me: TxnId, key: &str, mode: LockMode) -> bool {
        match st.tables.get(key) {
            None => false,
            Some(t) => match mode {
                LockMode::Shared => t.exclusive == Some(me) || t.shared.contains(&me),
                LockMode::Exclusive => t.exclusive == Some(me),
            },
        }
    }

    fn conflicting_holders(st: &LmState, me: TxnId, key: &str, mode: LockMode) -> Vec<TxnId> {
        let Some(t) = st.tables.get(key) else { return Vec::new() };
        let mut out = Vec::new();
        if let Some(x) = t.exclusive {
            if x != me {
                out.push(x);
            }
        }
        if mode == LockMode::Exclusive {
            out.extend(t.shared.iter().copied().filter(|&s| s != me));
        }
        out
    }

    /// Does the wait-for graph contain a cycle through `me`? Edges run from
    /// each waiting transaction to the holders blocking its request.
    fn in_cycle(st: &LmState, me: TxnId) -> bool {
        let mut visited = HashSet::new();
        let Some((key, mode)) = st.waiting.get(&me) else { return false };
        let mut stack = Self::conflicting_holders(st, me, key, *mode);
        while let Some(n) = stack.pop() {
            if n == me {
                return true;
            }
            if !visited.insert(n) {
                continue;
            }
            if let Some((k, m)) = st.waiting.get(&n) {
                stack.extend(Self::conflicting_holders(st, n, k, *m));
            }
        }
        false
    }
}

/// One undo-log record. Replayed in reverse on rollback; RIDs invalidated
/// by later undo steps (a heap update or re-insert can move a row) are
/// patched through a remap table during replay.
pub(crate) enum Undo {
    Insert { table: String, rid: Rid },
    Delete { table: String, rid: Rid, row: Row },
    Update { table: String, prev_rid: Rid, rid: Rid, old: Row },
}

/// Per-transaction metering summary returned by [`Txn::commit`].
#[derive(Debug, Clone, Copy)]
pub struct TxnStats {
    pub work: MeterSnapshot,
    pub lock_wait: Duration,
}

/// An open transaction: strict 2PL table locks plus an undo log. Dropping
/// an uncommitted transaction rolls it back (best effort).
pub struct Txn<'db> {
    db: &'db Database,
    id: TxnId,
    meter: Arc<CostMeter>,
    undo: Vec<Undo>,
    lock_wait: Duration,
    done: bool,
}

impl<'db> Txn<'db> {
    pub(crate) fn new(db: &'db Database, id: TxnId) -> Self {
        Txn {
            db,
            id,
            meter: CostMeter::new(),
            undo: Vec::new(),
            lock_wait: Duration::ZERO,
            done: false,
        }
    }

    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Work metered to this transaction so far.
    pub fn work(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Wall time this transaction has spent blocked on locks.
    pub fn lock_wait(&self) -> Duration {
        self.lock_wait
    }

    /// Execute one SQL statement inside the transaction. SELECT takes
    /// shared locks on every referenced base table; DML takes an exclusive
    /// lock on its target (plus shared locks for subquery reads); DDL is
    /// rejected. A statement that fails mid-flight leaves its partial
    /// effects in the undo log — roll the transaction back to remove them.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.lock_statement(&stmt)?;
        let _scope = MeterScope::enter(Arc::clone(&self.meter));
        self.db.execute_statement_in_txn(&stmt, &mut self.undo)
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> DbResult<QueryResult> {
        self.execute(sql)?.rows()
    }

    /// Bulk-path insert of a pre-built row (the benchmark kit's refresh
    /// functions use this; constraint checks still apply).
    pub fn insert_row(&mut self, table: &str, row: &[Value]) -> DbResult<()> {
        self.lock_table(table, LockMode::Exclusive)?;
        let _scope = MeterScope::enter(Arc::clone(&self.meter));
        let t = self.db.catalog().table(table)?;
        let rid = self.db.catalog().insert_row(&t, row)?;
        self.undo.push(Undo::Insert { table: t.name.clone(), rid });
        Ok(())
    }

    /// Commit: keep all effects, release locks.
    pub fn commit(mut self) -> DbResult<TxnStats> {
        self.done = true;
        self.undo.clear();
        self.db.lock_manager().release_all(self.id);
        Ok(TxnStats { work: self.meter.snapshot(), lock_wait: self.lock_wait })
    }

    /// Roll back: undo every change this transaction made, release locks.
    pub fn rollback(mut self) -> DbResult<TxnStats> {
        let result = self.rollback_inner();
        self.done = true;
        self.db.lock_manager().release_all(self.id);
        result?;
        Ok(TxnStats { work: self.meter.snapshot(), lock_wait: self.lock_wait })
    }

    fn rollback_inner(&mut self) -> DbResult<()> {
        let _scope = MeterScope::enter(Arc::clone(&self.meter));
        // RIDs recorded at do-time can be stale by the time we undo: a heap
        // update or a re-insert may have moved the row. `remap` carries
        // "row recorded at rid R now lives at rid R2" forward through the
        // reverse replay.
        let mut remap: HashMap<(String, Rid), Rid> = HashMap::new();
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::Insert { table, rid } => {
                    let t = self.db.catalog().table(&table)?;
                    let rid = remap.remove(&(table, rid)).unwrap_or(rid);
                    self.db.catalog().delete_row(&t, rid)?;
                }
                Undo::Delete { table, rid, row } => {
                    let t = self.db.catalog().table(&table)?;
                    let new_rid = self.db.catalog().insert_row(&t, &row)?;
                    remap.insert((table, rid), new_rid);
                }
                Undo::Update { table, prev_rid, rid, old } => {
                    let t = self.db.catalog().table(&table)?;
                    let cur = remap.remove(&(table.clone(), rid)).unwrap_or(rid);
                    let restored = self.db.catalog().update_row(&t, cur, &old)?;
                    remap.insert((table, prev_rid), restored);
                }
            }
        }
        Ok(())
    }

    fn lock_table(&mut self, table: &str, mode: LockMode) -> DbResult<()> {
        let waited = self.db.lock_manager().acquire(self.id, table, mode)?;
        if waited > Duration::ZERO {
            self.lock_wait += waited;
            self.meter.bump(Counter::LockWaits);
            self.db.meter().bump(Counter::LockWaits);
        }
        Ok(())
    }

    fn lock_statement(&mut self, stmt: &Statement) -> DbResult<()> {
        if matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::CreateView { .. }
                | Statement::DropTable { .. }
                | Statement::DropIndex { .. }
                | Statement::DropView { .. }
                | Statement::Analyze { .. }
        ) {
            return Err(DbError::execution(
                "DDL is not transactional; execute it outside a transaction",
            ));
        }
        let (reads, writes) = referenced_tables(stmt, self.db.catalog());
        // Exclusive locks first, then shared, each in sorted name order, so
        // every transaction requests locks for one statement in the same
        // global order (deadlocks can still arise across statements).
        for t in &writes {
            self.lock_table(t, LockMode::Exclusive)?;
        }
        for t in reads.difference(&writes) {
            self.lock_table(t, LockMode::Shared)?;
        }
        Ok(())
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Best effort: a failed undo here has nowhere to report.
            let _ = self.rollback_inner();
            self.db.lock_manager().release_all(self.id);
        }
    }
}

/// Base tables a statement reads and writes (view references expanded to
/// the tables underneath). Names are upper-cased like the catalog's own
/// lookups. Unknown names are kept — the statement will fail later with a
/// proper catalog error; locking a nonexistent name is harmless.
pub fn referenced_tables(
    stmt: &Statement,
    catalog: &Catalog,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    match stmt {
        Statement::Select(q) => walk_select(q, catalog, &mut reads),
        Statement::Insert { table, rows, .. } => {
            writes.insert(table.to_ascii_uppercase());
            for row in rows {
                for e in row {
                    walk_expr(e, catalog, &mut reads);
                }
            }
        }
        Statement::Delete { table, filter } => {
            writes.insert(table.to_ascii_uppercase());
            if let Some(f) = filter {
                walk_expr(f, catalog, &mut reads);
            }
        }
        Statement::Update { table, assignments, filter } => {
            writes.insert(table.to_ascii_uppercase());
            for (_, e) in assignments {
                walk_expr(e, catalog, &mut reads);
            }
            if let Some(f) = filter {
                walk_expr(f, catalog, &mut reads);
            }
        }
        // CREATE VIEW reads its defining query's tables — callers that use
        // this for read-set analysis (not locking) want those names.
        Statement::CreateView { query, .. } => walk_select(query, catalog, &mut reads),
        // Other DDL takes no data locks (rejected inside transactions).
        _ => {}
    }
    (reads, writes)
}

fn walk_select(q: &SelectStmt, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    for t in &q.from {
        walk_tableref(t, catalog, reads);
    }
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, catalog, reads);
        }
    }
    if let Some(w) = &q.where_clause {
        walk_expr(w, catalog, reads);
    }
    for e in &q.group_by {
        walk_expr(e, catalog, reads);
    }
    if let Some(h) = &q.having {
        walk_expr(h, catalog, reads);
    }
    for o in &q.order_by {
        walk_expr(&o.expr, catalog, reads);
    }
}

fn walk_tableref(t: &TableRef, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    match t {
        TableRef::Named { name, .. } => {
            let upper = name.to_ascii_uppercase();
            if let Some(view) = catalog.view(&upper) {
                // Views cannot be self-referential (a view must plan at
                // CREATE time, before its own name exists), so recursion
                // terminates.
                if reads.insert(upper) {
                    walk_select(&view, catalog, reads);
                }
            } else {
                reads.insert(upper);
            }
        }
        TableRef::Join { left, right, on, .. } => {
            walk_tableref(left, catalog, reads);
            walk_tableref(right, catalog, reads);
            walk_expr(on, catalog, reads);
        }
        TableRef::Subquery { query, .. } => walk_select(query, catalog, reads),
    }
}

fn walk_expr(e: &Expr, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    match e {
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, catalog, reads);
            walk_expr(right, catalog, reads);
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, catalog, reads);
            walk_expr(low, catalog, reads);
            walk_expr(high, catalog, reads);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, catalog, reads);
            for e in list {
                walk_expr(e, catalog, reads);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            walk_expr(expr, catalog, reads);
            walk_select(query, catalog, reads);
        }
        Expr::Exists { query, .. } => walk_select(query, catalog, reads),
        Expr::ScalarSubquery(query) => walk_select(query, catalog, reads),
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, catalog, reads);
            walk_expr(pattern, catalog, reads);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                walk_expr(c, catalog, reads);
                walk_expr(v, catalog, reads);
            }
            if let Some(e) = else_expr {
                walk_expr(e, catalog, reads);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                walk_expr(a, catalog, reads);
            }
        }
        Expr::Extract { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::IntervalAdd { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Func { args, .. } => {
            for a in args {
                walk_expr(a, catalog, reads);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_compatibility_and_upgrade() {
        let lm = LockManager::new(Duration::from_millis(200));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.acquire(2, "t", LockMode::Shared).unwrap();
        assert_eq!(lm.held(1), vec!["T"]);
        // Upgrade blocked by the other reader times out.
        assert!(matches!(lm.acquire(1, "t", LockMode::Exclusive), Err(DbError::Deadlock(_))));
        lm.release_all(2);
        lm.acquire(1, "t", LockMode::Exclusive).unwrap();
        // X implies S; re-acquire is free.
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.release_all(1);
        lm.acquire(3, "t", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn referenced_tables_expands_views_and_subqueries() {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE base (a INTEGER)").unwrap();
        db.execute("CREATE TABLE other (b INTEGER)").unwrap();
        db.execute("CREATE VIEW v AS SELECT a FROM base").unwrap();
        let stmt = parse_statement("SELECT * FROM v WHERE a > (SELECT MAX(b) FROM other)").unwrap();
        let (reads, writes) = referenced_tables(&stmt, db.catalog());
        assert!(reads.contains("BASE") && reads.contains("OTHER") && reads.contains("V"));
        assert!(writes.is_empty());
        let stmt =
            parse_statement("UPDATE base SET a = 1 WHERE a IN (SELECT b FROM other)").unwrap();
        let (reads, writes) = referenced_tables(&stmt, db.catalog());
        assert_eq!(writes.iter().collect::<Vec<_>>(), vec!["BASE"]);
        assert!(reads.contains("OTHER"));
    }
}
