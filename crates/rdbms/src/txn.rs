//! Transactions for multi-user workloads.
//!
//! The paper's throughput test (TPC-D §5) runs N concurrent query streams
//! against one update stream. Concurrency control is strict two-phase
//! locking over the hierarchical lock manager in [`crate::lock`]:
//! IS/IX/S/X intention locks at table level with shared/exclusive key-range
//! locks underneath (Gray & Reuter multi-granularity locking — the scheme
//! the commercial RDBMS the paper benchmarks descends from).
//!
//! Granularity is chosen per statement from the planner's own access-path
//! analysis ([`crate::exec::plan::Plan::table_accesses`]):
//!
//! * a SELECT whose every access to a table is index-driven takes IS +
//!   shared key-range locks (literal primary-key bounds) or shared
//!   existing-row locks (run-time probes); any sequential scan falls back
//!   to a whole-table S lock, as do tables referenced only from expression
//!   subqueries (their subplans are not visible in the main plan tree);
//! * INSERT with literal primary keys takes IX + exclusive point locks
//!   flagged *fresh*, which slip past existing-row readers — this is what
//!   lets TPC-D refresh pairs run between queries instead of behind them;
//! * DELETE/UPDATE sargable on the primary key take IX + an exclusive
//!   key-range lock (phantom-protecting); anything else takes table X.
//!
//! Rollback is transaction-level via an undo log. Deadlocks are detected
//! with a wait-for graph across both lock levels; shared→exclusive
//! conversions wait for readers to drain (single upgrader per table) and
//! abort only on a genuine cycle or timeout. Every wait is metered as
//! [`Counter::LockWaits`] and the wall wait duration is accumulated per
//! transaction, so multi-stream drivers can attribute lock-wait time to
//! the right stream.

use crate::catalog::Catalog;
use crate::clock::{CostMeter, Counter, MeterScope, MeterSnapshot, WaitEvent};
use crate::db::{Database, ExecOutcome, Prepared, QueryResult};
use crate::error::{DbError, DbResult};
use crate::exec::plan::TableRead;
use crate::planner::sarg_helpers::pk_lock_range;
use crate::schema::Row;
use crate::sql::ast::{Expr, SelectItem, SelectStmt, Statement, TableRef};
use crate::sql::parse_statement;
use crate::storage::codec::encode_key;
use crate::storage::Rid;
use crate::types::Value;
use crate::wal::{LogPayload, Lsn, UndoAction, NULL_LSN};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

pub use crate::lock::{KeyRange, LockManager, LockMode, RowLock, RowMode, TxnId};

/// One undo-log record. Replayed in reverse on rollback; RIDs invalidated
/// by later undo steps (a heap update or re-insert can move a row) are
/// patched through a remap table during replay.
pub(crate) enum Undo {
    Insert { table: String, rid: Rid },
    Delete { table: String, rid: Rid, row: Row },
    Update { table: String, prev_rid: Rid, rid: Rid, old: Row },
}

/// Per-transaction metering summary returned by [`Txn::commit`].
#[derive(Debug, Clone, Copy)]
pub struct TxnStats {
    /// Work metered to this transaction (page reads, comparisons, ...).
    pub work: MeterSnapshot,
    /// Wall time the transaction spent blocked on locks.
    pub lock_wait: Duration,
}

/// An open transaction: strict 2PL table locks plus an undo log. Dropping
/// an uncommitted transaction rolls it back (best effort).
pub struct Txn<'db> {
    db: &'db Database,
    id: TxnId,
    meter: Arc<CostMeter>,
    undo: Vec<Undo>,
    /// LSN of the log record for each undo entry, parallel to `undo` (only
    /// populated when the database has a WAL; may be shorter than `undo` if
    /// logging itself failed). Rollback uses it to chain CLR `undo_next`.
    op_lsns: Vec<Lsn>,
    lock_wait: Duration,
    done: bool,
}

impl<'db> Txn<'db> {
    pub(crate) fn new(db: &'db Database, id: TxnId) -> Self {
        Txn {
            db,
            id,
            meter: CostMeter::new(),
            undo: Vec::new(),
            op_lsns: Vec::new(),
            lock_wait: Duration::ZERO,
            done: false,
        }
    }

    /// This transaction's identifier in the lock manager and the WAL.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Work metered to this transaction so far.
    pub fn work(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Wall time this transaction has spent blocked on locks.
    pub fn lock_wait(&self) -> Duration {
        self.lock_wait
    }

    /// Execute one SQL statement inside the transaction. SELECT takes
    /// shared locks on every referenced base table; DML takes an exclusive
    /// lock on its target (plus shared locks for subquery reads); DDL is
    /// rejected. A statement that fails mid-flight leaves its partial
    /// effects in the undo log — roll the transaction back to remove them.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.lock_statement(&stmt)?;
        let res = {
            let _scope = MeterScope::enter(Arc::clone(&self.meter));
            self.db.execute_statement_in_txn(&stmt, &mut self.undo)
        };
        // Log even a failed statement's partial effects: they are in the
        // store and in the undo log, so they must be in the WAL too (the
        // rollback that removes them will log compensation records).
        let logged = self.wal_log_new_ops();
        let out = res?;
        logged?;
        Ok(out)
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> DbResult<QueryResult> {
        self.execute(sql)?.rows()
    }

    /// Execute a prepared SELECT under this transaction's locks (the wire
    /// protocol's Execute message for a bound portal). Read locks come from
    /// the lock plan computed at prepare time — no replanning here.
    pub fn execute_prepared(&mut self, p: &Prepared, params: &[Value]) -> DbResult<QueryResult> {
        for (table, plan) in &p.lock_plan {
            match plan {
                ReadLockPlan::Table => self.lock_table(table, LockMode::Shared)?,
                ReadLockPlan::Rows(locks) => {
                    for lock in locks {
                        self.lock_row(table, lock.clone())?;
                    }
                }
            }
        }
        let _scope = MeterScope::enter(Arc::clone(&self.meter));
        self.db.execute_prepared(p, params)
    }

    /// Bulk-path insert of a pre-built row (the benchmark kit's refresh
    /// functions use this; constraint checks still apply). Takes an
    /// exclusive point lock on the row's primary key (IX at table level);
    /// tables without a primary key fall back to a table X lock.
    pub fn insert_row(&mut self, table: &str, row: &[Value]) -> DbResult<()> {
        let t = self.db.catalog().table(table)?;
        let pk_vals: Option<Vec<Value>> = if t.primary_key.is_empty() {
            None
        } else {
            let vals: Vec<Value> =
                t.primary_key.iter().filter_map(|&i| row.get(i).cloned()).collect();
            (vals.len() == t.primary_key.len() && !vals.iter().any(Value::is_null)).then_some(vals)
        };
        match pk_vals {
            Some(vals) => {
                let key = encode_key(&vals);
                self.lock_row(&t.name, RowLock::insert(KeyRange::point(&key)))?;
            }
            None => self.lock_table(&t.name, LockMode::Exclusive)?,
        }
        {
            let _scope = MeterScope::enter(Arc::clone(&self.meter));
            let rid = self.db.catalog().insert_row(&t, row)?;
            self.undo.push(Undo::Insert { table: t.name.clone(), rid });
        }
        self.wal_log_new_ops()
    }

    /// Append log records for undo entries not yet logged (everything past
    /// `op_lsns.len()`) and stamp the touched pages. No-op without a WAL.
    fn wal_log_new_ops(&mut self) -> DbResult<()> {
        let Some(wal) = self.db.wal() else {
            return Ok(());
        };
        if self.undo.len() == self.op_lsns.len() {
            return Ok(());
        }
        let payloads = self.db.wal_payloads_from_undo(&self.undo[self.op_lsns.len()..])?;
        let lsns = wal.append_batch(self.id, &payloads);
        self.db.stamp_payload_lsns(&payloads, &lsns);
        self.op_lsns.extend(lsns);
        Ok(())
    }

    /// Commit: keep all effects, release locks. With a WAL, a `Commit`
    /// record is appended and made durable per the log's
    /// [`crate::wal::CommitPolicy`] *before* locks are released — under
    /// group commit this is where the calling work process parks until a
    /// leader's force covers it.
    pub fn commit(mut self) -> DbResult<TxnStats> {
        let wal_result = match self.db.wal() {
            Some(wal) if !self.op_lsns.is_empty() => {
                let lsns = wal.append_batch(self.id, &[LogPayload::Commit]);
                wal.commit(lsns[0])
            }
            _ => Ok(()),
        };
        self.done = true;
        self.undo.clear();
        self.op_lsns.clear();
        self.db.lock_manager().release_all(self.id);
        wal_result?;
        Ok(TxnStats { work: self.meter.snapshot(), lock_wait: self.lock_wait })
    }

    /// Roll back: undo every change this transaction made, release locks.
    pub fn rollback(mut self) -> DbResult<TxnStats> {
        let result = self.rollback_inner();
        self.done = true;
        self.db.lock_manager().release_all(self.id);
        if result.is_err() {
            self.meter.bump(Counter::RollbackErrors);
            self.db.meter().bump(Counter::RollbackErrors);
        }
        result?;
        Ok(TxnStats { work: self.meter.snapshot(), lock_wait: self.lock_wait })
    }

    fn rollback_inner(&mut self) -> DbResult<()> {
        let mut staged = Vec::new();
        let result = self.undo_all(&mut staged);
        // Even when an undo step fails partway, the compensation records
        // staged so far and the Abort must reach the log file — otherwise a
        // crash after a failed rollback would replay the transaction's
        // operations as if the rollback never started. (The drop path used
        // to skip this when undo errored.)
        let logged = self.finish_wal_abort(staged);
        result?;
        logged
    }

    /// Replay the undo log in reverse, staging one compensation record per
    /// successfully undone *logged* operation (actions carry the original
    /// do-time RIDs; restart's remap table resolves placement drift).
    fn undo_all(&mut self, staged: &mut Vec<LogPayload>) -> DbResult<()> {
        let _scope = MeterScope::enter(Arc::clone(&self.meter));
        // RIDs recorded at do-time can be stale by the time we undo: a heap
        // update or a re-insert may have moved the row. `remap` carries
        // "row recorded at rid R now lives at rid R2" forward through the
        // reverse replay.
        let mut remap: HashMap<(String, Rid), Rid> = HashMap::new();
        while let Some(u) = self.undo.pop() {
            let idx = self.undo.len();
            // Ops past op_lsns.len() never made it into the log, so no CLR:
            // restart has nothing to compensate.
            let action = (idx < self.op_lsns.len()).then(|| match &u {
                Undo::Insert { table, rid } => {
                    UndoAction::Delete { table: table.clone(), rid: *rid }
                }
                Undo::Delete { table, rid, row } => {
                    UndoAction::Insert { table: table.clone(), rid: *rid, row: row.clone() }
                }
                Undo::Update { table, prev_rid, rid, old } => UndoAction::Revert {
                    table: table.clone(),
                    rid: *rid,
                    prev_rid: *prev_rid,
                    old: old.clone(),
                },
            });
            match u {
                Undo::Insert { table, rid } => {
                    let t = self.db.catalog().table(&table)?;
                    let rid = remap.remove(&(table, rid)).unwrap_or(rid);
                    self.db.catalog().delete_row(&t, rid)?;
                }
                Undo::Delete { table, rid, row } => {
                    let t = self.db.catalog().table(&table)?;
                    let new_rid = self.db.catalog().insert_row(&t, &row)?;
                    remap.insert((table, rid), new_rid);
                }
                Undo::Update { table, prev_rid, rid, old } => {
                    let t = self.db.catalog().table(&table)?;
                    let cur = remap.remove(&(table.clone(), rid)).unwrap_or(rid);
                    let restored = self.db.catalog().update_row(&t, cur, &old)?;
                    remap.insert((table, prev_rid), restored);
                }
            }
            if let Some(action) = action {
                let undo_next = if idx == 0 { NULL_LSN } else { self.op_lsns[idx - 1] };
                staged.push(LogPayload::Clr { undo_next, action });
            }
        }
        Ok(())
    }

    /// Append the staged compensation records and an `Abort`, then write
    /// them through to the log file. Aborts need not be fsynced, but their
    /// records must not sit only in this process's buffer — restart decides
    /// what is already compensated by reading them.
    fn finish_wal_abort(&mut self, staged: Vec<LogPayload>) -> DbResult<()> {
        let Some(wal) = self.db.wal() else {
            return Ok(());
        };
        if self.op_lsns.is_empty() {
            return Ok(());
        }
        let mut batch = staged;
        batch.push(LogPayload::Abort);
        let lsns = wal.append_batch(self.id, &batch);
        self.db.stamp_payload_lsns(&batch, &lsns);
        self.op_lsns.clear();
        wal.write_buffered(false)
    }

    fn lock_table(&mut self, table: &str, mode: LockMode) -> DbResult<()> {
        let waited = self.db.lock_manager().acquire(self.id, table, mode)?;
        self.note_wait(table, waited);
        Ok(())
    }

    fn lock_row(&mut self, table: &str, lock: RowLock) -> DbResult<()> {
        let waited = self.db.lock_manager().acquire_row(self.id, table, lock)?;
        self.note_wait(table, waited);
        Ok(())
    }

    fn note_wait(&mut self, table: &str, waited: Duration) {
        if waited > Duration::ZERO {
            self.lock_wait += waited;
            self.meter.bump(Counter::LockWaits);
            self.db.meter().bump(Counter::LockWaits);
            // Same condition as the LockWaits meter so M$WAIT_EVENTS lock
            // counts reconcile with it exactly.
            self.db.wait_stats().record(WaitEvent::Lock, waited);
            // Name the contended table on the active request trace, so a
            // slow request's lock segment says *what* it waited on.
            trace::request::annotate("lock_wait_table", table);
        }
    }

    fn lock_statement(&mut self, stmt: &Statement) -> DbResult<()> {
        if matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::CreateView { .. }
                | Statement::DropTable { .. }
                | Statement::DropIndex { .. }
                | Statement::DropView { .. }
                | Statement::Analyze { .. }
        ) {
            return Err(DbError::execution(
                "DDL is not transactional; execute it outside a transaction",
            ));
        }
        // Write locks first, then subquery read locks, each in sorted name
        // order, so every transaction requests locks for one statement in
        // the same global order (deadlocks can still arise across
        // statements).
        match stmt {
            Statement::Select(q) => self.lock_select(q)?,
            Statement::Insert { table, columns, rows } => {
                self.lock_insert(table, columns.as_deref(), rows)?;
                self.lock_subquery_reads(stmt)?;
            }
            Statement::Delete { table, filter } => {
                self.lock_dml(table, filter.as_ref(), false)?;
                self.lock_subquery_reads(stmt)?;
            }
            Statement::Update { table, assignments, filter } => {
                // Updating a primary-key column moves the row in key space:
                // a key-range lock derived from the filter would not cover
                // the destination, so fall back to a table lock.
                let force_table = match self.db.catalog().table(table) {
                    Ok(t) => assignments.iter().any(|(col, _)| {
                        t.schema
                            .resolve(None, col)
                            .map(|i| t.primary_key.contains(&i))
                            .unwrap_or(true)
                    }),
                    Err(_) => true,
                };
                self.lock_dml(table, filter.as_ref(), force_table)?;
                self.lock_subquery_reads(stmt)?;
            }
            _ => unreachable!("DDL rejected above"),
        }
        Ok(())
    }

    fn lock_select(&mut self, q: &SelectStmt) -> DbResult<()> {
        for (table, plan) in select_read_locks(self.db, q) {
            match plan {
                ReadLockPlan::Table => self.lock_table(&table, LockMode::Shared)?,
                ReadLockPlan::Rows(locks) => {
                    for lock in locks {
                        self.lock_row(&table, lock)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// INSERT with literal primary-key values takes exclusive *fresh* point
    /// locks (IX at the table), so it coexists with readers of existing
    /// rows. Anything else — no primary key, computed key expressions, a
    /// column list omitting a key column — takes a table X lock.
    fn lock_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
    ) -> DbResult<()> {
        let Ok(t) = self.db.catalog().table(table) else {
            // Statement will fail with a proper catalog error; locking the
            // nonexistent name is harmless (matches the old behaviour).
            return self.lock_table(table, LockMode::Exclusive);
        };
        if t.primary_key.is_empty() {
            return self.lock_table(&t.name, LockMode::Exclusive);
        }
        // Position of each primary-key column inside the VALUES tuples.
        let positions: Option<Vec<usize>> = match columns {
            None => Some(t.primary_key.clone()),
            Some(cols) => t
                .primary_key
                .iter()
                .map(|&ord| {
                    let name = &t.schema.columns()[ord].name;
                    cols.iter().position(|c| c.eq_ignore_ascii_case(name))
                })
                .collect(),
        };
        let Some(positions) = positions else {
            return self.lock_table(&t.name, LockMode::Exclusive);
        };
        let mut keys = Vec::with_capacity(rows.len());
        for row in rows {
            let mut vals = Vec::with_capacity(positions.len());
            for &p in &positions {
                match row.get(p) {
                    Some(Expr::Literal(v)) if !v.is_null() => vals.push(v.clone()),
                    _ => return self.lock_table(&t.name, LockMode::Exclusive),
                }
            }
            keys.push(encode_key(&vals));
        }
        for key in keys {
            self.lock_row(&t.name, RowLock::insert(KeyRange::point(&key)))?;
        }
        Ok(())
    }

    /// DELETE/UPDATE: an exclusive key-range lock when the filter is
    /// sargable on the primary key (IX at the table, phantom-protecting),
    /// table X otherwise.
    fn lock_dml(&mut self, table: &str, filter: Option<&Expr>, force_table: bool) -> DbResult<()> {
        if force_table {
            return self.lock_table(table, LockMode::Exclusive);
        }
        let Ok(t) = self.db.catalog().table(table) else {
            return self.lock_table(table, LockMode::Exclusive);
        };
        match filter.and_then(|f| pk_lock_range(&t, f)) {
            Some(range) => self.lock_row(&t.name, RowLock::exclusive(range)),
            None => self.lock_table(&t.name, LockMode::Exclusive),
        }
    }

    /// Shared table locks for every table a DML statement reads (subqueries
    /// in filters, assignments, or VALUES expressions).
    fn lock_subquery_reads(&mut self, stmt: &Statement) -> DbResult<()> {
        let (reads, writes) = referenced_tables(stmt, self.db.catalog());
        for t in reads.difference(&writes) {
            self.lock_table(t, LockMode::Shared)?;
        }
        Ok(())
    }
}

/// How a SELECT read-locks one table: whole-table shared, or a set of
/// row/key-range locks when every visible access is index-driven.
#[derive(Debug, Clone)]
pub enum ReadLockPlan {
    /// Whole-table shared lock (sequential scan somewhere in the plan).
    Table,
    /// Key-range / existing-row locks; every access is index-driven.
    Rows(Vec<RowLock>),
}

/// Per-table read-lock plan for a SELECT, derived from the planner's
/// access-path choices. Tables whose every plan access is index-driven get
/// row locks (key ranges for literal primary-key bounds, existing-row locks
/// for run-time probes); tables that are scanned, referenced only from
/// expression subqueries (whose subplans are not in the main plan tree), or
/// that fail to plan get whole-table shared locks. Exposed so workload
/// models can predict the same lock footprint the engine takes.
pub fn select_read_locks(db: &Database, q: &SelectStmt) -> Vec<(String, ReadLockPlan)> {
    let catalog = db.catalog();
    let mut reads = BTreeSet::new();
    walk_select(q, catalog, &mut reads);
    // Tables only reachable through expression subqueries must stay
    // table-locked: their subplans execute outside the visible plan tree.
    let mut coarse = BTreeSet::new();
    collect_subquery_tables_select(q, catalog, &mut coarse);
    let mut by_table: HashMap<String, Vec<TableRead>> = HashMap::new();
    match db.table_accesses(q) {
        Ok(accesses) => {
            for a in accesses {
                by_table.entry(a.table).or_default().push(a.read);
            }
        }
        // Planning failed (the statement will error at execute time too):
        // fall back to table locks on everything referenced.
        Err(_) => coarse.extend(reads.iter().cloned()),
    }
    let mut out = Vec::new();
    for table in &reads {
        let accesses = by_table.get(table);
        let needs_table = coarse.contains(table)
            || match accesses {
                None => true,
                Some(list) => list.iter().any(|r| matches!(r, TableRead::Scan)),
            };
        if needs_table {
            out.push((table.clone(), ReadLockPlan::Table));
        } else {
            let locks = accesses
                .expect("needs_table is true when absent")
                .iter()
                .map(|r| match r {
                    TableRead::PkRange(range) => RowLock::shared(range.clone()),
                    TableRead::Probe => RowLock::shared_existing(KeyRange::all()),
                    TableRead::Scan => unreachable!("scans force a table lock"),
                })
                .collect();
            out.push((table.clone(), ReadLockPlan::Rows(locks)));
        }
    }
    out
}

/// Tables referenced from *expression* subqueries (scalar / IN / EXISTS) of
/// a SELECT, recursing through derived tables and views whose own bodies
/// may contain such subqueries. FROM-clause tables themselves are excluded:
/// their scans appear in the main plan tree.
fn collect_subquery_tables_select(q: &SelectStmt, catalog: &Catalog, out: &mut BTreeSet<String>) {
    for t in &q.from {
        collect_subquery_tables_tableref(t, catalog, out);
    }
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            collect_subquery_tables_expr(expr, catalog, out);
        }
    }
    if let Some(w) = &q.where_clause {
        collect_subquery_tables_expr(w, catalog, out);
    }
    for e in &q.group_by {
        collect_subquery_tables_expr(e, catalog, out);
    }
    if let Some(h) = &q.having {
        collect_subquery_tables_expr(h, catalog, out);
    }
    for o in &q.order_by {
        collect_subquery_tables_expr(&o.expr, catalog, out);
    }
}

fn collect_subquery_tables_tableref(t: &TableRef, catalog: &Catalog, out: &mut BTreeSet<String>) {
    match t {
        TableRef::Named { name, .. } => {
            if let Some(view) = catalog.view(&name.to_ascii_uppercase()) {
                collect_subquery_tables_select(&view, catalog, out);
            }
        }
        TableRef::Join { left, right, on, .. } => {
            collect_subquery_tables_tableref(left, catalog, out);
            collect_subquery_tables_tableref(right, catalog, out);
            collect_subquery_tables_expr(on, catalog, out);
        }
        TableRef::Subquery { query, .. } => collect_subquery_tables_select(query, catalog, out),
    }
}

fn collect_subquery_tables_expr(e: &Expr, catalog: &Catalog, out: &mut BTreeSet<String>) {
    match e {
        Expr::InSubquery { expr, query, .. } => {
            collect_subquery_tables_expr(expr, catalog, out);
            walk_select(query, catalog, out);
        }
        Expr::Exists { query, .. } => walk_select(query, catalog, out),
        Expr::ScalarSubquery(query) => walk_select(query, catalog, out),
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { expr, .. } => collect_subquery_tables_expr(expr, catalog, out),
        Expr::Binary { left, right, .. } => {
            collect_subquery_tables_expr(left, catalog, out);
            collect_subquery_tables_expr(right, catalog, out);
        }
        Expr::Between { expr, low, high, .. } => {
            collect_subquery_tables_expr(expr, catalog, out);
            collect_subquery_tables_expr(low, catalog, out);
            collect_subquery_tables_expr(high, catalog, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_subquery_tables_expr(expr, catalog, out);
            for e in list {
                collect_subquery_tables_expr(e, catalog, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_subquery_tables_expr(expr, catalog, out);
            collect_subquery_tables_expr(pattern, catalog, out);
        }
        Expr::IsNull { expr, .. } => collect_subquery_tables_expr(expr, catalog, out),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                collect_subquery_tables_expr(c, catalog, out);
                collect_subquery_tables_expr(v, catalog, out);
            }
            if let Some(e) = else_expr {
                collect_subquery_tables_expr(e, catalog, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_subquery_tables_expr(a, catalog, out);
            }
        }
        Expr::Extract { expr, .. } => collect_subquery_tables_expr(expr, catalog, out),
        Expr::IntervalAdd { expr, .. } => collect_subquery_tables_expr(expr, catalog, out),
        Expr::Func { args, .. } => {
            for a in args {
                collect_subquery_tables_expr(a, catalog, out);
            }
        }
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.done {
            // A failed undo here has nowhere to return an error, but a
            // corrupted-undo path must at least be observable: count it.
            if self.rollback_inner().is_err() {
                self.meter.bump(Counter::RollbackErrors);
                self.db.meter().bump(Counter::RollbackErrors);
            }
            self.db.lock_manager().release_all(self.id);
        }
    }
}

/// Base tables a statement reads and writes (view references expanded to
/// the tables underneath). Names are upper-cased like the catalog's own
/// lookups. Unknown names are kept — the statement will fail later with a
/// proper catalog error; locking a nonexistent name is harmless.
pub fn referenced_tables(
    stmt: &Statement,
    catalog: &Catalog,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    match stmt {
        Statement::Select(q) => walk_select(q, catalog, &mut reads),
        Statement::Insert { table, rows, .. } => {
            writes.insert(table.to_ascii_uppercase());
            for row in rows {
                for e in row {
                    walk_expr(e, catalog, &mut reads);
                }
            }
        }
        Statement::Delete { table, filter } => {
            writes.insert(table.to_ascii_uppercase());
            if let Some(f) = filter {
                walk_expr(f, catalog, &mut reads);
            }
        }
        Statement::Update { table, assignments, filter } => {
            writes.insert(table.to_ascii_uppercase());
            for (_, e) in assignments {
                walk_expr(e, catalog, &mut reads);
            }
            if let Some(f) = filter {
                walk_expr(f, catalog, &mut reads);
            }
        }
        // CREATE VIEW reads its defining query's tables — callers that use
        // this for read-set analysis (not locking) want those names.
        Statement::CreateView { query, .. } => walk_select(query, catalog, &mut reads),
        // Other DDL takes no data locks (rejected inside transactions).
        _ => {}
    }
    (reads, writes)
}

fn walk_select(q: &SelectStmt, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    for t in &q.from {
        walk_tableref(t, catalog, reads);
    }
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, catalog, reads);
        }
    }
    if let Some(w) = &q.where_clause {
        walk_expr(w, catalog, reads);
    }
    for e in &q.group_by {
        walk_expr(e, catalog, reads);
    }
    if let Some(h) = &q.having {
        walk_expr(h, catalog, reads);
    }
    for o in &q.order_by {
        walk_expr(&o.expr, catalog, reads);
    }
}

fn walk_tableref(t: &TableRef, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    match t {
        TableRef::Named { name, .. } => {
            let upper = name.to_ascii_uppercase();
            // Virtual M$ monitoring views take no locks and are not
            // plan-cache dependencies.
            if crate::monitor::is_monitor_name(&upper) {
                return;
            }
            if let Some(view) = catalog.view(&upper) {
                // Views cannot be self-referential (a view must plan at
                // CREATE time, before its own name exists), so recursion
                // terminates.
                if reads.insert(upper) {
                    walk_select(&view, catalog, reads);
                }
            } else {
                reads.insert(upper);
            }
        }
        TableRef::Join { left, right, on, .. } => {
            walk_tableref(left, catalog, reads);
            walk_tableref(right, catalog, reads);
            walk_expr(on, catalog, reads);
        }
        TableRef::Subquery { query, .. } => walk_select(query, catalog, reads),
    }
}

fn walk_expr(e: &Expr, catalog: &Catalog, reads: &mut BTreeSet<String>) {
    match e {
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, catalog, reads);
            walk_expr(right, catalog, reads);
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, catalog, reads);
            walk_expr(low, catalog, reads);
            walk_expr(high, catalog, reads);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, catalog, reads);
            for e in list {
                walk_expr(e, catalog, reads);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            walk_expr(expr, catalog, reads);
            walk_select(query, catalog, reads);
        }
        Expr::Exists { query, .. } => walk_select(query, catalog, reads),
        Expr::ScalarSubquery(query) => walk_select(query, catalog, reads),
        Expr::Like { expr, pattern, .. } => {
            walk_expr(expr, catalog, reads);
            walk_expr(pattern, catalog, reads);
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                walk_expr(c, catalog, reads);
                walk_expr(v, catalog, reads);
            }
            if let Some(e) = else_expr {
                walk_expr(e, catalog, reads);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                walk_expr(a, catalog, reads);
            }
        }
        Expr::Extract { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::IntervalAdd { expr, .. } => walk_expr(expr, catalog, reads),
        Expr::Func { args, .. } => {
            for a in args {
                walk_expr(a, catalog, reads);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_compatibility_and_upgrade() {
        let lm = LockManager::new(Duration::from_millis(200));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.acquire(2, "t", LockMode::Shared).unwrap();
        assert_eq!(lm.held(1), vec!["T"]);
        // Upgrade blocked by the other reader times out.
        assert!(matches!(lm.acquire(1, "t", LockMode::Exclusive), Err(DbError::Deadlock(_))));
        lm.release_all(2);
        lm.acquire(1, "t", LockMode::Exclusive).unwrap();
        // X implies S; re-acquire is free.
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.release_all(1);
        lm.acquire(3, "t", LockMode::Exclusive).unwrap();
    }

    #[test]
    fn referenced_tables_expands_views_and_subqueries() {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE base (a INTEGER)").unwrap();
        db.execute("CREATE TABLE other (b INTEGER)").unwrap();
        db.execute("CREATE VIEW v AS SELECT a FROM base").unwrap();
        let stmt = parse_statement("SELECT * FROM v WHERE a > (SELECT MAX(b) FROM other)").unwrap();
        let (reads, writes) = referenced_tables(&stmt, db.catalog());
        assert!(reads.contains("BASE") && reads.contains("OTHER") && reads.contains("V"));
        assert!(writes.is_empty());
        let stmt =
            parse_statement("UPDATE base SET a = 1 WHERE a IN (SELECT b FROM other)").unwrap();
        let (reads, writes) = referenced_tables(&stmt, db.catalog());
        assert_eq!(writes.iter().collect::<Vec<_>>(), vec!["BASE"]);
        assert!(reads.contains("OTHER"));
    }
}
