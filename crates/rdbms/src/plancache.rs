//! Shared, size-bounded plan cache keyed by normalized SQL.
//!
//! The paper's 2.2G-vs-3.0E contrast (section 4) is about what crosses the
//! client/server interface: OPEN ships literal SQL that must be parsed and
//! planned on every call, REOPEN re-executes an already-prepared statement.
//! This cache gives the server's Parse path REOPEN economics even when
//! clients send literal SQL: the statement is normalized by replacing
//! predicate-position constants with parameters
//! ([`SelectStmt::parameterized_collect`]), so every literal variant of a
//! query shares one cached plan, and that plan sees parameter markers —
//! which the planner treats as sargable probes, yielding index access paths
//! and row-level locks instead of the full scans literal planning produces
//! for selective predicates.
//!
//! Keying is by the canonical render of the *normalized AST*, not by
//! text munging: lexer-level literal replacement would merge statements
//! that differ in non-predicate literals (e.g. projected constants), which
//! the AST normalization deliberately leaves in place.
//!
//! Invalidation is by catalog version: each entry records the catalog
//! version at prepare time plus the set of objects the plan depends on; a
//! lookup revalidates each dependency's version
//! ([`crate::catalog::Catalog::object_version`]). Per-object versions keep
//! unrelated DDL (TPC-D Q15 creating and dropping its `revenue0` view every
//! execution) from flushing the whole cache.

use crate::clock::Counter;
use crate::db::{Database, Prepared};
use crate::error::{DbError, DbResult};
use crate::monitor::is_monitor_name;
use crate::sql::ast::{self, SelectStmt, Statement};
use crate::sql::parse_statement;
use crate::types::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A cache lookup's result: the shared plan plus the bind values that were
/// extracted from the literal text during normalization. Execute with
/// `extracted_params` ++ client-supplied params (a statement that already
/// contained `?` markers extracts nothing and uses client binds only).
pub struct CachedPlan {
    pub prepared: Arc<Prepared>,
    /// Values the normalizer stripped from the literal text, in parameter
    /// order. Empty when the client sent a pre-parameterized statement.
    pub extracted_params: Vec<Value>,
    /// Whether the plan came from the cache (vs. freshly planned).
    pub cache_hit: bool,
    /// Canonical render of the normalized AST — the cache key. Stable
    /// across literal variants of the same statement, which makes it the
    /// natural aggregation key for per-statement monitoring
    /// ([`crate::monitor::StatementCollector`]).
    pub key: Arc<str>,
}

/// One cached plan as reported by [`PlanCache::entries_snapshot`] (the
/// M$PLAN_CACHE monitoring view).
#[derive(Debug, Clone)]
pub struct PlanCacheEntryInfo {
    /// Display text of the statement (first literal text seen for this
    /// normal form, whitespace-collapsed and bounded).
    pub statement: String,
    /// Cache hits served by this entry since insertion.
    pub hits: u64,
    /// Logical clock of the last lookup (larger = more recent).
    pub last_used: u64,
    /// Parameter markers the normalized plan carries.
    pub n_params: usize,
    /// Base tables/views the plan depends on (invalidation set).
    pub dependencies: Vec<String>,
}

struct Entry {
    prepared: Arc<Prepared>,
    /// Display text of the statement (first literal text seen).
    display: String,
    /// Cache hits served by this entry since insertion.
    hits: u64,
    /// Logical clock of the last lookup, for LRU eviction.
    last_used: u64,
}

/// Shared, size-bounded plan cache. One per server; sessions call
/// [`PlanCache::prepare`] concurrently.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<Arc<str>, Entry>,
    tick: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (LRU eviction). Capacity 0
    /// disables caching (every lookup is a miss).
    pub fn new(capacity: usize) -> Self {
        PlanCache { capacity, inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0 }) }
    }

    /// Number of currently cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// Parse + normalize `sql` and return a shared plan for it, planning on
    /// a miss. Only SELECT is cacheable; other statements error here and
    /// must take the literal execution path. Hits, misses, and evictions
    /// are metered on the database's cost meter.
    pub fn prepare(&self, db: &Database, sql: &str) -> DbResult<CachedPlan> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(q) => self.prepare_inner(db, &q, Some(sql)),
            other => Err(DbError::analysis(format!("can only cache SELECT plans, got {other:?}"))),
        }
    }

    /// [`PlanCache::prepare`] for an already-parsed SELECT.
    pub fn prepare_select(&self, db: &Database, q: &SelectStmt) -> DbResult<CachedPlan> {
        self.prepare_inner(db, q, None)
    }

    fn prepare_inner(
        &self,
        db: &Database,
        q: &SelectStmt,
        sql: Option<&str>,
    ) -> DbResult<CachedPlan> {
        // Normalize: statements that already carry `?` markers are their
        // own normal form (re-parameterizing would renumber the client's
        // binds); literal statements get predicate constants stripped.
        let (normalized, stripped) =
            if q.has_params() { (q.clone(), Vec::new()) } else { q.parameterized_collect() };
        let extracted_params = db.eval_const_exprs(&stripped)?;
        let key: Arc<str> = format!("{normalized:?}").into();

        // Monitoring views produce their rows at execute time and carry no
        // catalog version to revalidate against; their queries are also
        // exactly the traffic we do not want evicting workload plans. They
        // bypass the cache entirely and are metered as misses.
        let mut monitor = false;
        ast::visit_referenced_tables(&normalized, &mut |name| monitor |= is_monitor_name(name));
        if monitor {
            db.meter().bump(Counter::PlanCacheMisses);
            let prepared = Arc::new(db.prepare_select(&normalized)?);
            return Ok(CachedPlan { prepared, extracted_params, cache_hit: false, key });
        }

        if let Some(prepared) = self.lookup(db, &key) {
            db.meter().bump(Counter::PlanCacheHits);
            return Ok(CachedPlan { prepared, extracted_params, cache_hit: true, key });
        }

        db.meter().bump(Counter::PlanCacheMisses);
        let prepared = Arc::new(db.prepare_select(&normalized)?);
        let display = crate::monitor::display_text(sql.unwrap_or("<select prepared from AST>"));
        self.insert(db, Arc::clone(&key), display, Arc::clone(&prepared));
        Ok(CachedPlan { prepared, extracted_params, cache_hit: false, key })
    }

    /// Return the entry for `key` if present and still valid against the
    /// catalog; remove it if stale.
    fn lookup(&self, db: &Database, key: &str) -> Option<Arc<Prepared>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(key)?;
        let valid = entry
            .prepared
            .dependencies
            .iter()
            .all(|dep| db.catalog().object_version(dep) <= entry.prepared.catalog_version);
        if valid {
            entry.last_used = tick;
            entry.hits += 1;
            Some(Arc::clone(&entry.prepared))
        } else {
            // Stale plan: DDL touched a dependency after prepare. Drop the
            // entry; the caller replans and reinserts.
            inner.entries.remove(key);
            None
        }
    }

    fn insert(&self, db: &Database, key: Arc<str>, display: String, prepared: Arc<Prepared>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        while inner.entries.len() >= self.capacity && !inner.entries.contains_key(&key) {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| Arc::clone(k))
                .expect("non-empty map at capacity");
            inner.entries.remove(&victim);
            db.meter().bump(Counter::PlanCacheEvictions);
        }
        inner.entries.insert(key, Entry { prepared, display, hits: 0, last_used: tick });
    }

    /// A point-in-time listing of the cached plans, most recently used
    /// first. Backs the M$PLAN_CACHE monitoring view.
    pub fn entries_snapshot(&self) -> Vec<PlanCacheEntryInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<PlanCacheEntryInfo> = inner
            .entries
            .values()
            .map(|e| PlanCacheEntryInfo {
                statement: e.display.clone(),
                hits: e.hits,
                last_used: e.last_used,
                n_params: e.prepared.n_params,
                dependencies: e.prepared.dependencies.clone(),
            })
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.last_used));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;

    fn db_with_table() -> Database {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE t (a INTEGER NOT NULL, b INTEGER, PRIMARY KEY (a))").unwrap();
        for i in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10)).unwrap();
        }
        db
    }

    #[test]
    fn literal_variants_share_one_plan() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let a = cache.prepare(&db, "SELECT b FROM t WHERE a = 3").unwrap();
        assert!(!a.cache_hit);
        assert_eq!(a.extracted_params, vec![Value::Int(3)]);
        let b = cache.prepare(&db, "SELECT b FROM t WHERE a = 17").unwrap();
        assert!(b.cache_hit, "different literal must hit the same normalized plan");
        assert_eq!(b.extracted_params, vec![Value::Int(17)]);
        assert!(Arc::ptr_eq(&a.prepared, &b.prepared));
        assert_eq!(cache.len(), 1);

        let rows = db.execute_prepared(&b.prepared, &b.extracted_params).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(170)]]);
    }

    #[test]
    fn non_predicate_literals_do_not_collide() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let a = cache.prepare(&db, "SELECT 1 FROM t WHERE a = 2").unwrap();
        let b = cache.prepare(&db, "SELECT 9 FROM t WHERE a = 2").unwrap();
        assert!(!b.cache_hit, "projected constants differ: plans must not be shared");
        assert_eq!(cache.len(), 2);
        let ra = db.execute_prepared(&a.prepared, &a.extracted_params).unwrap();
        let rb = db.execute_prepared(&b.prepared, &b.extracted_params).unwrap();
        assert_eq!(ra.rows, vec![vec![Value::Int(1)]]);
        assert_eq!(rb.rows, vec![vec![Value::Int(9)]]);
    }

    #[test]
    fn pre_parameterized_statement_uses_client_binds() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let p = cache.prepare(&db, "SELECT b FROM t WHERE a = ?").unwrap();
        assert!(p.extracted_params.is_empty());
        assert_eq!(p.prepared.n_params, 1);
        let again = cache.prepare(&db, "SELECT b FROM t WHERE a = ?").unwrap();
        assert!(again.cache_hit);
        let rows = db.execute_prepared(&p.prepared, &[Value::Int(5)]).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(50)]]);
    }

    #[test]
    fn ddl_on_dependency_invalidates_entry() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let before = cache.prepare(&db, "SELECT b FROM t WHERE a = 3").unwrap();
        assert!(!before.cache_hit);
        db.execute("CREATE INDEX t_b ON t (b)").unwrap();
        let after = cache.prepare(&db, "SELECT b FROM t WHERE a = 3").unwrap();
        assert!(!after.cache_hit, "DDL on t must force a replan");
        // Unrelated DDL leaves the (fresh) entry alone.
        db.execute("CREATE TABLE u (x INTEGER NOT NULL, PRIMARY KEY (x))").unwrap();
        let unrelated = cache.prepare(&db, "SELECT b FROM t WHERE a = 3").unwrap();
        assert!(unrelated.cache_hit, "DDL on another table must not invalidate t's plan");
    }

    #[test]
    fn lru_eviction_at_capacity_is_metered() {
        let db = db_with_table();
        let cache = PlanCache::new(2);
        cache.prepare(&db, "SELECT b FROM t WHERE a = 1").unwrap();
        cache.prepare(&db, "SELECT a FROM t WHERE b = 1").unwrap();
        // Touch the first so the second is the LRU victim.
        cache.prepare(&db, "SELECT b FROM t WHERE a = 2").unwrap();
        cache.prepare(&db, "SELECT a, b FROM t WHERE a = 1").unwrap();
        assert_eq!(cache.len(), 2);
        let snap = db.meter().snapshot();
        assert_eq!(snap.plan_cache_evictions(), 1);
        // The survivor still hits; the victim replans.
        assert!(cache.prepare(&db, "SELECT b FROM t WHERE a = 9").unwrap().cache_hit);
        assert!(!cache.prepare(&db, "SELECT a FROM t WHERE b = 9").unwrap().cache_hit);
    }

    #[test]
    fn monitor_view_queries_bypass_the_cache() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let a = cache.prepare(&db, "SELECT EVENT, WAITS FROM M$WAIT_EVENTS").unwrap();
        assert!(!a.cache_hit);
        let b = cache.prepare(&db, "SELECT EVENT, WAITS FROM M$WAIT_EVENTS").unwrap();
        assert!(!b.cache_hit, "M$ statements must not be cached");
        assert_eq!(cache.len(), 0);
        // A subquery reference bypasses too.
        let c = cache
            .prepare(&db, "SELECT b FROM t WHERE a = (SELECT COUNT(*) FROM M$WAIT_EVENTS)")
            .unwrap();
        assert!(!c.cache_hit);
        assert_eq!(cache.len(), 0);
        // Regular statements still cache.
        cache.prepare(&db, "SELECT b FROM t WHERE a = 1").unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entries_snapshot_reports_hits_and_display_text() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        cache.prepare(&db, "SELECT b  FROM\n  t WHERE a = 3").unwrap();
        cache.prepare(&db, "SELECT b FROM t WHERE a = 4").unwrap();
        cache.prepare(&db, "SELECT a FROM t WHERE b = 0").unwrap();
        let entries = cache.entries_snapshot();
        assert_eq!(entries.len(), 2);
        // Most recently used first.
        assert_eq!(entries[0].statement, "SELECT a FROM t WHERE b = 0");
        assert_eq!(entries[0].hits, 0);
        // Display text is the first-seen literal, whitespace-collapsed.
        assert_eq!(entries[1].statement, "SELECT b FROM t WHERE a = 3");
        assert_eq!(entries[1].hits, 1);
        assert_eq!(entries[1].dependencies, vec!["T".to_string()]);
        assert_eq!(entries[1].n_params, 1);
    }

    #[test]
    fn cached_plan_key_is_stable_across_literals() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        let a = cache.prepare(&db, "SELECT b FROM t WHERE a = 3").unwrap();
        let b = cache.prepare(&db, "SELECT b FROM t WHERE a = 99").unwrap();
        assert_eq!(a.key, b.key, "literal variants must share a statement key");
        let c = cache.prepare(&db, "SELECT a FROM t WHERE b = 3").unwrap();
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn hit_ratio_is_metered() {
        let db = db_with_table();
        let cache = PlanCache::new(8);
        for i in 0..10 {
            cache.prepare(&db, &format!("SELECT b FROM t WHERE a = {i}")).unwrap();
        }
        let snap = db.meter().snapshot();
        assert_eq!(snap.plan_cache_misses(), 1);
        assert_eq!(snap.plan_cache_hits(), 9);
        assert!(snap.plan_cache_hit_ratio() > 0.89);
    }
}
