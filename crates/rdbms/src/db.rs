//! The `Database` façade: parse, plan, execute.

use crate::catalog::Catalog;
use crate::clock::{
    Calibration, CostMeter, MeterSnapshot, RequestCtx, TraceRing, WaitEvent, WaitStats,
};
use crate::error::{DbError, DbResult};
use crate::exec::expr::ExecCtx;
use crate::exec::plan::{Plan, TableAccess};
use crate::lock::{LockManager, DEFAULT_ESCALATION_THRESHOLD};
use crate::monitor::{MonitorView, StatementCollector};
use crate::planner::{PlannedQuery, Planner, PlannerConfig};
use crate::schema::{Column, Row, Schema};
use crate::sql::ast::{Expr, SelectStmt, Statement};
use crate::sql::parse_statement;
use crate::storage::{Pager, PagerConfig};
use crate::txn::{Txn, Undo};
use crate::types::{DataType, Value};
use crate::wal::{LogPayload, Lsn, RecoveryReport, UndoAction, Wal, WalConfig, SYSTEM_TXN};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Database configuration.
#[derive(Debug, Clone)]
pub struct DbConfig {
    pub pager: PagerConfig,
    pub planner: PlannerConfig,
    pub calibration: Calibration,
    /// How long a transaction blocks on a lock before it is aborted as a
    /// presumed-deadlock victim (backstop behind the wait-for graph).
    pub lock_timeout: Duration,
    /// Row locks a transaction may hold on one table before the lock
    /// manager trades them for a single table lock.
    pub lock_escalation_threshold: usize,
    /// Write-ahead logging: `None` (the default) runs without durability,
    /// exactly as before the WAL existed; `Some` logs every mutation to
    /// the named file and makes commits durable per the
    /// [`crate::wal::CommitPolicy`].
    pub wal: Option<WalConfig>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            pager: PagerConfig::default(),
            planner: PlannerConfig::default(),
            calibration: Calibration::default(),
            lock_timeout: Duration::from_secs(5),
            lock_escalation_threshold: DEFAULT_ESCALATION_THRESHOLD,
            wal: None,
        }
    }
}

/// Completed request traces retained for M$TRACES / M$SPANS and Chrome
/// export. 4096 requests of live history — enough for any experiment's
/// tail analysis, bounded enough to never matter for memory.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 4096;

/// A query result set.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single value convenience (first row, first column).
    pub fn scalar(&self) -> DbResult<Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .cloned()
            .ok_or_else(|| DbError::execution("empty result, expected scalar"))
    }
}

/// Outcome of executing an arbitrary statement.
#[derive(Debug)]
pub enum ExecOutcome {
    Rows(QueryResult),
    /// Rows affected by DML.
    Count(u64),
    /// DDL.
    Done,
}

impl ExecOutcome {
    pub fn rows(self) -> DbResult<QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(DbError::execution(format!("expected rows, got {other:?}"))),
        }
    }

    pub fn count(self) -> DbResult<u64> {
        match self {
            ExecOutcome::Count(n) => Ok(n),
            other => Err(DbError::execution(format!("expected count, got {other:?}"))),
        }
    }
}

/// A prepared (parameterized) query: planned once with parameter markers, so
/// the optimizer never sees the constants (the paper's §4.1 behaviour), then
/// re-executable with fresh bindings — the engine-side half of SAP R/3's
/// cursor caching.
pub struct Prepared {
    pub plan: Arc<Plan>,
    pub schema: Schema,
    pub n_params: usize,
    /// EXPLAIN text captured at prepare time.
    pub plan_description: String,
    /// Read locks a transaction takes before running this plan, computed
    /// once at prepare time from the planner's access paths (probes →
    /// shared row locks, scans → whole-table shared). Re-deriving this on
    /// every execute would replan the statement, defeating the point of
    /// preparing it.
    pub lock_plan: Vec<(String, crate::txn::ReadLockPlan)>,
    /// Base tables/views the statement depends on (uppercase), for
    /// catalog-version invalidation by a plan cache.
    pub dependencies: Vec<String>,
    /// [`crate::catalog::Catalog::version`] observed at prepare time.
    pub catalog_version: u64,
}

/// The database engine.
pub struct Database {
    pager: Arc<Pager>,
    catalog: Catalog,
    meter: Arc<CostMeter>,
    planner_config: RwLock<PlannerConfig>,
    calibration: Calibration,
    locks: Arc<LockManager>,
    next_txn_id: AtomicU64,
    wal: Option<Arc<Wal>>,
    /// Engine-wide wait-event accumulators (lock waits, log forces,
    /// group-commit parks, buffer misses, exec time) behind M$WAIT_EVENTS.
    wait: Arc<WaitStats>,
    /// Per-statement collector behind M$STATEMENTS, fed by the server
    /// session layer (and anything else that calls
    /// [`StatementCollector::record`]).
    statements: Arc<StatementCollector>,
    /// Gates the per-statement Exec timers so the observe experiment can
    /// measure collectors-off throughput. Wait events recorded at genuine
    /// block points (locks, log forces) stay on — they cost nothing unless
    /// the thread actually waited.
    monitor_enabled: AtomicBool,
    /// Ring of completed per-request traces behind M$TRACES / M$SPANS.
    /// Requests are minted via [`Database::begin_request`], which gates on
    /// `monitor_enabled` so collectors-off runs trace nothing.
    traces: Arc<TraceRing>,
}

impl Database {
    /// Build a database. Panics if `config.wal` names a log file that
    /// cannot be created — use [`Database::open`] to handle that error.
    pub fn new(config: DbConfig) -> Self {
        Database::open(config).expect("database open failed")
    }

    /// Build a database, creating (truncating) the write-ahead log file if
    /// `config.wal` is set.
    pub fn open(config: DbConfig) -> DbResult<Self> {
        let mut db = Database::fresh_for_recovery(&config);
        if let Some(wal_cfg) = &config.wal {
            let wal = Arc::new(Wal::create(wal_cfg, Arc::clone(&db.meter))?);
            wal.set_wait_stats(Arc::clone(&db.wait));
            db.wal = Some(wal);
        }
        Ok(db)
    }

    /// Restart from an existing write-ahead log: ARIES analysis/redo/undo
    /// over the log named by `config.wal`, returning the recovered
    /// database (which keeps logging to the same file) and a report of
    /// what restart found. See [`crate::wal::recovery`].
    pub fn recover(config: DbConfig) -> DbResult<(Database, RecoveryReport)> {
        crate::wal::recover(config)
    }

    /// The core engine without any WAL attached (also the substrate the
    /// recovery replay runs against, hence the name).
    pub(crate) fn fresh_for_recovery(config: &DbConfig) -> Self {
        let meter = CostMeter::new();
        let wait = WaitStats::new();
        let pager = Pager::new(config.pager, Arc::clone(&meter));
        pager.set_wait_stats(Arc::clone(&wait));
        let locks = Arc::new(LockManager::configured(
            config.lock_timeout,
            config.lock_escalation_threshold,
            Some(Arc::clone(&meter)),
        ));
        let db = Database {
            catalog: Catalog::new(Arc::clone(&pager)),
            pager,
            meter,
            planner_config: RwLock::new(config.planner),
            calibration: config.calibration,
            locks,
            next_txn_id: AtomicU64::new(1),
            wal: None,
            wait,
            statements: StatementCollector::new(),
            monitor_enabled: AtomicBool::new(true),
            traces: TraceRing::new(DEFAULT_TRACE_RING_CAPACITY),
        };
        db.register_builtin_monitor_views();
        db
    }

    /// Register the engine-level `M$` views: M$WAIT_EVENTS over the wait
    /// accumulators, M$STATEMENTS over the per-statement collector,
    /// M$LOCKS over the lock manager, and M$TRACES / M$SPANS over the
    /// request-trace ring. The server and R/3 layers register their own
    /// views (M$SESSIONS, M$PLAN_CACHE, M$WORKLOAD) on top.
    fn register_builtin_monitor_views(&self) {
        self.catalog
            .register_monitor_view(crate::monitor::wait_events_view(Arc::clone(&self.wait)));
        self.catalog.register_monitor_view(self.statements.view());
        self.catalog.register_monitor_view(crate::monitor::traces_view(Arc::clone(&self.traces)));
        self.catalog.register_monitor_view(crate::monitor::spans_view(Arc::clone(&self.traces)));
        let locks = Arc::clone(&self.locks);
        self.catalog.register_monitor_view(MonitorView::new(
            "M$LOCKS",
            vec![
                Column::new("TABLE_NAME", DataType::VarChar(64)),
                Column::new("TXN", DataType::Int),
                Column::new("STATE", DataType::VarChar(8)),
                Column::new("MODE", DataType::VarChar(16)),
                Column::new("ROW_LOCKS", DataType::Int),
            ],
            move || {
                locks
                    .snapshot_locks()
                    .into_iter()
                    .map(|l| {
                        vec![
                            Value::Str(l.table),
                            Value::Int(l.txn as i64),
                            Value::str(l.state),
                            Value::Str(l.mode),
                            Value::Int(l.row_locks as i64),
                        ]
                    })
                    .collect()
            },
        ));
    }

    /// Attach the reopened log after the redo/undo passes and advance the
    /// transaction-id counter past every id seen in the log.
    pub(crate) fn finish_recovery(&mut self, wal: Arc<Wal>, next_txn_id: u64) {
        wal.set_wait_stats(Arc::clone(&self.wait));
        self.wal = Some(wal);
        self.next_txn_id.store(next_txn_id.max(1), Ordering::Relaxed);
    }

    pub fn with_defaults() -> Self {
        Self::new(DbConfig::default())
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }

    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    pub fn calibration(&self) -> Calibration {
        self.calibration
    }

    pub fn planner_config(&self) -> PlannerConfig {
        *self.planner_config.read()
    }

    pub fn set_planner_config(&self, config: PlannerConfig) {
        *self.planner_config.write() = config;
    }

    /// Snapshot the work meter (for experiment bookkeeping).
    pub fn snapshot(&self) -> MeterSnapshot {
        self.meter.snapshot()
    }

    /// Engine-wide wait-event accumulators (the data behind M$WAIT_EVENTS).
    pub fn wait_stats(&self) -> &Arc<WaitStats> {
        &self.wait
    }

    /// The per-statement collector (the data behind M$STATEMENTS).
    pub fn statement_collector(&self) -> &Arc<StatementCollector> {
        &self.statements
    }

    /// Toggle the per-statement Exec timers and collector feeds. Lock/WAL
    /// wait events always record — a thread that did not block records
    /// nothing, so they are free when idle.
    pub fn set_monitor_enabled(&self, on: bool) {
        self.monitor_enabled.store(on, Ordering::Relaxed);
    }

    pub fn monitor_enabled(&self) -> bool {
        self.monitor_enabled.load(Ordering::Relaxed)
    }

    /// The bounded ring of completed request traces (behind M$TRACES and
    /// M$SPANS, and the source for Chrome trace exports).
    pub fn trace_ring(&self) -> &Arc<TraceRing> {
        &self.traces
    }

    /// Mint a trace id for a request entering the system, or `None` when
    /// the monitor is disabled (collectors-off runs trace nothing and pay
    /// nothing). The caller installs the returned context on the serving
    /// thread; dropping the guard lands the finished trace in the ring.
    pub fn begin_request(&self, origin: &str, label: &str) -> Option<RequestCtx> {
        self.monitor_enabled().then(|| self.traces.begin(origin, label))
    }

    /// The hierarchical lock manager (strict 2PL for open transactions).
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Shared handle to the lock manager (monitor-view providers).
    pub fn lock_manager_arc(&self) -> Arc<LockManager> {
        Arc::clone(&self.locks)
    }

    /// The write-ahead log, if this database was configured with one.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Force everything appended to the WAL so far to disk — an explicit
    /// durability point (end of bulk load, clean shutdown). No-op without
    /// a WAL.
    pub fn wal_flush(&self) -> DbResult<()> {
        match &self.wal {
            Some(wal) => wal.flush(),
            None => Ok(()),
        }
    }

    /// Take a fuzzy checkpoint: log `CheckpointBegin`, then `CheckpointEnd`
    /// carrying the active-transaction table and the pager's dirty-page
    /// table, and force the log. Nothing is quiesced — transactions keep
    /// running — which is exactly why the tables are in the record: restart
    /// analysis starts from them. Returns the `CheckpointEnd` LSN.
    pub fn checkpoint(&self) -> DbResult<Lsn> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| DbError::storage("checkpoint requires a WAL-enabled database"))?;
        wal.append_batch(SYSTEM_TXN, &[LogPayload::CheckpointBegin]);
        let att = wal.active_transactions();
        let dpt = self.pager.dirty_page_table();
        let lsns = wal.append_batch(SYSTEM_TXN, &[LogPayload::CheckpointEnd { att, dpt }]);
        wal.flush()?;
        Ok(lsns[0])
    }

    /// How a SELECT's plan reads each base table (scan vs. index-driven),
    /// used by the transaction layer and workload models to pick lock
    /// granularity. Plans the query without executing it.
    pub fn table_accesses(&self, q: &SelectStmt) -> DbResult<Vec<TableAccess>> {
        let planner = Planner::with_config(&self.catalog, self.planner_config());
        let pq = planner.plan_query(q)?;
        Ok(pq.plan.table_accesses())
    }

    /// Open a transaction. Locks are acquired per statement and held to
    /// commit/rollback; dropping the handle rolls back.
    pub fn begin(&self) -> Txn<'_> {
        let id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        Txn::new(self, id)
    }

    /// Execute any single SQL statement (constants visible to the optimizer).
    pub fn execute(&self, sql: &str) -> DbResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        let out = self.execute_statement(&stmt)?;
        // DDL is logged as its statement text and replayed by re-execution
        // (recovery replays against a WAL-less engine, so this cannot
        // re-log). DML logging happens inside the apply path.
        if self.wal.is_some() && stmt_is_ddl(&stmt) {
            self.log_ddl(sql)?;
        }
        Ok(out)
    }

    fn log_ddl(&self, sql: &str) -> DbResult<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let lsns = wal.append_batch(SYSTEM_TXN, &[LogPayload::Ddl { sql: sql.to_string() }]);
        wal.commit(lsns[0])
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        self.execute(sql)?.rows()
    }

    /// Plan text for a SELECT (EXPLAIN).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(q) => {
                let planner = Planner::with_config(&self.catalog, self.planner_config());
                let pq = planner.plan_query(&q)?;
                Ok(pq.plan.describe())
            }
            other => Err(DbError::analysis(format!("cannot EXPLAIN {other:?}"))),
        }
    }

    /// Prepare a parameterized SELECT. The plan is chosen *now*, blind to
    /// the eventual parameter values.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(q) => self.prepare_select(&q),
            other => Err(DbError::analysis(format!("can only prepare SELECT, got {other:?}"))),
        }
    }

    /// Prepare an already-parsed SELECT (the plan cache's entry point:
    /// it normalizes the AST before planning and must not round-trip
    /// through text).
    pub fn prepare_select(&self, q: &SelectStmt) -> DbResult<Prepared> {
        // Snapshot the version *before* planning so a DDL racing with this
        // prepare invalidates the entry rather than being missed.
        let catalog_version = self.catalog.version();
        let planner = Planner::with_config(&self.catalog, self.planner_config());
        let pq: PlannedQuery = planner.plan_query(q)?;
        let desc = pq.plan.describe();
        let lock_plan = crate::txn::select_read_locks(self, q);
        let (reads, _) =
            crate::txn::referenced_tables(&Statement::Select(Box::new(q.clone())), &self.catalog);
        Ok(Prepared {
            plan: Arc::new(pq.plan),
            schema: pq.schema,
            n_params: pq.n_params,
            plan_description: desc,
            lock_plan,
            dependencies: reads.into_iter().collect(),
            catalog_version,
        })
    }

    /// Execute a prepared query with bindings (cursor OPEN / REOPEN).
    pub fn execute_prepared(&self, p: &Prepared, params: &[Value]) -> DbResult<QueryResult> {
        if params.len() < p.n_params {
            return Err(DbError::UnboundParameter(params.len()));
        }
        let exec_started = self.monitor_enabled().then(Instant::now);
        let ctx = ExecCtx::new(params, &self.meter);
        let rows = p.plan.execute(&ctx)?;
        if let Some(started) = exec_started {
            self.wait.record(WaitEvent::Exec, started.elapsed());
        }
        Ok(QueryResult { schema: p.schema.clone(), rows })
    }

    fn execute_statement(&self, stmt: &Statement) -> DbResult<ExecOutcome> {
        match stmt {
            Statement::Select(q) => {
                let planner = Planner::with_config(&self.catalog, self.planner_config());
                let pq = planner.plan_query(q)?;
                let exec_started = self.monitor_enabled().then(Instant::now);
                let ctx = ExecCtx::new(&[], &self.meter);
                let rows = pq.plan.execute(&ctx)?;
                if let Some(started) = exec_started {
                    self.wait.record(WaitEvent::Exec, started.elapsed());
                }
                Ok(ExecOutcome::Rows(QueryResult { schema: pq.schema, rows }))
            }
            Statement::Insert { .. } | Statement::Delete { .. } | Statement::Update { .. } => {
                Ok(ExecOutcome::Count(self.apply_dml_autocommit(stmt)?))
            }
            Statement::CreateTable { name, columns, primary_key } => {
                let cols: Vec<Column> = columns
                    .iter()
                    .map(|c| {
                        let mut col = Column::new(&c.name, c.ty);
                        if c.not_null {
                            col = col.not_null();
                        }
                        col
                    })
                    .collect();
                self.catalog.create_table(name, cols, primary_key)?;
                Ok(ExecOutcome::Done)
            }
            Statement::CreateIndex { name, table, columns, unique } => {
                self.catalog.create_index(name, table, columns, *unique)?;
                Ok(ExecOutcome::Done)
            }
            Statement::CreateView { name, query } => {
                // Validate the view body plans correctly before registering.
                let planner = Planner::with_config(&self.catalog, self.planner_config());
                planner.plan_query(query)?;
                self.catalog.create_view(name, (**query).clone())?;
                Ok(ExecOutcome::Done)
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                Ok(ExecOutcome::Done)
            }
            Statement::DropIndex { name } => {
                self.catalog.drop_index(name)?;
                Ok(ExecOutcome::Done)
            }
            Statement::DropView { name } => {
                self.catalog.drop_view(name)?;
                Ok(ExecOutcome::Done)
            }
            Statement::Analyze { table } => {
                match table {
                    Some(t) => {
                        let t = self.catalog.table(t)?;
                        self.catalog.analyze_table(&t)?;
                    }
                    None => {
                        for name in self.catalog.table_names() {
                            let t = self.catalog.table(&name)?;
                            self.catalog.analyze_table(&t)?;
                        }
                    }
                }
                Ok(ExecOutcome::Done)
            }
        }
    }

    /// Statement execution for an open transaction: DML records undo,
    /// SELECT runs normally. DDL is rejected by the transaction layer
    /// before it gets here.
    pub(crate) fn execute_statement_in_txn(
        &self,
        stmt: &Statement,
        undo: &mut Vec<Undo>,
    ) -> DbResult<ExecOutcome> {
        let exec_started = self.monitor_enabled().then(Instant::now);
        let out = match stmt {
            Statement::Insert { table, columns, rows } => Ok(ExecOutcome::Count(
                self.apply_insert(table, columns.as_deref(), rows, Some(undo))?,
            )),
            Statement::Delete { table, filter } => {
                Ok(ExecOutcome::Count(self.apply_delete(table, filter.as_ref(), Some(undo))?))
            }
            Statement::Update { table, assignments, filter } => Ok(ExecOutcome::Count(
                self.apply_update(table, assignments, filter.as_ref(), Some(undo))?,
            )),
            other => return self.execute_statement(other),
        };
        if let Some(started) = exec_started {
            self.wait.record(WaitEvent::Exec, started.elapsed());
        }
        out
    }

    /// Autocommit DML. With a WAL every statement is an *implicit
    /// transaction*: its operations plus a `Commit` go to the log as one
    /// batch under a fresh transaction id, so a crash mid-statement makes
    /// the partial statement a loser that restart rolls back. Without a
    /// WAL this is the plain pre-WAL apply path.
    fn apply_dml_autocommit(&self, stmt: &Statement) -> DbResult<u64> {
        if self.wal.is_none() {
            return self.apply_dml(stmt, None);
        }
        let mut undo = Vec::new();
        let res = self.apply_dml(stmt, Some(&mut undo));
        // A failed statement's partial effects stay in the store (autocommit
        // has no undo), so they must reach the log too — as committed.
        let logged = self.log_autocommit(&undo);
        let n = res?;
        logged?;
        Ok(n)
    }

    fn apply_dml(&self, stmt: &Statement, undo: Option<&mut Vec<Undo>>) -> DbResult<u64> {
        match stmt {
            Statement::Insert { table, columns, rows } => {
                self.apply_insert(table, columns.as_deref(), rows, undo)
            }
            Statement::Delete { table, filter } => self.apply_delete(table, filter.as_ref(), undo),
            Statement::Update { table, assignments, filter } => {
                self.apply_update(table, assignments, filter.as_ref(), undo)
            }
            other => Err(DbError::execution(format!("not DML: {other:?}"))),
        }
    }

    fn log_autocommit(&self, undo: &[Undo]) -> DbResult<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        if undo.is_empty() {
            return Ok(());
        }
        let mut payloads = self.wal_payloads_from_undo(undo)?;
        payloads.push(LogPayload::Commit);
        let id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        let lsns = wal.append_batch(id, &payloads);
        self.stamp_payload_lsns(&payloads, &lsns);
        wal.commit(*lsns.last().expect("commit lsn"))
    }

    /// Derive log payloads for freshly executed operations from their undo
    /// entries. The after-image of an insert/update is still live in the
    /// heap at the recorded rid, so logging needs no changes to the
    /// execution paths themselves.
    pub(crate) fn wal_payloads_from_undo(&self, undo: &[Undo]) -> DbResult<Vec<LogPayload>> {
        let mut payloads = Vec::with_capacity(undo.len());
        for u in undo {
            match u {
                Undo::Insert { table, rid } => {
                    let t = self.catalog.table(table)?;
                    let row = t
                        .heap
                        .get(*rid, crate::storage::AccessPattern::Random)?
                        .ok_or_else(|| DbError::storage("inserted row vanished before logging"))?;
                    payloads.push(LogPayload::Insert { table: table.clone(), rid: *rid, row });
                }
                Undo::Delete { table, rid, row } => {
                    payloads.push(LogPayload::Delete {
                        table: table.clone(),
                        rid: *rid,
                        row: row.clone(),
                    });
                }
                Undo::Update { table, prev_rid, rid, old } => {
                    let t = self.catalog.table(table)?;
                    let new = t
                        .heap
                        .get(*rid, crate::storage::AccessPattern::Random)?
                        .ok_or_else(|| DbError::storage("updated row vanished before logging"))?;
                    payloads.push(LogPayload::Update {
                        table: table.clone(),
                        rid: *prev_rid,
                        new_rid: *rid,
                        old: old.clone(),
                        new,
                    });
                }
            }
        }
        Ok(payloads)
    }

    /// Stamp page LSNs for a batch of just-logged operations (the WAL rule's
    /// bookkeeping half: pages remember the last record that touched them,
    /// and the pager's dirty-page table remembers the first).
    pub(crate) fn stamp_payload_lsns(&self, payloads: &[LogPayload], lsns: &[Lsn]) {
        for (p, &lsn) in payloads.iter().zip(lsns) {
            match p {
                LogPayload::Insert { rid, .. } | LogPayload::Delete { rid, .. } => {
                    self.pager.stamp_lsn(rid.page, lsn);
                }
                LogPayload::Update { rid, new_rid, .. } => {
                    self.pager.stamp_lsn(rid.page, lsn);
                    self.pager.stamp_lsn(new_rid.page, lsn);
                }
                LogPayload::Clr { action, .. } => match action {
                    UndoAction::Delete { rid, .. } | UndoAction::Insert { rid, .. } => {
                        self.pager.stamp_lsn(rid.page, lsn);
                    }
                    UndoAction::Revert { rid, prev_rid, .. } => {
                        self.pager.stamp_lsn(rid.page, lsn);
                        self.pager.stamp_lsn(prev_rid.page, lsn);
                    }
                },
                _ => {}
            }
        }
    }

    fn apply_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        mut undo: Option<&mut Vec<Undo>>,
    ) -> DbResult<u64> {
        let t = self.catalog.table(table)?;
        let ctx = ExecCtx::new(&[], &self.meter);
        let mut inserted = 0u64;
        for exprs in rows {
            let row = self.build_insert_row(&t, columns, exprs, &ctx)?;
            let rid = self.catalog.insert_row(&t, &row)?;
            if let Some(u) = undo.as_deref_mut() {
                u.push(Undo::Insert { table: t.name.clone(), rid });
            }
            inserted += 1;
        }
        Ok(inserted)
    }

    fn apply_delete(
        &self,
        table: &str,
        filter: Option<&Expr>,
        mut undo: Option<&mut Vec<Undo>>,
    ) -> DbResult<u64> {
        let t = self.catalog.table(table)?;
        let pred = self.bind_dml_filter(&t.schema, filter)?;
        let rids = self.matching_rids(&t, filter, &pred)?;
        for rid in &rids {
            if let Some(u) = undo.as_deref_mut() {
                let row = t
                    .heap
                    .get(*rid, crate::storage::AccessPattern::Random)?
                    .ok_or_else(|| DbError::storage("row vanished during DELETE"))?;
                u.push(Undo::Delete { table: t.name.clone(), rid: *rid, row });
            }
            self.catalog.delete_row(&t, *rid)?;
        }
        Ok(rids.len() as u64)
    }

    fn apply_update(
        &self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
        mut undo: Option<&mut Vec<Undo>>,
    ) -> DbResult<u64> {
        let t = self.catalog.table(table)?;
        let pred = self.bind_dml_filter(&t.schema, filter)?;
        let planner = Planner::with_config(&self.catalog, self.planner_config());
        let mut bound_assignments = Vec::new();
        for (col, e) in assignments {
            let idx = t.schema.resolve(None, col)?;
            let mut used = HashSet::new();
            let be = planner.bind_expr(e, &t.schema, &[], &mut used)?;
            bound_assignments.push((idx, be));
        }
        let ctx = ExecCtx::new(&[], &self.meter);
        let rids = self.matching_rids(&t, filter, &pred)?;
        let mut updates = Vec::new();
        for rid in rids {
            let row = t
                .heap
                .get(rid, crate::storage::AccessPattern::Random)?
                .ok_or_else(|| DbError::storage("row vanished during UPDATE"))?;
            let mut new_row = row.clone();
            for (idx, be) in &bound_assignments {
                new_row[*idx] = be.eval(&row, &ctx)?;
            }
            updates.push((rid, row, new_row));
        }
        let n = updates.len() as u64;
        for (rid, old_row, new_row) in updates {
            let new_rid = self.catalog.update_row(&t, rid, &new_row)?;
            if let Some(u) = undo.as_deref_mut() {
                u.push(Undo::Update {
                    table: t.name.clone(),
                    prev_rid: rid,
                    rid: new_rid,
                    old: old_row,
                });
            }
        }
        Ok(n)
    }

    /// RIDs of the rows matching a DML filter. Uses an index range when the
    /// filter is sargable against one (deletes/updates by key avoid full
    /// scans); otherwise falls back to a metered heap scan.
    fn matching_rids(
        &self,
        t: &crate::catalog::Table,
        filter_ast: Option<&Expr>,
        pred: &Option<crate::exec::expr::BExpr>,
    ) -> DbResult<Vec<crate::storage::Rid>> {
        use crate::planner::sarg_helpers::dml_index_probe;
        let ctx = ExecCtx::new(&[], &self.meter);
        if let Some(f) = filter_ast {
            if let Some(rid_candidates) = dml_index_probe(t, f)? {
                let mut rids = Vec::new();
                for rid in rid_candidates {
                    let Some(row) = t.heap.get(rid, crate::storage::AccessPattern::Random)? else {
                        continue;
                    };
                    self.meter.bump(crate::clock::Counter::DbTuples);
                    let hit = match pred {
                        Some(p) => p.eval_bool(&row, &ctx)? == Some(true),
                        None => true,
                    };
                    if hit {
                        rids.push(rid);
                    }
                }
                return Ok(rids);
            }
        }
        let mut rids = Vec::new();
        for item in t.heap.scan() {
            let (rid, row) = item?;
            self.meter.bump(crate::clock::Counter::DbTuples);
            let hit = match pred {
                Some(p) => p.eval_bool(&row, &ctx)? == Some(true),
                None => true,
            };
            if hit {
                rids.push(rid);
            }
        }
        Ok(rids)
    }

    fn bind_dml_filter(
        &self,
        schema: &Schema,
        filter: Option<&Expr>,
    ) -> DbResult<Option<crate::exec::expr::BExpr>> {
        match filter {
            None => Ok(None),
            Some(f) => {
                let planner = Planner::with_config(&self.catalog, self.planner_config());
                let mut used = HashSet::new();
                Ok(Some(planner.bind_expr(f, schema, &[], &mut used)?))
            }
        }
    }

    /// Evaluate constant expressions (no column references) to values. The
    /// plan cache uses this to turn the literals stripped by
    /// [`SelectStmt::parameterized_collect`] into bind values.
    pub fn eval_const_exprs(&self, exprs: &[Expr]) -> DbResult<Vec<Value>> {
        let planner = Planner::with_config(&self.catalog, self.planner_config());
        let empty = Schema::new(Vec::new());
        let mut used = HashSet::new();
        let ctx = ExecCtx::new(&[], &self.meter);
        exprs
            .iter()
            .map(|e| {
                let be = planner.bind_expr(e, &empty, &[], &mut used)?;
                be.eval(&[], &ctx)
            })
            .collect()
    }

    fn build_insert_row(
        &self,
        table: &crate::catalog::Table,
        columns: Option<&[String]>,
        exprs: &[Expr],
        ctx: &ExecCtx,
    ) -> DbResult<Row> {
        let planner = Planner::with_config(&self.catalog, self.planner_config());
        let empty = Schema::new(Vec::new());
        let mut used = HashSet::new();
        let values: Vec<Value> = exprs
            .iter()
            .map(|e| {
                let be = planner.bind_expr(e, &empty, &[], &mut used)?;
                be.eval(&[], ctx)
            })
            .collect::<DbResult<_>>()?;
        match columns {
            None => {
                if values.len() != table.schema.len() {
                    return Err(DbError::execution(format!(
                        "INSERT has {} values for {} columns",
                        values.len(),
                        table.schema.len()
                    )));
                }
                Ok(values)
            }
            Some(cols) => {
                if values.len() != cols.len() {
                    return Err(DbError::execution("INSERT column/value count mismatch"));
                }
                let mut row = vec![Value::Null; table.schema.len()];
                for (c, v) in cols.iter().zip(values) {
                    let idx = table.schema.resolve(None, c)?;
                    row[idx] = v;
                }
                Ok(row)
            }
        }
    }

    /// Insert one pre-built row directly (bulk-load path used by the
    /// benchmark kit; bypasses SQL parsing but not constraint checks).
    pub fn insert_row(&self, table_name: &str, row: &[Value]) -> DbResult<()> {
        let t = self.catalog.table(table_name)?;
        let rid = self.catalog.insert_row(&t, row)?;
        if let Some(wal) = &self.wal {
            // Bulk load logs one system-transaction record per row —
            // committed-if-present, no Begin/Commit bracket, never forced
            // per row (the loader ends with an explicit `wal_flush`).
            let stored = t
                .heap
                .get(rid, crate::storage::AccessPattern::Random)?
                .ok_or_else(|| DbError::storage("bulk-loaded row vanished before logging"))?;
            let lsns = wal.append_batch(
                SYSTEM_TXN,
                &[LogPayload::Insert { table: t.name.clone(), rid, row: stored }],
            );
            self.pager.stamp_lsn(rid.page, lsns[0]);
        }
        Ok(())
    }
}

/// Is this statement DDL (logged by statement text and replayed by
/// re-execution, rather than physiologically)?
pub fn stmt_is_ddl(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::CreateTable { .. }
            | Statement::CreateIndex { .. }
            | Statement::CreateView { .. }
            | Statement::DropTable { .. }
            | Statement::DropIndex { .. }
            | Statement::DropView { .. }
            | Statement::Analyze { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::with_defaults()
    }

    fn setup_items(db: &Database) {
        db.execute(
            "CREATE TABLE items (id INTEGER NOT NULL, name VARCHAR(30), qty INTEGER, \
             price DECIMAL(10,2), PRIMARY KEY (id))",
        )
        .unwrap();
        for i in 0..100 {
            db.execute(&format!(
                "INSERT INTO items VALUES ({i}, 'item{}', {}, {}.50)",
                i % 10,
                i % 7,
                i
            ))
            .unwrap();
        }
        db.execute("ANALYZE items").unwrap();
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<crate::txn::LockManager>();
        assert_send_sync::<Prepared>();
        fn assert_send<T: Send>() {}
        assert_send::<crate::txn::Txn<'static>>();
    }

    #[test]
    fn end_to_end_select() {
        let db = db();
        setup_items(&db);
        let r = db.query("SELECT id, name FROM items WHERE qty = 3 ORDER BY id").unwrap();
        assert_eq!(r.rows.len(), (100 / 7));
        assert!(r.rows.windows(2).all(|w| w[0][0].as_int().unwrap() < w[1][0].as_int().unwrap()));
    }

    #[test]
    fn aggregation_and_having() {
        let db = db();
        setup_items(&db);
        let r = db
            .query(
                "SELECT qty, COUNT(*), SUM(price) FROM items GROUP BY qty \
                 HAVING COUNT(*) > 10 ORDER BY qty",
            )
            .unwrap();
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert!(row[1].as_int().unwrap() > 10);
        }
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let db = db();
        setup_items(&db);
        let r = db.query("SELECT COUNT(*), SUM(qty) FROM items WHERE id > 1000").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn joins() {
        let db = db();
        setup_items(&db);
        db.execute("CREATE TABLE tags (item_id INTEGER, tag VARCHAR(10))").unwrap();
        db.execute("INSERT INTO tags VALUES (1, 'red'), (1, 'hot'), (2, 'red')").unwrap();
        let r = db
            .query(
                "SELECT i.id, t.tag FROM items i, tags t \
                 WHERE i.id = t.item_id ORDER BY i.id, t.tag",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][1], Value::str("hot"));
        // Explicit JOIN syntax gives same answer.
        let r2 = db
            .query(
                "SELECT i.id, t.tag FROM items i JOIN tags t ON i.id = t.item_id \
                 ORDER BY i.id, t.tag",
            )
            .unwrap();
        assert_eq!(r.rows, r2.rows);
    }

    #[test]
    fn left_outer_join() {
        let db = db();
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y INTEGER)").unwrap();
        db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
        db.execute("INSERT INTO b VALUES (2)").unwrap();
        let r = db.query("SELECT x, y FROM a LEFT OUTER JOIN b ON a.x = b.y ORDER BY x").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows[0][1].is_null());
        assert_eq!(r.rows[1][1], Value::Int(2));
        assert!(r.rows[2][1].is_null());
    }

    #[test]
    fn prepared_queries_rebind() {
        let db = db();
        setup_items(&db);
        let p = db.prepare("SELECT COUNT(*) FROM items WHERE qty = ?").unwrap();
        assert_eq!(p.n_params, 1);
        let a = db.execute_prepared(&p, &[Value::Int(0)]).unwrap();
        let b = db.execute_prepared(&p, &[Value::Int(6)]).unwrap();
        assert!(a.scalar().unwrap().as_int().unwrap() > 0);
        assert!(b.scalar().unwrap().as_int().unwrap() > 0);
        assert!(db.execute_prepared(&p, &[]).is_err(), "missing binding");
    }

    #[test]
    fn prepared_plan_is_blind_and_uses_index() {
        let db = db();
        setup_items(&db);
        db.execute("CREATE INDEX items_qty ON items (qty)").unwrap();
        // Literal query with low selectivity: scan.
        let lit_plan = db.explain("SELECT * FROM items WHERE qty < 9999").unwrap();
        assert!(lit_plan.contains("SeqScan"), "literal low-selectivity: {lit_plan}");
        // Parameterized: blindly picks the index (§4.1).
        let p = db.prepare("SELECT * FROM items WHERE qty < ?").unwrap();
        assert!(
            p.plan_description.contains("IndexScan"),
            "param plan should be blind: {}",
            p.plan_description
        );
        // It still returns correct answers.
        let all = db.execute_prepared(&p, &[Value::Int(9999)]).unwrap();
        assert_eq!(all.rows.len(), 100);
        let none = db.execute_prepared(&p, &[Value::Int(0)]).unwrap();
        assert!(none.rows.is_empty());
    }

    #[test]
    fn dml_update_delete() {
        let db = db();
        setup_items(&db);
        let n = db.execute("UPDATE items SET qty = 99 WHERE id < 10").unwrap().count().unwrap();
        assert_eq!(n, 10);
        let r = db.query("SELECT COUNT(*) FROM items WHERE qty = 99").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(10));
        let n = db.execute("DELETE FROM items WHERE qty = 99").unwrap().count().unwrap();
        assert_eq!(n, 10);
        let r = db.query("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(90));
    }

    #[test]
    fn views_expand() {
        let db = db();
        setup_items(&db);
        db.execute("CREATE VIEW cheap AS SELECT id, price FROM items WHERE price < 10").unwrap();
        let r = db.query("SELECT COUNT(*) FROM cheap").unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(10));
        // View with alias binding.
        let r = db.query("SELECT c.id FROM cheap c WHERE c.id = 3").unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn subqueries() {
        let db = db();
        setup_items(&db);
        // Uncorrelated scalar.
        let r = db
            .query("SELECT COUNT(*) FROM items WHERE price > (SELECT AVG(price) FROM items)")
            .unwrap();
        let n = r.scalar().unwrap().as_int().unwrap();
        assert!(n > 30 && n < 70, "about half above average, got {n}");
        // Correlated EXISTS.
        db.execute("CREATE TABLE tags (item_id INTEGER, tag VARCHAR(10))").unwrap();
        db.execute("INSERT INTO tags VALUES (5, 'x'), (7, 'y')").unwrap();
        let r = db
            .query(
                "SELECT id FROM items i WHERE EXISTS \
                 (SELECT 1 FROM tags t WHERE t.item_id = i.id) ORDER BY id",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(5));
        // NOT IN with correct NULL semantics.
        db.execute("INSERT INTO tags VALUES (NULL, 'z')").unwrap();
        let r = db
            .query("SELECT COUNT(*) FROM items WHERE id NOT IN (SELECT item_id FROM tags)")
            .unwrap();
        assert_eq!(r.scalar().unwrap(), Value::Int(0), "NULL in NOT IN set kills all rows");
    }

    #[test]
    fn distinct_and_limit() {
        let db = db();
        setup_items(&db);
        let r = db.query("SELECT DISTINCT qty FROM items ORDER BY qty").unwrap();
        assert_eq!(r.rows.len(), 7);
        let r = db.query("SELECT id FROM items ORDER BY id DESC LIMIT 5").unwrap();
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.rows[0][0], Value::Int(99));
    }

    #[test]
    fn order_by_alias_and_ordinal() {
        let db = db();
        setup_items(&db);
        let r = db
            .query("SELECT qty, COUNT(*) AS cnt FROM items GROUP BY qty ORDER BY cnt DESC, qty")
            .unwrap();
        let counts: Vec<i64> = r.rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
        let r2 = db
            .query("SELECT qty, COUNT(*) AS cnt FROM items GROUP BY qty ORDER BY 2 DESC, 1")
            .unwrap();
        assert_eq!(r.rows, r2.rows);
    }

    #[test]
    fn select_without_from() {
        let db = db();
        let r = db.query("SELECT 1 + 2, 'x'").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(3), Value::str("x")]]);
    }

    #[test]
    fn insert_with_column_list_defaults_null() {
        let db = db();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(5))").unwrap();
        db.execute("INSERT INTO t (c, a) VALUES ('x', 1)").unwrap();
        let r = db.query("SELECT a, b, c FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        assert!(r.rows[0][1].is_null());
        assert_eq!(r.rows[0][2], Value::str("x"));
    }

    #[test]
    fn errors_surface() {
        let db = db();
        assert!(matches!(db.query("SELECT * FROM nope"), Err(DbError::Catalog(_))));
        setup_items(&db);
        assert!(db.query("SELECT nonexistent FROM items").is_err());
        assert!(db.query("SELECT id FROM items GROUP BY qty").is_err(), "id not grouped");
    }

    #[test]
    fn index_scan_returns_same_as_seq_scan() {
        let db = db();
        db.execute("CREATE TABLE big (id INTEGER NOT NULL, grp INTEGER, PRIMARY KEY (id))")
            .unwrap();
        for batch in 0..200 {
            let values: Vec<String> = (0..100)
                .map(|i| {
                    let id = batch * 100 + i;
                    format!("({id}, {})", id % 2000)
                })
                .collect();
            db.execute(&format!("INSERT INTO big VALUES {}", values.join(", "))).unwrap();
        }
        db.execute("ANALYZE big").unwrap();
        // Tiny table earlier: scan wins. 20k rows with a selective equality
        // on the primary key: the index must win.
        let plan = db.explain("SELECT grp FROM big WHERE id = 12345").unwrap();
        assert!(plan.contains("IndexScan"), "selective equality should use the index: {plan}");
        let r = db.query("SELECT grp FROM big WHERE id = 12345").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(12345 % 2000)]]);
        // Secondary index: same answers as a scan.
        let seq = db.query("SELECT id FROM big WHERE grp = 77 ORDER BY id").unwrap();
        db.execute("CREATE INDEX big_grp ON big (grp)").unwrap();
        db.execute("ANALYZE big").unwrap();
        let plan = db.explain("SELECT id FROM big WHERE grp = 77").unwrap();
        assert!(plan.contains("IndexScan"), "1/2000 selectivity should use the index: {plan}");
        let idx = db.query("SELECT id FROM big WHERE grp = 77 ORDER BY id").unwrap();
        assert_eq!(seq.rows, idx.rows);
        assert_eq!(idx.rows.len(), 10);
    }
}
