//! Live monitoring: virtual `M$` system views and the per-statement
//! collector behind `M$STATEMENTS`.
//!
//! The paper's diagnosis workflow is SAP's live monitors — ST03 workload
//! statistics, SM50 process overview, DB01 lock waits — read *while the
//! workload runs*, not post-hoc log dumps. This module gives the engine
//! the same surface: a [`MonitorView`] is a virtual table whose rows are
//! produced by a closure at **execute** time, registered in the catalog
//! under an `M$...` name and resolved by the planner like any base table.
//! A second wire connection can therefore `SELECT * FROM M$WAIT_EVENTS`
//! and see the current accumulators, every time, even through a cached
//! plan.
//!
//! Monitor views take no locks, have no catalog version, and are invisible
//! to DDL — reading them never blocks the workload being observed.

use crate::clock::{TraceRing, WaitEvent, WaitSnapshot, WaitStats};
use crate::schema::{Column, Row, Schema};
use crate::types::{DataType, Value};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use trace::request::SpanNode;

/// True if `name` is in the reserved monitoring namespace (`M$` prefix,
/// case-insensitive). Such names never reach the catalog's base-table
/// maps, take no locks, and are not plan-cache dependencies.
pub fn is_monitor_name(name: &str) -> bool {
    let b = name.as_bytes();
    b.len() > 2 && (b[0] == b'M' || b[0] == b'm') && b[1] == b'$'
}

/// A virtual system table: a schema plus a row producer evaluated at
/// execute time, so every read — including through a cached plan — sees
/// fresh data.
pub struct MonitorView {
    name: String,
    schema: Schema,
    rows: Box<dyn Fn() -> Vec<Row> + Send + Sync>,
}

impl MonitorView {
    pub fn new<F>(name: &str, columns: Vec<Column>, rows: F) -> Arc<MonitorView>
    where
        F: Fn() -> Vec<Row> + Send + Sync + 'static,
    {
        let name = name.to_ascii_uppercase();
        let schema = Schema::qualified(columns, &name);
        Arc::new(MonitorView { name, schema, rows: Box::new(rows) })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Produce the view's rows *now*.
    pub fn rows(&self) -> Vec<Row> {
        (self.rows)()
    }
}

impl std::fmt::Debug for MonitorView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorView").field("name", &self.name).finish_non_exhaustive()
    }
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// Build the `M$WAIT_EVENTS` view over a [`WaitStats`]: one row per
/// [`WaitEvent`] with its occurrence count and total waited microseconds.
pub fn wait_events_view(stats: Arc<WaitStats>) -> Arc<MonitorView> {
    MonitorView::new(
        "M$WAIT_EVENTS",
        vec![
            Column::new("EVENT", DataType::VarChar(32)),
            Column::new("WAITS", DataType::Int),
            Column::new("WAITED_US", DataType::Int),
        ],
        move || {
            let snap = stats.snapshot();
            WaitEvent::ALL
                .iter()
                .map(|&ev| vec![Value::str(ev.name()), int(snap.count(ev)), int(snap.micros(ev))])
                .collect()
        },
    )
}

/// One recent execution of a statement (the `M$STATEMENTS` sample ring).
#[derive(Debug, Clone, Copy)]
pub struct StatementSample {
    pub micros: u64,
    pub rows: u64,
}

/// Cumulative statistics for one normalized statement shape.
#[derive(Debug, Clone)]
pub struct StatementStats {
    /// Display text: the first concrete SQL seen for this shape.
    pub statement: String,
    pub calls: u64,
    pub rows: u64,
    pub total_micros: u64,
    pub min_micros: u64,
    pub max_micros: u64,
    /// Wait breakdown summed over all calls (mirrored into the caller's
    /// [`WaitScope`](crate::clock::WaitScope) during execution).
    pub waits: WaitSnapshot,
    /// Ring of the most recent executions, oldest first.
    pub recent: Vec<StatementSample>,
}

struct StatementEntry {
    statement: String,
    calls: u64,
    rows: u64,
    total_micros: u64,
    min_micros: u64,
    max_micros: u64,
    waits: WaitSnapshot,
    recent: VecDeque<StatementSample>,
    /// Recency stamp from the collector's tick, for LRU eviction.
    last_used: u64,
}

/// pg_stat_statements-style collector: cumulative per-statement counters
/// keyed on the plan cache's normalized statement shape, so `SELECT ... =
/// 1` and `SELECT ... = 2` aggregate into one row while distinct shapes
/// stay separate. The shape map is bounded: past `max_shapes` distinct
/// shapes the least-recently-executed one is evicted (and counted), so a
/// workload generating unbounded distinct SQL cannot grow the collector
/// without limit.
pub struct StatementCollector {
    inner: Mutex<ShapeMap>,
    /// Recent-sample ring capacity per statement shape.
    samples_per_statement: usize,
    /// Maximum distinct statement shapes retained.
    max_shapes: usize,
    /// Shapes evicted to stay under `max_shapes` (surfaced in
    /// `M$STATEMENTS` as the collector-wide `EVICTED_SHAPES` column).
    evicted: AtomicU64,
}

struct ShapeMap {
    map: HashMap<String, StatementEntry>,
    /// Monotone use counter stamping `last_used`.
    tick: u64,
}

impl std::fmt::Debug for StatementCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatementCollector")
            .field("max_shapes", &self.max_shapes)
            .finish_non_exhaustive()
    }
}

impl Default for StatementCollector {
    fn default() -> Self {
        StatementCollector::bounded(StatementCollector::DEFAULT_MAX_SHAPES)
    }
}

impl StatementCollector {
    /// Default bound on distinct shapes: generous for real workloads
    /// (TPC-D + SAP reach a few dozen), tight enough that pathological
    /// non-parameterized SQL cannot leak memory.
    pub const DEFAULT_MAX_SHAPES: usize = 512;

    pub fn new() -> Arc<Self> {
        Arc::new(StatementCollector::default())
    }

    /// A collector bounded to `max_shapes` distinct statement shapes.
    pub fn bounded(max_shapes: usize) -> StatementCollector {
        StatementCollector {
            inner: Mutex::new(ShapeMap { map: HashMap::new(), tick: 0 }),
            samples_per_statement: 16,
            max_shapes: max_shapes.max(1),
            evicted: AtomicU64::new(0),
        }
    }

    /// Record one completed execution. `key` is the normalized statement
    /// shape (the plan-cache key where available, the raw SQL otherwise);
    /// `statement` is the concrete text kept for display.
    pub fn record(
        &self,
        key: &str,
        statement: &str,
        elapsed: Duration,
        rows: u64,
        waits: &WaitSnapshot,
    ) {
        let micros = elapsed.as_micros() as u64;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(key) && inner.map.len() >= self.max_shapes {
            // Evict the least-recently-executed shape (O(n) scan; the map
            // is bounded, so n <= max_shapes).
            if let Some(coldest) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&coldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let samples = self.samples_per_statement;
        let entry = inner.map.entry(key.to_string()).or_insert_with(|| StatementEntry {
            statement: display_text(statement),
            calls: 0,
            rows: 0,
            total_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
            waits: WaitSnapshot::default(),
            recent: VecDeque::with_capacity(samples),
            last_used: 0,
        });
        entry.last_used = tick;
        entry.calls += 1;
        entry.rows += rows;
        entry.total_micros += micros;
        entry.min_micros = entry.min_micros.min(micros);
        entry.max_micros = entry.max_micros.max(micros);
        entry.waits = entry.waits.plus(waits);
        if entry.recent.len() == self.samples_per_statement {
            entry.recent.pop_front();
        }
        entry.recent.push_back(StatementSample { micros, rows });
    }

    /// Number of distinct statement shapes currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Shapes evicted so far to keep the map under its bound.
    pub fn evicted_shapes(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The bound on distinct retained shapes.
    pub fn max_shapes(&self) -> usize {
        self.max_shapes
    }

    /// Snapshot of all statements, hottest (most total time) first.
    pub fn snapshot(&self) -> Vec<StatementStats> {
        let inner = self.inner.lock();
        let mut out: Vec<StatementStats> = inner
            .map
            .values()
            .map(|e| StatementStats {
                statement: e.statement.clone(),
                calls: e.calls,
                rows: e.rows,
                total_micros: e.total_micros,
                min_micros: if e.calls == 0 { 0 } else { e.min_micros },
                max_micros: e.max_micros,
                waits: e.waits,
                recent: e.recent.iter().copied().collect(),
            })
            .collect();
        drop(inner);
        out.sort_by(|a, b| b.total_micros.cmp(&a.total_micros).then(a.statement.cmp(&b.statement)));
        out
    }

    /// Sum of per-statement wait breakdowns (for reconciliation against
    /// the engine-wide [`WaitStats`] and cost meters).
    pub fn total_waits(&self) -> WaitSnapshot {
        self.inner.lock().map.values().fold(WaitSnapshot::default(), |acc, e| acc.plus(&e.waits))
    }

    /// Forget everything (between experiment phases).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.tick = 0;
        self.evicted.store(0, Ordering::Relaxed);
    }

    /// Build the `M$STATEMENTS` view over this collector.
    pub fn view(self: &Arc<Self>) -> Arc<MonitorView> {
        let collector = Arc::clone(self);
        MonitorView::new(
            "M$STATEMENTS",
            vec![
                Column::new("STATEMENT", DataType::VarChar(200)),
                Column::new("CALLS", DataType::Int),
                Column::new("TOTAL_ROWS", DataType::Int),
                Column::new("TOTAL_US", DataType::Int),
                Column::new("MEAN_US", DataType::Int),
                Column::new("MIN_US", DataType::Int),
                Column::new("MAX_US", DataType::Int),
                Column::new("LAST_US", DataType::Int),
                Column::new("LOCK_WAITS", DataType::Int),
                Column::new("LOCK_US", DataType::Int),
                Column::new("WAL_FLUSH_US", DataType::Int),
                Column::new("GROUP_COMMIT_US", DataType::Int),
                Column::new("BUFFER_MISSES", DataType::Int),
                Column::new("EVICTED_SHAPES", DataType::Int),
            ],
            move || {
                // Collector-wide eviction counter, repeated on every row
                // (a virtual table has nowhere else to put a scalar).
                let evicted = collector.evicted_shapes();
                collector
                    .snapshot()
                    .into_iter()
                    .map(|s| {
                        vec![
                            Value::Str(s.statement),
                            int(s.calls),
                            int(s.rows),
                            int(s.total_micros),
                            int(s.total_micros.checked_div(s.calls).unwrap_or(0)),
                            int(s.min_micros),
                            int(s.max_micros),
                            int(s.recent.last().map_or(0, |r| r.micros)),
                            int(s.waits.count(WaitEvent::Lock)),
                            int(s.waits.micros(WaitEvent::Lock)),
                            int(s.waits.micros(WaitEvent::WalFlush)),
                            int(s.waits.micros(WaitEvent::GroupCommitWait)),
                            int(s.waits.count(WaitEvent::BufferMiss)),
                            int(evicted),
                        ]
                    })
                    .collect()
            },
        )
    }
}

/// Build the `M$TRACES` view over a [`TraceRing`]: one row per retained
/// request trace, newest last, with its critical-path decomposition —
/// the per-event segment columns plus `APP_SERVER_US` always sum to
/// `END_TO_END_US` (see `trace::request::critical_path`).
pub fn traces_view(ring: Arc<TraceRing>) -> Arc<MonitorView> {
    MonitorView::new(
        "M$TRACES",
        vec![
            Column::new("TRACE_ID", DataType::Int),
            Column::new("ORIGIN", DataType::VarChar(32)),
            Column::new("LABEL", DataType::VarChar(200)),
            Column::new("ENQUEUED_US", DataType::Int),
            Column::new("STARTED_US", DataType::Int),
            Column::new("ENDED_US", DataType::Int),
            Column::new("END_TO_END_US", DataType::Int),
            Column::new("DISPATCH_QUEUE_US", DataType::Int),
            Column::new("LOCK_US", DataType::Int),
            Column::new("WAL_FLUSH_US", DataType::Int),
            Column::new("GROUP_COMMIT_US", DataType::Int),
            Column::new("BUFFER_MISS_US", DataType::Int),
            Column::new("EXEC_US", DataType::Int),
            Column::new("APP_SERVER_US", DataType::Int),
            Column::new("SPANS", DataType::Int),
            Column::new("WAITS", DataType::Int),
            Column::new("DROPPED_SPANS", DataType::Int),
            Column::new("DROPPED_WAITS", DataType::Int),
        ],
        move || {
            ring.snapshot()
                .iter()
                .map(|t| {
                    let p = t.critical_path();
                    vec![
                        int(t.trace_id),
                        Value::str(&t.origin),
                        Value::Str(display_text(&t.label)),
                        int(t.enqueued_us),
                        int(t.started_us),
                        int(t.ended_us),
                        int(p.end_to_end_us),
                        int(p.segment(WaitEvent::DispatchQueue)),
                        int(p.segment(WaitEvent::Lock)),
                        int(p.segment(WaitEvent::WalFlush)),
                        int(p.segment(WaitEvent::GroupCommitWait)),
                        int(p.segment(WaitEvent::BufferMiss)),
                        int(p.segment(WaitEvent::Exec)),
                        int(p.app_server_us),
                        int(t.span_count() as u64),
                        int(t.waits.len() as u64),
                        int(t.dropped_spans),
                        int(t.dropped_waits),
                    ]
                })
                .collect()
        },
    )
}

/// Build the `M$SPANS` view over a [`TraceRing`]: the span trees of every
/// retained trace flattened in depth-first pre-order, with per-span wait
/// breakdowns. `SPAN_ID` numbers spans within a trace; `PARENT_ID` is -1
/// for roots, so the tree reconstructs with one self-join.
pub fn spans_view(ring: Arc<TraceRing>) -> Arc<MonitorView> {
    MonitorView::new(
        "M$SPANS",
        vec![
            Column::new("TRACE_ID", DataType::Int),
            Column::new("SPAN_ID", DataType::Int),
            Column::new("PARENT_ID", DataType::Int),
            Column::new("DEPTH", DataType::Int),
            Column::new("NAME", DataType::VarChar(200)),
            Column::new("START_US", DataType::Int),
            Column::new("END_US", DataType::Int),
            Column::new("ELAPSED_US", DataType::Int),
            Column::new("LOCK_US", DataType::Int),
            Column::new("WAL_FLUSH_US", DataType::Int),
            Column::new("GROUP_COMMIT_US", DataType::Int),
            Column::new("BUFFER_MISSES", DataType::Int),
            Column::new("EXEC_US", DataType::Int),
        ],
        move || {
            fn walk(
                trace_id: u64,
                node: &SpanNode,
                parent: i64,
                depth: u64,
                next_id: &mut i64,
                out: &mut Vec<Row>,
            ) {
                let id = *next_id;
                *next_id += 1;
                out.push(vec![
                    int(trace_id),
                    Value::Int(id),
                    Value::Int(parent),
                    int(depth),
                    Value::Str(display_text(&node.name)),
                    int(node.start_us),
                    int(node.end_us),
                    int(node.elapsed_us()),
                    int(node.wait_micros[WaitEvent::Lock as usize]),
                    int(node.wait_micros[WaitEvent::WalFlush as usize]),
                    int(node.wait_micros[WaitEvent::GroupCommitWait as usize]),
                    int(node.wait_counts[WaitEvent::BufferMiss as usize]),
                    int(node.wait_micros[WaitEvent::Exec as usize]),
                ]);
                for c in &node.children {
                    walk(trace_id, c, id, depth + 1, next_id, out);
                }
            }
            let mut rows = Vec::new();
            for t in ring.snapshot() {
                let mut next_id = 0i64;
                for root in &t.spans {
                    walk(t.trace_id, root, -1, 0, &mut next_id, &mut rows);
                }
            }
            rows
        },
    )
}

/// Normalize statement text for display: collapse whitespace, bound the
/// length to the view's column width.
pub(crate) fn display_text(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len().min(200));
    let mut last_space = false;
    for ch in sql.trim().chars() {
        let ch = if ch.is_whitespace() { ' ' } else { ch };
        if ch == ' ' && last_space {
            continue;
        }
        last_space = ch == ' ';
        out.push(ch);
        if out.len() >= 200 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_names_recognized() {
        assert!(is_monitor_name("M$WAIT_EVENTS"));
        assert!(is_monitor_name("m$sessions"));
        assert!(!is_monitor_name("M$"));
        assert!(!is_monitor_name("MANDT"));
        assert!(!is_monitor_name("VBAK"));
    }

    #[test]
    fn view_rows_are_fresh_per_call() {
        let stats = WaitStats::new();
        let view = wait_events_view(Arc::clone(&stats));
        assert_eq!(view.name(), "M$WAIT_EVENTS");
        assert_eq!(view.schema().len(), 3);
        let before = view.rows();
        assert_eq!(before.len(), WaitEvent::COUNT);
        assert_eq!(before[0][1], Value::Int(0));
        stats.record(WaitEvent::Lock, Duration::from_micros(40));
        let after = view.rows();
        assert_eq!(after[0], vec![Value::str("lock"), Value::Int(1), Value::Int(40)]);
    }

    #[test]
    fn collector_aggregates_by_key() {
        let c = StatementCollector::new();
        let mut w = WaitStats::new().snapshot();
        c.record("K1", "SELECT * FROM T WHERE A = 1", Duration::from_micros(100), 5, &w);
        let stats = WaitStats::new();
        stats.record(WaitEvent::Lock, Duration::from_micros(30));
        w = stats.snapshot();
        c.record("K1", "SELECT * FROM T WHERE A = 2", Duration::from_micros(300), 7, &w);
        c.record("K2", "INSERT INTO T VALUES (1)", Duration::from_micros(10), 0, &w);
        assert_eq!(c.len(), 2);
        let snap = c.snapshot();
        assert_eq!(snap[0].statement, "SELECT * FROM T WHERE A = 1", "first-seen text kept");
        assert_eq!(snap[0].calls, 2);
        assert_eq!(snap[0].rows, 12);
        assert_eq!(snap[0].total_micros, 400);
        assert_eq!(snap[0].min_micros, 100);
        assert_eq!(snap[0].max_micros, 300);
        assert_eq!(snap[0].waits.micros(WaitEvent::Lock), 30);
        assert_eq!(snap[0].recent.len(), 2);
        assert_eq!(c.total_waits().count(WaitEvent::Lock), 2);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn sample_ring_is_bounded() {
        let c = StatementCollector::new();
        let w = WaitSnapshot::default();
        for i in 0..100 {
            c.record("K", "Q", Duration::from_micros(i), 1, &w);
        }
        let snap = c.snapshot();
        assert_eq!(snap[0].calls, 100);
        assert_eq!(snap[0].recent.len(), 16, "ring bounded");
        assert_eq!(snap[0].recent.last().unwrap().micros, 99, "newest kept");
    }

    #[test]
    fn shape_map_is_lru_bounded_and_counts_evictions() {
        let c = Arc::new(StatementCollector::bounded(4));
        let w = WaitSnapshot::default();
        for i in 0..4 {
            c.record(&format!("K{i}"), "Q", Duration::from_micros(10), 1, &w);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evicted_shapes(), 0);
        // Touch K0 so K1 becomes the coldest, then overflow.
        c.record("K0", "Q", Duration::from_micros(10), 1, &w);
        c.record("K4", "Q", Duration::from_micros(10), 1, &w);
        assert_eq!(c.len(), 4, "stays bounded");
        assert_eq!(c.evicted_shapes(), 1);
        let keys: Vec<String> = c.snapshot().into_iter().map(|s| s.statement).collect();
        assert_eq!(keys.len(), 4);
        // K1 (least recently executed) was the one evicted: re-recording
        // it starts a fresh entry while K0 kept its two calls.
        c.record("K1", "Q", Duration::from_micros(10), 1, &w);
        assert_eq!(c.evicted_shapes(), 2);
        let view = c.view();
        let rows = view.rows();
        let evicted_col = view.schema().len() - 1;
        assert!(
            rows.iter().all(|r| r[evicted_col] == Value::Int(2)),
            "EVICTED_SHAPES on every row"
        );
        c.reset();
        assert_eq!(c.evicted_shapes(), 0);
    }

    #[test]
    fn traces_and_spans_views_expose_the_ring() {
        let ring = TraceRing::new(8);
        {
            let ctx = ring.begin("test", "demo");
            let _g = ctx.install();
            let _outer = trace::span("outer");
            let _inner = trace::span("inner");
        }
        let traces = traces_view(Arc::clone(&ring));
        let rows = traces.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), traces.schema().len());
        assert_eq!(rows[0][1], Value::str("test"));
        // Segment columns (7..=13 incl. APP_SERVER_US) sum to END_TO_END_US.
        let as_i = |v: &Value| match v {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        };
        let total: i64 = (7..=13).map(|c| as_i(&rows[0][c])).sum();
        assert_eq!(total, as_i(&rows[0][6]), "critical path sums in the view");
        let spans = spans_view(ring);
        let srows = spans.rows();
        assert_eq!(srows.len(), 2);
        assert_eq!(srows[0][4], Value::str("outer"));
        assert_eq!(srows[0][2], Value::Int(-1), "root parent");
        assert_eq!(srows[1][2], srows[0][1], "child links to parent span id");
    }

    #[test]
    fn statements_view_shape() {
        let c = StatementCollector::new();
        c.record("K", "SELECT   1", Duration::from_micros(50), 1, &WaitSnapshot::default());
        let view = c.view();
        let rows = view.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), view.schema().len());
        assert_eq!(rows[0][0], Value::str("SELECT 1"), "whitespace collapsed");
        assert_eq!(rows[0][1], Value::Int(1));
    }
}
