//! Live monitoring: virtual `M$` system views and the per-statement
//! collector behind `M$STATEMENTS`.
//!
//! The paper's diagnosis workflow is SAP's live monitors — ST03 workload
//! statistics, SM50 process overview, DB01 lock waits — read *while the
//! workload runs*, not post-hoc log dumps. This module gives the engine
//! the same surface: a [`MonitorView`] is a virtual table whose rows are
//! produced by a closure at **execute** time, registered in the catalog
//! under an `M$...` name and resolved by the planner like any base table.
//! A second wire connection can therefore `SELECT * FROM M$WAIT_EVENTS`
//! and see the current accumulators, every time, even through a cached
//! plan.
//!
//! Monitor views take no locks, have no catalog version, and are invisible
//! to DDL — reading them never blocks the workload being observed.

use crate::clock::{WaitEvent, WaitSnapshot, WaitStats};
use crate::schema::{Column, Row, Schema};
use crate::types::{DataType, Value};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// True if `name` is in the reserved monitoring namespace (`M$` prefix,
/// case-insensitive). Such names never reach the catalog's base-table
/// maps, take no locks, and are not plan-cache dependencies.
pub fn is_monitor_name(name: &str) -> bool {
    let b = name.as_bytes();
    b.len() > 2 && (b[0] == b'M' || b[0] == b'm') && b[1] == b'$'
}

/// A virtual system table: a schema plus a row producer evaluated at
/// execute time, so every read — including through a cached plan — sees
/// fresh data.
pub struct MonitorView {
    name: String,
    schema: Schema,
    rows: Box<dyn Fn() -> Vec<Row> + Send + Sync>,
}

impl MonitorView {
    pub fn new<F>(name: &str, columns: Vec<Column>, rows: F) -> Arc<MonitorView>
    where
        F: Fn() -> Vec<Row> + Send + Sync + 'static,
    {
        let name = name.to_ascii_uppercase();
        let schema = Schema::qualified(columns, &name);
        Arc::new(MonitorView { name, schema, rows: Box::new(rows) })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Produce the view's rows *now*.
    pub fn rows(&self) -> Vec<Row> {
        (self.rows)()
    }
}

impl std::fmt::Debug for MonitorView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorView").field("name", &self.name).finish_non_exhaustive()
    }
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// Build the `M$WAIT_EVENTS` view over a [`WaitStats`]: one row per
/// [`WaitEvent`] with its occurrence count and total waited microseconds.
pub fn wait_events_view(stats: Arc<WaitStats>) -> Arc<MonitorView> {
    MonitorView::new(
        "M$WAIT_EVENTS",
        vec![
            Column::new("EVENT", DataType::VarChar(32)),
            Column::new("WAITS", DataType::Int),
            Column::new("WAITED_US", DataType::Int),
        ],
        move || {
            let snap = stats.snapshot();
            WaitEvent::ALL
                .iter()
                .map(|&ev| vec![Value::str(ev.name()), int(snap.count(ev)), int(snap.micros(ev))])
                .collect()
        },
    )
}

/// One recent execution of a statement (the `M$STATEMENTS` sample ring).
#[derive(Debug, Clone, Copy)]
pub struct StatementSample {
    pub micros: u64,
    pub rows: u64,
}

/// Cumulative statistics for one normalized statement shape.
#[derive(Debug, Clone)]
pub struct StatementStats {
    /// Display text: the first concrete SQL seen for this shape.
    pub statement: String,
    pub calls: u64,
    pub rows: u64,
    pub total_micros: u64,
    pub min_micros: u64,
    pub max_micros: u64,
    /// Wait breakdown summed over all calls (mirrored into the caller's
    /// [`WaitScope`](crate::clock::WaitScope) during execution).
    pub waits: WaitSnapshot,
    /// Ring of the most recent executions, oldest first.
    pub recent: Vec<StatementSample>,
}

struct StatementEntry {
    statement: String,
    calls: u64,
    rows: u64,
    total_micros: u64,
    min_micros: u64,
    max_micros: u64,
    waits: WaitSnapshot,
    recent: VecDeque<StatementSample>,
}

/// pg_stat_statements-style collector: cumulative per-statement counters
/// keyed on the plan cache's normalized statement shape, so `SELECT ... =
/// 1` and `SELECT ... = 2` aggregate into one row while distinct shapes
/// stay separate.
#[derive(Debug)]
pub struct StatementCollector {
    inner: Mutex<HashMap<String, StatementEntry>>,
    /// Recent-sample ring capacity per statement shape.
    samples_per_statement: usize,
}

impl std::fmt::Debug for StatementEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatementEntry").field("calls", &self.calls).finish_non_exhaustive()
    }
}

impl Default for StatementCollector {
    fn default() -> Self {
        StatementCollector { inner: Mutex::new(HashMap::new()), samples_per_statement: 16 }
    }
}

impl StatementCollector {
    pub fn new() -> Arc<Self> {
        Arc::new(StatementCollector::default())
    }

    /// Record one completed execution. `key` is the normalized statement
    /// shape (the plan-cache key where available, the raw SQL otherwise);
    /// `statement` is the concrete text kept for display.
    pub fn record(
        &self,
        key: &str,
        statement: &str,
        elapsed: Duration,
        rows: u64,
        waits: &WaitSnapshot,
    ) {
        let micros = elapsed.as_micros() as u64;
        let mut inner = self.inner.lock();
        let entry = inner.entry(key.to_string()).or_insert_with(|| StatementEntry {
            statement: display_text(statement),
            calls: 0,
            rows: 0,
            total_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
            waits: WaitSnapshot::default(),
            recent: VecDeque::with_capacity(self.samples_per_statement),
        });
        entry.calls += 1;
        entry.rows += rows;
        entry.total_micros += micros;
        entry.min_micros = entry.min_micros.min(micros);
        entry.max_micros = entry.max_micros.max(micros);
        entry.waits = entry.waits.plus(waits);
        if entry.recent.len() == self.samples_per_statement {
            entry.recent.pop_front();
        }
        entry.recent.push_back(StatementSample { micros, rows });
    }

    /// Number of distinct statement shapes seen.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of all statements, hottest (most total time) first.
    pub fn snapshot(&self) -> Vec<StatementStats> {
        let inner = self.inner.lock();
        let mut out: Vec<StatementStats> = inner
            .values()
            .map(|e| StatementStats {
                statement: e.statement.clone(),
                calls: e.calls,
                rows: e.rows,
                total_micros: e.total_micros,
                min_micros: if e.calls == 0 { 0 } else { e.min_micros },
                max_micros: e.max_micros,
                waits: e.waits,
                recent: e.recent.iter().copied().collect(),
            })
            .collect();
        drop(inner);
        out.sort_by(|a, b| b.total_micros.cmp(&a.total_micros).then(a.statement.cmp(&b.statement)));
        out
    }

    /// Sum of per-statement wait breakdowns (for reconciliation against
    /// the engine-wide [`WaitStats`] and cost meters).
    pub fn total_waits(&self) -> WaitSnapshot {
        self.inner.lock().values().fold(WaitSnapshot::default(), |acc, e| acc.plus(&e.waits))
    }

    /// Forget everything (between experiment phases).
    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// Build the `M$STATEMENTS` view over this collector.
    pub fn view(self: &Arc<Self>) -> Arc<MonitorView> {
        let collector = Arc::clone(self);
        MonitorView::new(
            "M$STATEMENTS",
            vec![
                Column::new("STATEMENT", DataType::VarChar(200)),
                Column::new("CALLS", DataType::Int),
                Column::new("TOTAL_ROWS", DataType::Int),
                Column::new("TOTAL_US", DataType::Int),
                Column::new("MEAN_US", DataType::Int),
                Column::new("MIN_US", DataType::Int),
                Column::new("MAX_US", DataType::Int),
                Column::new("LAST_US", DataType::Int),
                Column::new("LOCK_WAITS", DataType::Int),
                Column::new("LOCK_US", DataType::Int),
                Column::new("WAL_FLUSH_US", DataType::Int),
                Column::new("GROUP_COMMIT_US", DataType::Int),
                Column::new("BUFFER_MISSES", DataType::Int),
            ],
            move || {
                collector
                    .snapshot()
                    .into_iter()
                    .map(|s| {
                        vec![
                            Value::Str(s.statement),
                            int(s.calls),
                            int(s.rows),
                            int(s.total_micros),
                            int(s.total_micros.checked_div(s.calls).unwrap_or(0)),
                            int(s.min_micros),
                            int(s.max_micros),
                            int(s.recent.last().map_or(0, |r| r.micros)),
                            int(s.waits.count(WaitEvent::Lock)),
                            int(s.waits.micros(WaitEvent::Lock)),
                            int(s.waits.micros(WaitEvent::WalFlush)),
                            int(s.waits.micros(WaitEvent::GroupCommitWait)),
                            int(s.waits.count(WaitEvent::BufferMiss)),
                        ]
                    })
                    .collect()
            },
        )
    }
}

/// Normalize statement text for display: collapse whitespace, bound the
/// length to the view's column width.
pub(crate) fn display_text(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len().min(200));
    let mut last_space = false;
    for ch in sql.trim().chars() {
        let ch = if ch.is_whitespace() { ' ' } else { ch };
        if ch == ' ' && last_space {
            continue;
        }
        last_space = ch == ' ';
        out.push(ch);
        if out.len() >= 200 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_names_recognized() {
        assert!(is_monitor_name("M$WAIT_EVENTS"));
        assert!(is_monitor_name("m$sessions"));
        assert!(!is_monitor_name("M$"));
        assert!(!is_monitor_name("MANDT"));
        assert!(!is_monitor_name("VBAK"));
    }

    #[test]
    fn view_rows_are_fresh_per_call() {
        let stats = WaitStats::new();
        let view = wait_events_view(Arc::clone(&stats));
        assert_eq!(view.name(), "M$WAIT_EVENTS");
        assert_eq!(view.schema().len(), 3);
        let before = view.rows();
        assert_eq!(before.len(), WaitEvent::COUNT);
        assert_eq!(before[0][1], Value::Int(0));
        stats.record(WaitEvent::Lock, Duration::from_micros(40));
        let after = view.rows();
        assert_eq!(after[0], vec![Value::str("lock"), Value::Int(1), Value::Int(40)]);
    }

    #[test]
    fn collector_aggregates_by_key() {
        let c = StatementCollector::new();
        let mut w = WaitStats::new().snapshot();
        c.record("K1", "SELECT * FROM T WHERE A = 1", Duration::from_micros(100), 5, &w);
        let stats = WaitStats::new();
        stats.record(WaitEvent::Lock, Duration::from_micros(30));
        w = stats.snapshot();
        c.record("K1", "SELECT * FROM T WHERE A = 2", Duration::from_micros(300), 7, &w);
        c.record("K2", "INSERT INTO T VALUES (1)", Duration::from_micros(10), 0, &w);
        assert_eq!(c.len(), 2);
        let snap = c.snapshot();
        assert_eq!(snap[0].statement, "SELECT * FROM T WHERE A = 1", "first-seen text kept");
        assert_eq!(snap[0].calls, 2);
        assert_eq!(snap[0].rows, 12);
        assert_eq!(snap[0].total_micros, 400);
        assert_eq!(snap[0].min_micros, 100);
        assert_eq!(snap[0].max_micros, 300);
        assert_eq!(snap[0].waits.micros(WaitEvent::Lock), 30);
        assert_eq!(snap[0].recent.len(), 2);
        assert_eq!(c.total_waits().count(WaitEvent::Lock), 2);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn sample_ring_is_bounded() {
        let c = StatementCollector::new();
        let w = WaitSnapshot::default();
        for i in 0..100 {
            c.record("K", "Q", Duration::from_micros(i), 1, &w);
        }
        let snap = c.snapshot();
        assert_eq!(snap[0].calls, 100);
        assert_eq!(snap[0].recent.len(), 16, "ring bounded");
        assert_eq!(snap[0].recent.last().unwrap().micros, 99, "newest kept");
    }

    #[test]
    fn statements_view_shape() {
        let c = StatementCollector::new();
        c.record("K", "SELECT   1", Duration::from_micros(50), 1, &WaitSnapshot::default());
        let view = c.view();
        let rows = view.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), view.schema().len());
        assert_eq!(rows[0][0], Value::str("SELECT 1"), "whitespace collapsed");
        assert_eq!(rows[0][1], Value::Int(1));
    }
}
