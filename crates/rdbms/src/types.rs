//! SQL value types: integers, fixed-point decimals, strings, dates, booleans.
//!
//! The engine uses a small, TPC-D-sufficient type system. Decimals are exact
//! fixed-point numbers (i128 mantissa + scale) because TPC-D money arithmetic
//! (`l_extendedprice * (1 - l_discount) * (1 + l_tax)`) must be deterministic
//! across runs for answer validation.

use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A SQL data type. `Char(n)` is blank-padded fixed width (SAP R/3 keys are
/// CHAR(16) in the paper, a major source of the 10x space inflation);
/// `VarChar(n)` is variable width with a maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Decimal { precision: u8, scale: u8 },
    Char(u16),
    VarChar(u16),
    Date,
    Bool,
}

impl DataType {
    /// Byte width used for storage-size accounting (Table 2 of the paper).
    /// Fixed types report their exact width; `VarChar` reports its maximum
    /// only for planning — actual rows are accounted at their real length.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Int => Some(4),
            DataType::Decimal { .. } => Some(8),
            DataType::Char(n) => Some(*n as usize),
            DataType::VarChar(_) => None,
            DataType::Date => Some(4),
            DataType::Bool => Some(1),
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Decimal { .. })
    }

    pub fn is_string(&self) -> bool {
        matches!(self, DataType::Char(_) | DataType::VarChar(_))
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INTEGER"),
            DataType::Decimal { precision, scale } => {
                write!(f, "DECIMAL({precision},{scale})")
            }
            DataType::Char(n) => write!(f, "CHAR({n})"),
            DataType::VarChar(n) => write!(f, "VARCHAR({n})"),
            DataType::Date => write!(f, "DATE"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

// ---------------------------------------------------------------------------
// Decimal
// ---------------------------------------------------------------------------

/// Exact fixed-point decimal: `mantissa * 10^-scale`.
#[derive(Debug, Clone, Copy)]
pub struct Decimal {
    mantissa: i128,
    scale: u8,
}

const POW10: [i128; 20] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
    10_000_000_000_000_000_000,
];

#[allow(clippy::should_implement_trait)] // by-value helpers named like the ops traits; call sites predate them
impl Decimal {
    pub const MAX_SCALE: u8 = 12;

    pub fn new(mantissa: i128, scale: u8) -> Self {
        debug_assert!(scale <= Self::MAX_SCALE + 6, "scale {scale} out of range");
        Decimal { mantissa, scale }
    }

    pub fn from_int(v: i64) -> Self {
        Decimal { mantissa: v as i128, scale: 0 }
    }

    pub fn mantissa(&self) -> i128 {
        self.mantissa
    }

    pub fn scale(&self) -> u8 {
        self.scale
    }

    pub fn zero() -> Self {
        Decimal { mantissa: 0, scale: 0 }
    }

    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// Rescale to `scale`, truncating toward zero when reducing scale.
    pub fn rescale(&self, scale: u8) -> Self {
        match scale.cmp(&self.scale) {
            Ordering::Equal => *self,
            Ordering::Greater => {
                Decimal { mantissa: self.mantissa * POW10[(scale - self.scale) as usize], scale }
            }
            Ordering::Less => {
                Decimal { mantissa: self.mantissa / POW10[(self.scale - scale) as usize], scale }
            }
        }
    }

    fn align(a: Decimal, b: Decimal) -> (i128, i128, u8) {
        let scale = a.scale.max(b.scale);
        (a.rescale(scale).mantissa, b.rescale(scale).mantissa, scale)
    }

    pub fn add(self, other: Decimal) -> Decimal {
        let (a, b, s) = Self::align(self, other);
        Decimal { mantissa: a + b, scale: s }
    }

    pub fn sub(self, other: Decimal) -> Decimal {
        let (a, b, s) = Self::align(self, other);
        Decimal { mantissa: a - b, scale: s }
    }

    /// Multiplication keeps combined scale, clamped to `MAX_SCALE` to keep
    /// chained TPC-D expressions (price * (1-disc) * (1+tax)) in range.
    pub fn mul(self, other: Decimal) -> Decimal {
        let raw =
            Decimal { mantissa: self.mantissa * other.mantissa, scale: self.scale + other.scale };
        if raw.scale > Self::MAX_SCALE {
            raw.rescale(Self::MAX_SCALE)
        } else {
            raw
        }
    }

    /// Division at `MAX_SCALE` precision, truncating.
    pub fn div(self, other: Decimal) -> DbResult<Decimal> {
        if other.mantissa == 0 {
            return Err(DbError::execution("division by zero"));
        }
        let a = self.rescale(Self::MAX_SCALE);
        // (a.m * 10^b.scale) / b.m has scale MAX_SCALE
        let num = a.mantissa * POW10[other.scale as usize];
        Ok(Decimal { mantissa: num / other.mantissa, scale: Self::MAX_SCALE })
    }

    pub fn neg(self) -> Decimal {
        Decimal { mantissa: -self.mantissa, scale: self.scale }
    }

    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 / POW10[self.scale as usize] as f64
    }

    /// Truncate to integer part.
    pub fn trunc_i64(&self) -> i64 {
        (self.mantissa / POW10[self.scale as usize]) as i64
    }

    /// Parse `[-]digits[.digits]`.
    pub fn parse(s: &str) -> DbResult<Decimal> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(DbError::parse(format!("invalid decimal literal '{s}'")));
        }
        if frac_part.len() > Self::MAX_SCALE as usize {
            return Err(DbError::parse(format!(
                "decimal literal '{s}' exceeds max scale {}",
                Self::MAX_SCALE
            )));
        }
        let mut mantissa: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c
                .to_digit(10)
                .ok_or_else(|| DbError::parse(format!("invalid decimal literal '{s}'")))?;
            mantissa = mantissa * 10 + d as i128;
        }
        if neg {
            mantissa = -mantissa;
        }
        Ok(Decimal { mantissa, scale: frac_part.len() as u8 })
    }
}

impl PartialEq for Decimal {
    fn eq(&self, other: &Self) -> bool {
        let (a, b, _) = Decimal::align(*self, *other);
        a == b
    }
}

impl Eq for Decimal {}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b, _) = Decimal::align(*self, *other);
        a.cmp(&b)
    }
}

impl Hash for Decimal {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the canonical (trailing-zero-free) representation so that
        // equal decimals of different scales hash identically.
        let mut m = self.mantissa;
        let mut s = self.scale;
        while s > 0 && m % 10 == 0 {
            m /= 10;
            s -= 1;
        }
        m.hash(state);
        s.hash(state);
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let neg = self.mantissa < 0;
        let abs = self.mantissa.unsigned_abs();
        let div = POW10[self.scale as usize] as u128;
        let int = abs / div;
        let frac = abs % div;
        write!(
            f,
            "{}{}.{:0width$}",
            if neg { "-" } else { "" },
            int,
            frac,
            width = self.scale as usize
        )
    }
}

// ---------------------------------------------------------------------------
// Date
// ---------------------------------------------------------------------------

/// A calendar date stored as days since 1970-01-01 (may be negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

impl Date {
    pub fn from_days(days: i32) -> Self {
        Date { days }
    }

    pub fn days(&self) -> i32 {
        self.days
    }

    fn is_leap(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    fn days_in_month(year: i32, month: u32) -> u32 {
        match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Self::is_leap(year) {
                    29
                } else {
                    28
                }
            }
            _ => 0,
        }
    }

    /// Construct from a calendar date; validates the components.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> DbResult<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > Self::days_in_month(year, month) {
            return Err(DbError::parse(format!("invalid date {year:04}-{month:02}-{day:02}")));
        }
        // Days from civil algorithm (Howard Hinnant's days_from_civil).
        let y = if month <= 2 { year - 1 } else { year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = ((month as i64) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        let days = era * 146_097 + doe - 719_468;
        Ok(Date { days: days as i32 })
    }

    /// Decompose into (year, month, day) — civil_from_days.
    pub fn ymd(&self) -> (i32, u32, u32) {
        let z = self.days as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    pub fn month(&self) -> u32 {
        self.ymd().1
    }

    pub fn day(&self) -> u32 {
        self.ymd().2
    }

    pub fn add_days(&self, n: i32) -> Date {
        Date { days: self.days + n }
    }

    /// Add `n` months, clamping the day to the target month's length
    /// (SQL-standard interval-month semantics).
    pub fn add_months(&self, n: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = y * 12 + (m as i32 - 1) + n;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(Self::days_in_month(ny, nm));
        Date::from_ymd(ny, nm, nd).expect("clamped date is valid")
    }

    pub fn add_years(&self, n: i32) -> Date {
        self.add_months(n * 12)
    }

    /// Parse `yyyy-mm-dd`.
    pub fn parse(s: &str) -> DbResult<Self> {
        let parts: Vec<&str> = s.trim().split('-').collect();
        if parts.len() != 3 {
            return Err(DbError::parse(format!("invalid date literal '{s}'")));
        }
        let year: i32 =
            parts[0].parse().map_err(|_| DbError::parse(format!("invalid date literal '{s}'")))?;
        let month: u32 =
            parts[1].parse().map_err(|_| DbError::parse(format!("invalid date literal '{s}'")))?;
        let day: u32 =
            parts[2].parse().map_err(|_| DbError::parse(format!("invalid date literal '{s}'")))?;
        Date::from_ymd(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A runtime SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Decimal(Decimal),
    Str(String),
    Date(Date),
    Bool(bool),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INTEGER",
            Value::Decimal(_) => "DECIMAL",
            Value::Str(_) => "STRING",
            Value::Date(_) => "DATE",
            Value::Bool(_) => "BOOLEAN",
        }
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn decimal(mantissa: i128, scale: u8) -> Value {
        Value::Decimal(Decimal::new(mantissa, scale))
    }

    pub fn date(y: i32, m: u32, d: u32) -> Value {
        Value::Date(Date::from_ymd(y, m, d).expect("valid literal date"))
    }

    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Decimal(d) => Ok(d.trunc_i64()),
            other => {
                Err(DbError::execution(format!("expected INTEGER, found {}", other.type_name())))
            }
        }
    }

    pub fn as_decimal(&self) -> DbResult<Decimal> {
        match self {
            Value::Int(v) => Ok(Decimal::from_int(*v)),
            Value::Decimal(d) => Ok(*d),
            other => {
                Err(DbError::execution(format!("expected numeric, found {}", other.type_name())))
            }
        }
    }

    pub fn as_str(&self) -> DbResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => {
                Err(DbError::execution(format!("expected STRING, found {}", other.type_name())))
            }
        }
    }

    pub fn as_date(&self) -> DbResult<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(DbError::execution(format!("expected DATE, found {}", other.type_name()))),
        }
    }

    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => {
                Err(DbError::execution(format!("expected BOOLEAN, found {}", other.type_name())))
            }
        }
    }

    /// SQL three-valued comparison: `None` if either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Decimal(a), Value::Decimal(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Decimal(b)) => Some(Decimal::from_int(*a).cmp(b)),
            (Value::Decimal(a), Value::Int(b)) => Some(a.cmp(&Decimal::from_int(*b))),
            (Value::Str(a), Value::Str(b)) => {
                // CHAR comparison ignores trailing blanks (SQL padded
                // semantics); this also makes CHAR(16) SAP keys compare
                // equal to their un-padded TPC-D counterparts.
                Some(a.trim_end().cmp(b.trim_end()))
            }
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality for grouping/hash keys: NULLs group together (SQL GROUP BY
    /// semantics), trailing-blank-insensitive for strings.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// Total order used for ORDER BY and B+-tree keys: NULLs sort first,
    /// cross-type comparisons fall back to a type ranking so sorting never
    /// panics on heterogeneous data.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Decimal(_) => 2,
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        if let Some(ord) = self.sql_cmp(other) {
            return ord;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Byte size of this value for storage accounting.
    pub fn storage_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 4,
            Value::Decimal(_) => 8,
            Value::Str(s) => s.len() + 2,
            Value::Date(_) => 4,
            Value::Bool(_) => 1,
        }
    }

    /// Cast to a target column type, blank-padding CHAR and checking
    /// VARCHAR length. Used on INSERT.
    pub fn coerce_to(&self, ty: &DataType) -> DbResult<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(v), DataType::Int) => Ok(Value::Int(*v)),
            (Value::Int(v), DataType::Decimal { scale, .. }) => {
                Ok(Value::Decimal(Decimal::from_int(*v).rescale(*scale)))
            }
            (Value::Decimal(d), DataType::Decimal { scale, .. }) => {
                Ok(Value::Decimal(d.rescale(*scale)))
            }
            (Value::Decimal(d), DataType::Int) => Ok(Value::Int(d.trunc_i64())),
            (Value::Str(s), DataType::Char(n)) => {
                let n = *n as usize;
                if s.len() > n {
                    // CHAR semantics: truncate overlong values only if the
                    // excess is blank, else error.
                    if s[n..].trim().is_empty() {
                        Ok(Value::Str(s[..n].to_string()))
                    } else {
                        Err(DbError::execution(format!("value '{s}' too long for CHAR({n})")))
                    }
                } else {
                    Ok(Value::Str(format!("{s:<n$}")))
                }
            }
            (Value::Str(s), DataType::VarChar(n)) => {
                if s.len() > *n as usize {
                    Err(DbError::execution(format!("value too long for VARCHAR({n})")))
                } else {
                    Ok(Value::Str(s.clone()))
                }
            }
            (Value::Date(d), DataType::Date) => Ok(Value::Date(*d)),
            (Value::Str(s), DataType::Date) => Ok(Value::Date(Date::parse(s)?)),
            (Value::Bool(b), DataType::Bool) => Ok(Value::Bool(*b)),
            (v, t) => Err(DbError::execution(format!("cannot coerce {} to {t}", v.type_name()))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                // Numerics hash via canonical decimal so Int(3) == Decimal(3.0)
                2u8.hash(state);
                Decimal::from_int(*v).hash(state);
            }
            Value::Decimal(d) => {
                2u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.trim_end().hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Bool(b) => {
                5u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Decimal(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{}", s.trim_end()),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "3.14", "-0.05", "123456.789012"] {
            let d = Decimal::parse(s).unwrap();
            assert_eq!(d.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn decimal_parse_rejects_garbage() {
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse("abc").is_err());
        assert!(Decimal::parse("1.2.3").is_err());
        assert!(Decimal::parse("-").is_err());
    }

    #[test]
    fn decimal_arithmetic() {
        let a = Decimal::parse("10.50").unwrap();
        let b = Decimal::parse("0.05").unwrap();
        assert_eq!(a.add(b).to_string(), "10.55");
        assert_eq!(a.sub(b).to_string(), "10.45");
        assert_eq!(a.mul(b).to_string(), "0.5250");
        assert_eq!(a.div(b).unwrap().trunc_i64(), 210);
    }

    #[test]
    fn decimal_tpcd_expression_is_exact() {
        // extendedprice * (1 - discount) * (1 + tax)
        let price = Decimal::parse("901.00").unwrap();
        let disc = Decimal::parse("0.05").unwrap();
        let tax = Decimal::parse("0.02").unwrap();
        let one = Decimal::from_int(1);
        let v = price.mul(one.sub(disc)).mul(one.add(tax));
        assert_eq!(v.to_string(), "873.069000");
    }

    #[test]
    fn decimal_div_by_zero_errors() {
        assert!(Decimal::from_int(1).div(Decimal::zero()).is_err());
    }

    #[test]
    fn decimal_equality_across_scales() {
        let a = Decimal::parse("1.50").unwrap();
        let b = Decimal::parse("1.5000").unwrap();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn date_round_trip() {
        for (y, m, d) in [(1970, 1, 1), (1992, 2, 29), (1998, 12, 1), (1900, 3, 1), (2000, 2, 29)] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d));
            assert_eq!(Date::parse(&date.to_string()).unwrap(), date);
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::from_ymd(1999, 2, 29).is_err());
        assert!(Date::from_ymd(1999, 13, 1).is_err());
        assert!(Date::from_ymd(1999, 0, 1).is_err());
        assert!(Date::from_ymd(1999, 4, 31).is_err());
        assert!(Date::parse("1999/01/01").is_err());
    }

    #[test]
    fn date_epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().days(), 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).unwrap().days(), -1);
    }

    #[test]
    fn date_interval_arithmetic() {
        let d = Date::from_ymd(1998, 12, 1).unwrap();
        assert_eq!(d.add_days(-90).to_string(), "1998-09-02");
        assert_eq!(d.add_months(3).to_string(), "1999-03-01");
        assert_eq!(d.add_years(1).to_string(), "1999-12-01");
        // Month-end clamping
        let jan31 = Date::from_ymd(1999, 1, 31).unwrap();
        assert_eq!(jan31.add_months(1).to_string(), "1999-02-28");
    }

    #[test]
    fn value_cmp_char_padding_insensitive() {
        let a = Value::str("ASIA            ");
        let b = Value::str("ASIA");
        assert_eq!(a.sql_cmp(&b), Some(Ordering::Equal));
        assert_eq!(a, b);
    }

    #[test]
    fn value_null_semantics() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(1)));
        // total_cmp: NULL sorts first
        assert_eq!(Value::Null.total_cmp(&Value::Int(1)), Ordering::Less);
    }

    #[test]
    fn value_numeric_cross_type_cmp() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Decimal(Decimal::parse("3.00").unwrap())),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Decimal(Decimal::parse("3.01").unwrap())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn coerce_char_pads_and_checks() {
        let v = Value::str("AB").coerce_to(&DataType::Char(4)).unwrap();
        assert_eq!(v, Value::str("AB  "));
        if let Value::Str(s) = &v {
            assert_eq!(s.len(), 4);
        }
        assert!(Value::str("ABCDE").coerce_to(&DataType::Char(4)).is_err());
        assert!(Value::str("AB   ").coerce_to(&DataType::Char(4)).is_ok());
    }

    #[test]
    fn coerce_numeric_rescales() {
        let v = Value::Int(7).coerce_to(&DataType::Decimal { precision: 10, scale: 2 }).unwrap();
        assert_eq!(v.to_string(), "7.00");
        let w = Value::Decimal(Decimal::parse("7.999").unwrap())
            .coerce_to(&DataType::Decimal { precision: 10, scale: 2 })
            .unwrap();
        assert_eq!(w.to_string(), "7.99");
    }

    #[test]
    fn coerce_str_to_date() {
        let v = Value::str("1995-03-15").coerce_to(&DataType::Date).unwrap();
        assert_eq!(v, Value::date(1995, 3, 15));
    }

    #[test]
    fn storage_sizes() {
        assert_eq!(Value::Int(1).storage_size(), 4);
        assert_eq!(Value::str("abcd").storage_size(), 6);
        assert_eq!(Value::Null.storage_size(), 1);
    }
}
