//! Write-ahead logging with ARIES-style restart recovery.
//!
//! The engine's pager is a *simulated* disk: it lives in process memory and
//! dies with the process. The one real persistent artifact is the log file
//! this module owns — a sequence of physiological records (row-level
//! operations addressed by RID) from which the entire database state can be
//! reconstructed. Durability is therefore log-structured: a crash throws
//! away every page and [`recovery::recover`] repeats history from the log
//! (analysis / redo / undo, DESIGN.md §10).
//!
//! Key pieces:
//!
//! * **LSNs** ([`Lsn`]) are byte offsets into the log file; the file starts
//!   with an 8-byte magic so offset 0 can mean "none" ([`NULL_LSN`]).
//! * **Records** ([`LogPayload`]) are framed `[len][crc][body]` with an
//!   FNV-1a checksum; a torn or corrupt tail ends the readable prefix, so
//!   truncating the file at any byte offset models a crash.
//! * **Per-transaction backchains**: every record carries the previous LSN
//!   of its transaction, maintained in the live active-transaction table so
//!   rollback and restart-undo can walk a transaction's history backward.
//! * **Group commit** ([`Wal::commit`]): under [`CommitPolicy::GroupCommit`]
//!   a committing thread either becomes the *leader* — writing and fsyncing
//!   everything buffered so far in one force — or parks on a condvar until
//!   a leader's force covers its commit LSN. One disk force thus absorbs
//!   many commits; the batch sizes are metered as
//!   [`Counter::GroupCommitBatch`].
//! * **Fuzzy checkpoints**: [`crate::Database::checkpoint`] logs the active
//!   transaction table and the pager's dirty-page table without quiescing
//!   anything; restart analysis starts from the last complete checkpoint.
//!
//! Transaction 0 is reserved for *system* records: bulk-load inserts and
//! replayed DDL, which carry no begin/commit bracket and are treated as
//! committed if present (asynchronous-commit load semantics; the loader
//! forces the log with [`crate::Database::wal_flush`] when it needs a durability
//! point).

pub mod recovery;

use crate::clock::{CostMeter, Counter, WaitEvent, WaitStats};
use crate::error::{DbError, DbResult};
use crate::schema::Row;
use crate::storage::codec::{decode_row, encode_row};
use crate::storage::{PageId, Rid};
use crate::txn::TxnId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub use recovery::{recover, RecoveryReport};

/// Log sequence number: the byte offset of a record in the log file.
pub type Lsn = u64;

/// "No LSN": the file begins with [`MAGIC`], so no record lives at offset 0.
pub const NULL_LSN: Lsn = 0;

/// File header identifying a log file (and reserving offset 0).
pub const MAGIC: &[u8; 8] = b"R3WAL001";

/// Transaction id reserved for system records (bulk load, DDL): no
/// begin/commit bracket, committed-if-present at restart.
pub const SYSTEM_TXN: TxnId = 0;

/// Frame overhead per record: `[len: u32][crc: u32]`.
const FRAME_HEADER: usize = 8;

/// Sanity cap on a single record body (a row is at most a page).
const MAX_RECORD: u32 = 1 << 24;

/// How commits force the log to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitPolicy {
    /// Write buffered records to the file on commit but never fsync. Fast
    /// and crash-unsafe (commits can be lost); useful as the "WAL off"
    /// baseline that still exercises the logging path.
    NoFsync,
    /// Every commit writes and fsyncs immediately, serialized: one disk
    /// force per commit (the classic durability tax).
    FsyncPerCommit,
    /// Leader-based group commit: one force covers every commit buffered
    /// while the previous force was in flight.
    #[default]
    GroupCommit,
}

impl CommitPolicy {
    pub fn as_str(self) -> &'static str {
        match self {
            CommitPolicy::NoFsync => "no_fsync",
            CommitPolicy::FsyncPerCommit => "fsync_per_commit",
            CommitPolicy::GroupCommit => "group_commit",
        }
    }
}

/// Write-ahead-log configuration carried inside [`crate::DbConfig`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Path of the log file (created/truncated by [`crate::Database::open`],
    /// reopened by [`recover`]).
    pub path: PathBuf,
    pub policy: CommitPolicy,
}

impl WalConfig {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalConfig { path: path.into(), policy: CommitPolicy::default() }
    }

    pub fn with_policy(mut self, policy: CommitPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The redo half of one undo step, logged as a compensation record so
/// restart can repeat a partially-logged rollback and never undo twice.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoAction {
    /// Undo of an insert: the row at `rid` is deleted.
    Delete { table: String, rid: Rid },
    /// Undo of a delete: `row` is re-inserted (logged with the rid the row
    /// had when originally deleted, for remapping at replay).
    Insert { table: String, rid: Rid, row: Row },
    /// Undo of an update: the row currently at `rid` is restored to `old`
    /// (logically back at `prev_rid`).
    Revert { table: String, rid: Rid, prev_rid: Rid, old: Row },
}

/// One log record body. `Insert`/`Delete`/`Update` are physiological: they
/// name the table, the RID the operation used at do-time, and full
/// before/after row images, so they can be both replayed forward and
/// undone backward (RID drift across replays is handled by a remap table,
/// see [`recovery`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    Begin,
    Commit,
    Abort,
    Insert {
        table: String,
        rid: Rid,
        row: Row,
    },
    Delete {
        table: String,
        rid: Rid,
        row: Row,
    },
    Update {
        table: String,
        rid: Rid,
        new_rid: Rid,
        old: Row,
        new: Row,
    },
    /// Compensation log record: `undo_next` is the LSN of the next record
    /// of this transaction still to undo ([`NULL_LSN`] when the rollback
    /// is complete up to Begin).
    Clr {
        undo_next: Lsn,
        action: UndoAction,
    },
    CheckpointBegin,
    /// End of a fuzzy checkpoint: the active-transaction table (txn id,
    /// last LSN) and the dirty-page table (page id, recovery LSN) as of
    /// the checkpoint.
    CheckpointEnd {
        att: Vec<(TxnId, Lsn)>,
        dpt: Vec<(PageId, Lsn)>,
    },
    /// DDL, replayed by re-executing the statement text.
    Ddl {
        sql: String,
    },
}

/// A decoded record together with its position and transaction linkage.
#[derive(Debug, Clone)]
pub struct LogRecord {
    pub lsn: Lsn,
    pub txn: TxnId,
    /// Previous record of the same transaction ([`NULL_LSN`] for the first,
    /// and always for [`SYSTEM_TXN`] records).
    pub prev_lsn: Lsn,
    pub payload: LogPayload,
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

fn put_rid(out: &mut Vec<u8>, rid: Rid) {
    put_u32(out, rid.page);
    put_u16(out, rid.slot);
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    let bytes = encode_row(row);
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(&bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DbError::storage("truncated log record body"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> DbResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> DbResult<String> {
        let n = self.u16()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| DbError::storage("bad utf8 in log record"))
    }

    fn rid(&mut self) -> DbResult<Rid> {
        let page = self.u32()?;
        let slot = self.u16()?;
        Ok(Rid { page, slot })
    }

    fn row(&mut self) -> DbResult<Row> {
        let n = self.u32()? as usize;
        decode_row(self.take(n)?)
    }
}

const K_BEGIN: u8 = 1;
const K_COMMIT: u8 = 2;
const K_ABORT: u8 = 3;
const K_INSERT: u8 = 4;
const K_DELETE: u8 = 5;
const K_UPDATE: u8 = 6;
const K_CLR: u8 = 7;
const K_CKPT_BEGIN: u8 = 8;
const K_CKPT_END: u8 = 9;
const K_DDL: u8 = 10;

const A_DELETE: u8 = 1;
const A_INSERT: u8 = 2;
const A_REVERT: u8 = 3;

fn encode_body(txn: TxnId, prev_lsn: Lsn, payload: &LogPayload) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    let kind = match payload {
        LogPayload::Begin => K_BEGIN,
        LogPayload::Commit => K_COMMIT,
        LogPayload::Abort => K_ABORT,
        LogPayload::Insert { .. } => K_INSERT,
        LogPayload::Delete { .. } => K_DELETE,
        LogPayload::Update { .. } => K_UPDATE,
        LogPayload::Clr { .. } => K_CLR,
        LogPayload::CheckpointBegin => K_CKPT_BEGIN,
        LogPayload::CheckpointEnd { .. } => K_CKPT_END,
        LogPayload::Ddl { .. } => K_DDL,
    };
    out.push(kind);
    put_u64(&mut out, txn);
    put_u64(&mut out, prev_lsn);
    match payload {
        LogPayload::Begin
        | LogPayload::Commit
        | LogPayload::Abort
        | LogPayload::CheckpointBegin => {}
        LogPayload::Insert { table, rid, row } | LogPayload::Delete { table, rid, row } => {
            put_str(&mut out, table);
            put_rid(&mut out, *rid);
            put_row(&mut out, row);
        }
        LogPayload::Update { table, rid, new_rid, old, new } => {
            put_str(&mut out, table);
            put_rid(&mut out, *rid);
            put_rid(&mut out, *new_rid);
            put_row(&mut out, old);
            put_row(&mut out, new);
        }
        LogPayload::Clr { undo_next, action } => {
            put_u64(&mut out, *undo_next);
            match action {
                UndoAction::Delete { table, rid } => {
                    out.push(A_DELETE);
                    put_str(&mut out, table);
                    put_rid(&mut out, *rid);
                }
                UndoAction::Insert { table, rid, row } => {
                    out.push(A_INSERT);
                    put_str(&mut out, table);
                    put_rid(&mut out, *rid);
                    put_row(&mut out, row);
                }
                UndoAction::Revert { table, rid, prev_rid, old } => {
                    out.push(A_REVERT);
                    put_str(&mut out, table);
                    put_rid(&mut out, *rid);
                    put_rid(&mut out, *prev_rid);
                    put_row(&mut out, old);
                }
            }
        }
        LogPayload::CheckpointEnd { att, dpt } => {
            put_u32(&mut out, att.len() as u32);
            for (t, l) in att {
                put_u64(&mut out, *t);
                put_u64(&mut out, *l);
            }
            put_u32(&mut out, dpt.len() as u32);
            for (p, l) in dpt {
                put_u32(&mut out, *p);
                put_u64(&mut out, *l);
            }
        }
        LogPayload::Ddl { sql } => {
            put_u32(&mut out, sql.len() as u32);
            out.extend_from_slice(sql.as_bytes());
        }
    }
    out
}

fn decode_body(body: &[u8]) -> DbResult<(TxnId, Lsn, LogPayload)> {
    let mut c = Cursor { buf: body, pos: 0 };
    let kind = c.take(1)?[0];
    let txn = c.u64()?;
    let prev = c.u64()?;
    let payload = match kind {
        K_BEGIN => LogPayload::Begin,
        K_COMMIT => LogPayload::Commit,
        K_ABORT => LogPayload::Abort,
        K_INSERT | K_DELETE => {
            let table = c.str()?;
            let rid = c.rid()?;
            let row = c.row()?;
            if kind == K_INSERT {
                LogPayload::Insert { table, rid, row }
            } else {
                LogPayload::Delete { table, rid, row }
            }
        }
        K_UPDATE => {
            let table = c.str()?;
            let rid = c.rid()?;
            let new_rid = c.rid()?;
            let old = c.row()?;
            let new = c.row()?;
            LogPayload::Update { table, rid, new_rid, old, new }
        }
        K_CLR => {
            let undo_next = c.u64()?;
            let akind = c.take(1)?[0];
            let action = match akind {
                A_DELETE => UndoAction::Delete { table: c.str()?, rid: c.rid()? },
                A_INSERT => UndoAction::Insert { table: c.str()?, rid: c.rid()?, row: c.row()? },
                A_REVERT => UndoAction::Revert {
                    table: c.str()?,
                    rid: c.rid()?,
                    prev_rid: c.rid()?,
                    old: c.row()?,
                },
                other => {
                    return Err(DbError::storage(format!("unknown CLR action {other}")));
                }
            };
            LogPayload::Clr { undo_next, action }
        }
        K_CKPT_BEGIN => LogPayload::CheckpointBegin,
        K_CKPT_END => {
            let n = c.u32()? as usize;
            let mut att = Vec::with_capacity(n);
            for _ in 0..n {
                let t = c.u64()?;
                let l = c.u64()?;
                att.push((t, l));
            }
            let m = c.u32()? as usize;
            let mut dpt = Vec::with_capacity(m);
            for _ in 0..m {
                let p = c.u32()?;
                let l = c.u64()?;
                dpt.push((p, l));
            }
            LogPayload::CheckpointEnd { att, dpt }
        }
        K_DDL => {
            let n = c.u32()? as usize;
            let sql = String::from_utf8(c.take(n)?.to_vec())
                .map_err(|_| DbError::storage("bad utf8 in DDL record"))?;
            LogPayload::Ddl { sql }
        }
        other => return Err(DbError::storage(format!("unknown log record kind {other}"))),
    };
    Ok((txn, prev, payload))
}

/// Read every intact record from `bytes` (the log file content including
/// the magic header). Stops silently at the first torn or corrupt frame —
/// truncation at any byte offset yields the intact record prefix. Returns
/// the records and the byte offset of the end of the valid prefix.
pub fn scan_records(bytes: &[u8]) -> (Vec<LogRecord>, u64) {
    let mut records = Vec::new();
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return (records, MAGIC.len() as u64);
    }
    let mut pos = MAGIC.len();
    loop {
        if pos + FRAME_HEADER > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD {
            break;
        }
        let start = pos + FRAME_HEADER;
        let end = start + len as usize;
        if end > bytes.len() {
            break;
        }
        let body = &bytes[start..end];
        if fnv1a(body) != crc {
            break;
        }
        let Ok((txn, prev_lsn, payload)) = decode_body(body) else {
            break;
        };
        records.push(LogRecord { lsn: pos as Lsn, txn, prev_lsn, payload });
        pos = end;
    }
    (records, pos as u64)
}

/// Read and decode a log file from disk (see [`scan_records`]).
pub fn read_log(path: &Path) -> DbResult<Vec<LogRecord>> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| DbError::storage(format!("read log {}: {e}", path.display())))?;
    Ok(scan_records(&bytes).0)
}

// ---------------------------------------------------------------------------
// The log manager
// ---------------------------------------------------------------------------

struct WalState {
    /// Records appended but not yet written to the file.
    buf: Vec<u8>,
    /// Byte offset the next record will be assigned.
    next_lsn: Lsn,
    /// Everything below this offset has been written *and* fsynced.
    durable_lsn: Lsn,
    /// Everything below this offset has been written (maybe not synced).
    written_lsn: Lsn,
    /// Live transactions and their most recent LSN (the backchain heads —
    /// doubles as the checkpoint's active-transaction table).
    att: HashMap<TxnId, Lsn>,
    /// A leader is currently writing/syncing outside the lock.
    flush_in_progress: bool,
    /// Commit LSNs waiting to be covered by a force (group-batch metering).
    commit_queue: Vec<Lsn>,
}

/// The shared write-ahead log: an append buffer, the active-transaction
/// table, and the group-commit flusher around one real [`File`].
pub struct Wal {
    path: PathBuf,
    policy: CommitPolicy,
    meter: Arc<CostMeter>,
    /// Wait-event sink for M$WAIT_EVENTS (log forces, group-commit parks);
    /// set once by the owning [`crate::Database`] after construction.
    wait: OnceLock<Arc<WaitStats>>,
    state: Mutex<WalState>,
    file: Mutex<File>,
    flushed: Condvar,
}

impl Wal {
    /// Create or truncate the log file at `config.path`.
    pub(crate) fn create(config: &WalConfig, meter: Arc<CostMeter>) -> DbResult<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&config.path)
            .map_err(|e| DbError::storage(format!("open wal {}: {e}", config.path.display())))?;
        file.write_all(MAGIC).map_err(|e| DbError::storage(format!("write wal header: {e}")))?;
        Ok(Wal::with_file(config, meter, file, MAGIC.len() as Lsn))
    }

    /// Reopen an existing log positioned at `end` (the end of the valid
    /// prefix found by recovery; bytes past it are truncated away).
    pub(crate) fn reopen(config: &WalConfig, meter: Arc<CostMeter>, end: Lsn) -> DbResult<Wal> {
        let mut file =
            OpenOptions::new().read(true).write(true).open(&config.path).map_err(|e| {
                DbError::storage(format!("open wal {}: {e}", config.path.display()))
            })?;
        file.set_len(end).map_err(|e| DbError::storage(format!("truncate wal: {e}")))?;
        file.seek(SeekFrom::End(0)).map_err(|e| DbError::storage(format!("seek wal: {e}")))?;
        Ok(Wal::with_file(config, meter, file, end))
    }

    fn with_file(config: &WalConfig, meter: Arc<CostMeter>, file: File, end: Lsn) -> Wal {
        Wal {
            path: config.path.clone(),
            policy: config.policy,
            meter,
            wait: OnceLock::new(),
            state: Mutex::new(WalState {
                buf: Vec::new(),
                next_lsn: end,
                durable_lsn: end,
                written_lsn: end,
                att: HashMap::new(),
                flush_in_progress: false,
                commit_queue: Vec::new(),
            }),
            file: Mutex::new(file),
            flushed: Condvar::new(),
        }
    }

    /// Attach the wait-event sink (idempotent; first caller wins).
    pub(crate) fn set_wait_stats(&self, wait: Arc<WaitStats>) {
        let _ = self.wait.set(wait);
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn policy(&self) -> CommitPolicy {
        self.policy
    }

    /// Seed the active-transaction table (restart undo: loser transactions
    /// must keep their backchain heads so compensation records chain onto
    /// the existing history instead of opening a fresh `Begin`).
    pub(crate) fn seed_att(&self, att: &[(TxnId, Lsn)]) {
        let mut st = self.state.lock();
        for &(t, l) in att {
            st.att.insert(t, l);
        }
    }

    /// Append a batch of records for one transaction, maintaining the
    /// per-transaction backchain. A first record for a live transaction id
    /// is automatically preceded by `Begin` (except [`SYSTEM_TXN`], which
    /// has no bracket). Returns the LSN assigned to each payload in order.
    /// Records are buffered in memory; durability comes from [`Self::commit`],
    /// [`Self::flush`] or a group leader's force.
    pub fn append_batch(&self, txn: TxnId, payloads: &[LogPayload]) -> Vec<Lsn> {
        if payloads.is_empty() {
            return Vec::new();
        }
        let mut st = self.state.lock();
        let mut lsns = Vec::with_capacity(payloads.len());
        let mut bytes = 0u64;
        let mut n = 0u64;
        let needs_begin = txn != SYSTEM_TXN
            && !st.att.contains_key(&txn)
            && !matches!(payloads[0], LogPayload::Begin);
        if needs_begin {
            let (_lsn, b) = Self::push_record(&mut st, txn, &LogPayload::Begin);
            bytes += b;
            n += 1;
        }
        for p in payloads {
            let (lsn, b) = Self::push_record(&mut st, txn, p);
            lsns.push(lsn);
            bytes += b;
            n += 1;
        }
        drop(st);
        self.meter.add(Counter::WalRecords, n);
        self.meter.add(Counter::WalBytes, bytes);
        lsns
    }

    fn push_record(st: &mut WalState, txn: TxnId, payload: &LogPayload) -> (Lsn, u64) {
        let prev = if txn == SYSTEM_TXN {
            NULL_LSN
        } else {
            st.att.get(&txn).copied().unwrap_or(NULL_LSN)
        };
        let body = encode_body(txn, prev, payload);
        let lsn = st.next_lsn;
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        put_u32(&mut frame, body.len() as u32);
        put_u32(&mut frame, fnv1a(&body));
        frame.extend_from_slice(&body);
        let flen = frame.len() as u64;
        st.buf.extend_from_slice(&frame);
        st.next_lsn += flen;
        if txn != SYSTEM_TXN {
            match payload {
                LogPayload::Commit | LogPayload::Abort => {
                    st.att.remove(&txn);
                }
                _ => {
                    st.att.insert(txn, lsn);
                }
            }
        }
        (lsn, flen)
    }

    /// Snapshot of the active-transaction table (txn id, last LSN).
    pub fn active_transactions(&self) -> Vec<(TxnId, Lsn)> {
        let st = self.state.lock();
        let mut att: Vec<_> = st.att.iter().map(|(&t, &l)| (t, l)).collect();
        att.sort_unstable();
        att
    }

    /// Everything at or below this LSN survives a crash.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable_lsn
    }

    /// Make the log durable up to `lsn` according to the commit policy.
    /// This is the commit path: under [`CommitPolicy::GroupCommit`] the
    /// caller either leads a force or parks until one covers it.
    pub fn commit(&self, lsn: Lsn) -> DbResult<()> {
        match self.policy {
            CommitPolicy::NoFsync => self.write_buffered(false),
            CommitPolicy::FsyncPerCommit => {
                let mut st = self.state.lock();
                if st.durable_lsn > lsn {
                    return Ok(());
                }
                self.force_locked(&mut st, true)
            }
            CommitPolicy::GroupCommit => self.group_commit(lsn),
        }
    }

    /// Make everything appended so far durable per the commit policy — the
    /// `COMMIT WORK` path for callers that batched many records without
    /// tracking individual LSNs. Fast no-op when already durable.
    pub fn commit_appended(&self) -> DbResult<()> {
        let lsn = self.state.lock().next_lsn.saturating_sub(1);
        self.commit(lsn)
    }

    fn group_commit(&self, lsn: Lsn) -> DbResult<()> {
        let mut st = self.state.lock();
        if st.durable_lsn > lsn {
            return Ok(());
        }
        st.commit_queue.push(lsn);
        // Total time this thread spends parked as a follower, recorded as
        // one GroupCommitWait event when the commit completes.
        let mut parked: Option<Instant> = None;
        let result = loop {
            if st.durable_lsn > lsn {
                break Ok(());
            }
            if st.flush_in_progress {
                // Park as a follower; the leader's force may cover us.
                parked.get_or_insert_with(Instant::now);
                self.flushed.wait(&mut st);
                continue;
            }
            // Become the leader: take the buffer, force it outside the
            // state lock so more commits can queue behind us.
            st.flush_in_progress = true;
            let bytes = std::mem::take(&mut st.buf);
            let end = st.next_lsn;
            drop(st);
            let forced = Instant::now();
            let io = self.write_and_sync(&bytes, true);
            let force_time = forced.elapsed();
            st = self.state.lock();
            st.flush_in_progress = false;
            if io.is_ok() {
                st.written_lsn = st.written_lsn.max(end);
                st.durable_lsn = st.durable_lsn.max(end);
                let before = st.commit_queue.len();
                st.commit_queue.retain(|&l| l >= end);
                let batch = (before - st.commit_queue.len()) as u64;
                self.meter.bump(Counter::WalFlushes);
                self.meter.add(Counter::GroupCommitBatch, batch);
                // Same condition as the WalFlushes meter so the two
                // reconcile exactly.
                if let Some(w) = self.wait.get() {
                    w.record(WaitEvent::WalFlush, force_time);
                }
                // This request's commit led the force: its trace shows a
                // wal_flush segment, a follower's shows group_commit_wait.
                trace::request::annotate("group_commit_role", "leader");
            }
            self.flushed.notify_all();
            if let Err(e) = io {
                break Err(e);
            }
        };
        drop(st);
        if let Some(started) = parked {
            if let Some(w) = self.wait.get() {
                w.record(WaitEvent::GroupCommitWait, started.elapsed());
            }
            trace::request::annotate("group_commit_role", "follower");
        }
        result
    }

    /// Write + optionally fsync everything buffered, holding the state
    /// lock (per-commit-fsync and explicit-flush path).
    fn force_locked(
        &self,
        st: &mut parking_lot::MutexGuard<'_, WalState>,
        sync: bool,
    ) -> DbResult<()> {
        let bytes = std::mem::take(&mut st.buf);
        let end = st.next_lsn;
        let forced = Instant::now();
        self.write_and_sync(&bytes, sync)?;
        st.written_lsn = st.written_lsn.max(end);
        if sync {
            st.durable_lsn = st.durable_lsn.max(end);
            self.meter.bump(Counter::WalFlushes);
            self.meter.add(Counter::GroupCommitBatch, 1);
            if let Some(w) = self.wait.get() {
                w.record(WaitEvent::WalFlush, forced.elapsed());
            }
        }
        Ok(())
    }

    fn write_and_sync(&self, bytes: &[u8], sync: bool) -> DbResult<()> {
        let mut f = self.file.lock();
        if !bytes.is_empty() {
            f.write_all(bytes).map_err(|e| DbError::storage(format!("wal write: {e}")))?;
        }
        if sync {
            f.sync_data().map_err(|e| DbError::storage(format!("wal fsync: {e}")))?;
        }
        Ok(())
    }

    /// Write buffered records to the file; fsync if `sync`. Used by the
    /// abort path (aborts need not be durable, but their records must not
    /// be lost in memory) and by explicit durability points.
    pub fn write_buffered(&self, sync: bool) -> DbResult<()> {
        let mut st = self.state.lock();
        self.force_locked(&mut st, sync)
    }

    /// Force everything appended so far to disk (an explicit durability
    /// point: end of bulk load, checkpoint, clean shutdown).
    pub fn flush(&self) -> DbResult<()> {
        self.write_buffered(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rdbms-wal-{name}-{}", std::process::id()));
        p
    }

    fn sample_payloads() -> Vec<LogPayload> {
        vec![
            LogPayload::Begin,
            LogPayload::Insert {
                table: "T".into(),
                rid: Rid::new(3, 7),
                row: vec![Value::Int(42), Value::str("hello"), Value::Null],
            },
            LogPayload::Update {
                table: "T".into(),
                rid: Rid::new(3, 7),
                new_rid: Rid::new(4, 0),
                old: vec![Value::Int(42)],
                new: vec![Value::Int(43)],
            },
            LogPayload::Clr {
                undo_next: 99,
                action: UndoAction::Revert {
                    table: "T".into(),
                    rid: Rid::new(4, 0),
                    prev_rid: Rid::new(3, 7),
                    old: vec![Value::Int(42)],
                },
            },
            LogPayload::CheckpointBegin,
            LogPayload::CheckpointEnd { att: vec![(5, 100)], dpt: vec![(9, 64)] },
            LogPayload::Ddl { sql: "CREATE TABLE t (a INTEGER)".into() },
            LogPayload::Commit,
        ]
    }

    #[test]
    fn record_codec_round_trips() {
        for p in sample_payloads() {
            let body = encode_body(7, 123, &p);
            let (txn, prev, decoded) = decode_body(&body).unwrap();
            assert_eq!(txn, 7);
            assert_eq!(prev, 123);
            assert_eq!(decoded, p);
        }
    }

    #[test]
    fn append_write_scan_round_trips_and_truncation_keeps_prefix() {
        let path = tmp("scan");
        let cfg = WalConfig::new(&path).with_policy(CommitPolicy::NoFsync);
        let wal = Wal::create(&cfg, CostMeter::new()).unwrap();
        let ops: Vec<LogPayload> = sample_payloads()
            .into_iter()
            .filter(|p| !matches!(p, LogPayload::Begin | LogPayload::Commit))
            .collect();
        let lsns = wal.append_batch(9, &ops);
        assert_eq!(lsns.len(), ops.len());
        wal.append_batch(9, &[LogPayload::Commit]);
        wal.flush().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let (records, end) = scan_records(&bytes);
        assert_eq!(end as usize, bytes.len());
        // Implicit Begin + ops + Commit.
        assert_eq!(records.len(), ops.len() + 2);
        assert!(matches!(records[0].payload, LogPayload::Begin));
        assert!(matches!(records.last().unwrap().payload, LogPayload::Commit));
        // Backchain: each record's prev_lsn is the previous record's lsn.
        for w in records.windows(2) {
            assert_eq!(w[1].prev_lsn, w[0].lsn);
        }
        // Truncating anywhere keeps an intact prefix, never garbage.
        for cut in 0..bytes.len() {
            let (prefix, _) = scan_records(&bytes[..cut]);
            assert!(prefix.len() <= records.len());
            for (a, b) in prefix.iter().zip(&records) {
                assert_eq!(a.payload, b.payload);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_ends_scan() {
        let path = tmp("corrupt");
        let cfg = WalConfig::new(&path).with_policy(CommitPolicy::NoFsync);
        let wal = Wal::create(&cfg, CostMeter::new()).unwrap();
        wal.append_batch(
            1,
            &[LogPayload::Insert { table: "T".into(), rid: Rid::new(0, 0), row: vec![] }],
        );
        wal.append_batch(1, &[LogPayload::Commit]);
        wal.flush().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff; // flip a bit inside the last record body
        let (records, _) = scan_records(&bytes);
        assert_eq!(records.len(), 2, "begin + insert survive, commit is corrupt");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_policies_meter_flushes() {
        for policy in [CommitPolicy::NoFsync, CommitPolicy::FsyncPerCommit] {
            let path = tmp(policy.as_str());
            let meter = CostMeter::new();
            let wal = Wal::create(&WalConfig::new(&path).with_policy(policy), Arc::clone(&meter))
                .unwrap();
            for txn in 1..=3u64 {
                let lsns = wal.append_batch(txn, &[LogPayload::Commit]);
                wal.commit(lsns[0]).unwrap();
            }
            let flushes = meter.get(Counter::WalFlushes);
            match policy {
                CommitPolicy::NoFsync => assert_eq!(flushes, 0),
                _ => assert_eq!(flushes, 3),
            }
            assert!(meter.get(Counter::WalBytes) > 0);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        use std::thread;
        let path = tmp("group");
        let meter = CostMeter::new();
        let wal = Arc::new(
            Wal::create(
                &WalConfig::new(&path).with_policy(CommitPolicy::GroupCommit),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let commits = 24u64;
        let mut handles = Vec::new();
        for t in 1..=commits {
            let wal = Arc::clone(&wal);
            handles.push(thread::spawn(move || {
                let lsns = wal.append_batch(
                    t,
                    &[
                        LogPayload::Insert {
                            table: "T".into(),
                            rid: Rid::new(t as u32, 0),
                            row: vec![Value::Int(t as i64)],
                        },
                        LogPayload::Commit,
                    ],
                );
                wal.commit(*lsns.last().unwrap()).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let flushes = meter.get(Counter::WalFlushes);
        assert!(flushes >= 1 && flushes <= commits, "flushes={flushes}");
        // Every commit is accounted to exactly one batch.
        assert_eq!(meter.get(Counter::GroupCommitBatch), commits);
        // And everything is durable: the file contains all records.
        let records = read_log(&path).unwrap();
        let commits_in_log =
            records.iter().filter(|r| matches!(r.payload, LogPayload::Commit)).count();
        assert_eq!(commits_in_log as u64, commits);
        std::fs::remove_file(&path).ok();
    }
}
