//! ARIES-style restart: analysis, redo, undo.
//!
//! The pager's "disk" is process memory, so a crash loses every page and
//! the stable store *is* the log (DESIGN.md §10). Restart therefore
//! rebuilds the database by repeating history from the start of the log —
//! the degenerate case of ARIES redo where every page's LSN is below every
//! record's LSN — while the analysis and undo passes are the textbook
//! algorithm:
//!
//! 1. **Analysis** starts from the last complete fuzzy checkpoint (its
//!    logged active-transaction table and dirty-page table), scans forward
//!    to the end of the intact log prefix, and classifies every
//!    transaction as a winner (Commit record present) or a loser.
//! 2. **Redo** replays *every* operation record in log order — winners and
//!    losers alike, including compensation records from partially-logged
//!    rollbacks — through the catalog, so indexes and constraints are
//!    maintained. RIDs in the log are do-time addresses; replay keeps a
//!    `logged rid -> actual rid` remap because physical placement can
//!    differ when history is repeated into a fresh heap.
//! 3. **Undo** rolls back each loser from its last record, skipping
//!    operations already compensated (their CLRs are in the log), writing
//!    a CLR per undone operation and a final Abort — so recovery itself
//!    crash-recovers: a crash during undo never undoes twice.
//!
//! After the three passes the log file is truncated to its intact prefix,
//! the new compensation records are forced, and the returned [`Database`]
//! continues appending to the same log.

use super::{
    scan_records, LogPayload, LogRecord, Lsn, UndoAction, Wal, MAGIC, NULL_LSN, SYSTEM_TXN,
};
use crate::db::{Database, DbConfig};
use crate::error::{DbError, DbResult};
use crate::storage::{PageId, Rid};
use crate::txn::TxnId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// What restart found and did, for operators and tests.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Intact records found before the torn tail.
    pub records_scanned: usize,
    /// Byte length of the intact log prefix (the file is truncated here).
    pub valid_bytes: u64,
    /// LSN of the checkpoint analysis started from, if any completed.
    pub checkpoint_lsn: Option<Lsn>,
    /// Page id -> recovery LSN restored from the checkpoint's dirty-page
    /// table and maintained through analysis (the classical redo bound;
    /// with a volatile page store redo replays the whole prefix anyway).
    pub dirty_pages: Vec<(PageId, Lsn)>,
    /// Transactions whose Commit record is in the prefix.
    pub committed: Vec<TxnId>,
    /// Transactions rolled back by the undo pass.
    pub losers: Vec<TxnId>,
    /// Operation records replayed by the redo pass.
    pub redo_applied: usize,
    /// Operations undone (CLRs written) by the undo pass.
    pub undo_applied: usize,
}

/// Restart a database from its write-ahead log. `config.wal` must be set;
/// the log file is read, the intact prefix replayed, losers rolled back,
/// and the returned database keeps logging to the same file.
pub fn recover(config: DbConfig) -> DbResult<(Database, RecoveryReport)> {
    let wal_cfg = config
        .wal
        .clone()
        .ok_or_else(|| DbError::storage("recover() needs DbConfig.wal to locate the log"))?;
    let bytes = std::fs::read(&wal_cfg.path)
        .map_err(|e| DbError::storage(format!("read wal {}: {e}", wal_cfg.path.display())))?;
    let (records, valid_bytes) = scan_records(&bytes);

    // ---- Analysis ------------------------------------------------------
    // Find the last *complete* checkpoint.
    let mut checkpoint = None;
    for (i, r) in records.iter().enumerate() {
        if matches!(r.payload, LogPayload::CheckpointEnd { .. }) {
            checkpoint = Some(i);
        }
    }
    let mut att: HashMap<TxnId, Lsn> = HashMap::new();
    let mut dpt: BTreeMap<PageId, Lsn> = BTreeMap::new();
    let scan_from = match checkpoint {
        Some(i) => {
            if let LogPayload::CheckpointEnd { att: catt, dpt: cdpt } = &records[i].payload {
                att.extend(catt.iter().copied());
                dpt.extend(cdpt.iter().copied());
            }
            i + 1
        }
        None => 0,
    };
    let mut committed = BTreeSet::new();
    for r in &records {
        if r.txn != SYSTEM_TXN && matches!(r.payload, LogPayload::Commit) {
            committed.insert(r.txn);
        }
    }
    for r in &records[scan_from..] {
        if r.txn == SYSTEM_TXN {
            continue;
        }
        match &r.payload {
            LogPayload::Commit | LogPayload::Abort => {
                att.remove(&r.txn);
            }
            LogPayload::CheckpointBegin | LogPayload::CheckpointEnd { .. } => {}
            LogPayload::Insert { rid, .. } | LogPayload::Delete { rid, .. } => {
                att.insert(r.txn, r.lsn);
                dpt.entry(rid.page).or_insert(r.lsn);
            }
            LogPayload::Update { rid, new_rid, .. } => {
                att.insert(r.txn, r.lsn);
                dpt.entry(rid.page).or_insert(r.lsn);
                dpt.entry(new_rid.page).or_insert(r.lsn);
            }
            _ => {
                att.insert(r.txn, r.lsn);
            }
        }
    }
    let mut losers: Vec<TxnId> = att.keys().copied().collect();
    losers.sort_unstable();

    // ---- Redo (repeat history into a fresh store) ----------------------
    let mut db = Database::fresh_for_recovery(&config);
    let mut remap: HashMap<(String, Rid), Rid> = HashMap::new();
    let mut redo_applied = 0usize;
    for r in &records {
        if apply_forward(&db, r, &mut remap)? {
            redo_applied += 1;
        }
    }

    // ---- Undo (roll back losers, logging CLRs) -------------------------
    // A crash inside the 8-byte header leaves no usable magic; recreate the
    // file instead of appending after a mangled header.
    let wal = if valid_bytes <= MAGIC.len() as u64 {
        Arc::new(Wal::create(&wal_cfg, Arc::clone(db.meter()))?)
    } else {
        Arc::new(Wal::reopen(&wal_cfg, Arc::clone(db.meter()), valid_bytes)?)
    };
    let seed: Vec<(TxnId, Lsn)> = att.iter().map(|(&t, &l)| (t, l)).collect();
    wal.seed_att(&seed);
    let mut undo_applied = 0usize;
    for &txn in &losers {
        // This transaction's operation records, in log order, and how many
        // of them were already compensated before the crash. Rollback is
        // strict LIFO, so `clrs` CLRs always cover the *last* `clrs` ops.
        let ops: Vec<&LogRecord> = records
            .iter()
            .filter(|r| {
                r.txn == txn
                    && matches!(
                        r.payload,
                        LogPayload::Insert { .. }
                            | LogPayload::Delete { .. }
                            | LogPayload::Update { .. }
                    )
            })
            .collect();
        let clrs = records
            .iter()
            .filter(|r| r.txn == txn && matches!(r.payload, LogPayload::Clr { .. }))
            .count();
        let to_undo = &ops[..ops.len().saturating_sub(clrs)];
        let mut batch = Vec::with_capacity(to_undo.len() + 1);
        for (i, r) in to_undo.iter().enumerate().rev() {
            let undo_next = if i == 0 { NULL_LSN } else { to_undo[i - 1].lsn };
            let action = undo_one(&db, r, &mut remap)?;
            batch.push(LogPayload::Clr { undo_next, action });
            undo_applied += 1;
        }
        batch.push(LogPayload::Abort);
        wal.append_batch(txn, &batch);
    }
    wal.flush()?;

    let max_txn = records.iter().map(|r| r.txn).max().unwrap_or(0);
    db.finish_recovery(Arc::clone(&wal), max_txn + 1);

    let report = RecoveryReport {
        records_scanned: records.len(),
        valid_bytes,
        checkpoint_lsn: checkpoint.map(|i| records[i].lsn),
        dirty_pages: dpt.into_iter().collect(),
        committed: committed.into_iter().collect(),
        losers,
        redo_applied,
        undo_applied,
    };
    Ok((db, report))
}

/// Replay one record forward. Returns whether an operation was applied.
fn apply_forward(
    db: &Database,
    r: &LogRecord,
    remap: &mut HashMap<(String, Rid), Rid>,
) -> DbResult<bool> {
    let catalog = db.catalog();
    match &r.payload {
        LogPayload::Ddl { sql } => {
            db.execute(sql)?;
            Ok(true)
        }
        LogPayload::Insert { table, rid, row } => {
            let t = catalog.table(table)?;
            let actual = catalog.insert_row(&t, row)?;
            db.pager().stamp_lsn(actual.page, r.lsn);
            remap.insert((table.clone(), *rid), actual);
            Ok(true)
        }
        LogPayload::Delete { table, rid, .. } => {
            let t = catalog.table(table)?;
            let actual = remap.remove(&(table.clone(), *rid)).unwrap_or(*rid);
            catalog.delete_row(&t, actual)?;
            db.pager().stamp_lsn(actual.page, r.lsn);
            Ok(true)
        }
        LogPayload::Update { table, rid, new_rid, new, .. } => {
            let t = catalog.table(table)?;
            let cur = remap.remove(&(table.clone(), *rid)).unwrap_or(*rid);
            let actual = catalog.update_row(&t, cur, new)?;
            db.pager().stamp_lsn(actual.page, r.lsn);
            remap.insert((table.clone(), *new_rid), actual);
            Ok(true)
        }
        LogPayload::Clr { action, .. } => {
            match action {
                UndoAction::Delete { table, rid } => {
                    let t = catalog.table(table)?;
                    let actual = remap.remove(&(table.clone(), *rid)).unwrap_or(*rid);
                    catalog.delete_row(&t, actual)?;
                    db.pager().stamp_lsn(actual.page, r.lsn);
                }
                UndoAction::Insert { table, rid, row } => {
                    let t = catalog.table(table)?;
                    let actual = catalog.insert_row(&t, row)?;
                    db.pager().stamp_lsn(actual.page, r.lsn);
                    remap.insert((table.clone(), *rid), actual);
                }
                UndoAction::Revert { table, rid, prev_rid, old } => {
                    let t = catalog.table(table)?;
                    let cur = remap.remove(&(table.clone(), *rid)).unwrap_or(*rid);
                    let actual = catalog.update_row(&t, cur, old)?;
                    db.pager().stamp_lsn(actual.page, r.lsn);
                    remap.insert((table.clone(), *prev_rid), actual);
                }
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Undo one operation record against the recovered store, returning the
/// compensation action that describes what was done.
fn undo_one(
    db: &Database,
    r: &LogRecord,
    remap: &mut HashMap<(String, Rid), Rid>,
) -> DbResult<UndoAction> {
    let catalog = db.catalog();
    match &r.payload {
        LogPayload::Insert { table, rid, .. } => {
            let t = catalog.table(table)?;
            let actual = remap.remove(&(table.clone(), *rid)).unwrap_or(*rid);
            catalog.delete_row(&t, actual)?;
            Ok(UndoAction::Delete { table: table.clone(), rid: *rid })
        }
        LogPayload::Delete { table, rid, row } => {
            let t = catalog.table(table)?;
            let actual = catalog.insert_row(&t, row)?;
            remap.insert((table.clone(), *rid), actual);
            Ok(UndoAction::Insert { table: table.clone(), rid: *rid, row: row.clone() })
        }
        LogPayload::Update { table, rid, new_rid, old, .. } => {
            let t = catalog.table(table)?;
            let cur = remap.remove(&(table.clone(), *new_rid)).unwrap_or(*new_rid);
            let actual = catalog.update_row(&t, cur, old)?;
            remap.insert((table.clone(), *rid), actual);
            Ok(UndoAction::Revert {
                table: table.clone(),
                rid: *new_rid,
                prev_rid: *rid,
                old: old.clone(),
            })
        }
        other => Err(DbError::storage(format!("cannot undo log record {other:?}"))),
    }
}
