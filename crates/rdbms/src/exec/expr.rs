//! Bound expressions and the expression evaluator.
//!
//! The planner resolves AST expressions ([`crate::sql::ast::Expr`]) into
//! [`BExpr`] trees whose column references are positional, so evaluation
//! never does name lookups. Subqueries carry their own physical plan and
//! are executed through the evaluation context, with correlated references
//! resolved against a stack of enclosing rows.

use crate::clock::{CostMeter, Counter};
use crate::error::{DbError, DbResult};
use crate::schema::Row;
use crate::sql::ast::{AggFunc, BinOp, IntervalUnit};
use crate::types::{Decimal, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;

/// Scalar functions supported by the engine. `VendorContains` is the
/// "special, non-standard SQL string function" of the paper's Section 3.4.4
/// footnote — Native SQL reports may use it; Open SQL cannot emit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// SUBSTR(s, start_1based, len)
    Substr,
    Upper,
    Lower,
    /// VENDOR_CONTAINS(s, sub) -> bool; the vendor's fast substring
    /// primitive (non-portable).
    VendorContains,
    /// LENGTH(s)
    Length,
}

impl ScalarFunc {
    pub fn from_name(name: &str) -> Option<(ScalarFunc, usize)> {
        match name {
            "SUBSTR" | "SUBSTRING" => Some((ScalarFunc::Substr, 3)),
            "UPPER" => Some((ScalarFunc::Upper, 1)),
            "LOWER" => Some((ScalarFunc::Lower, 1)),
            "VENDOR_CONTAINS" => Some((ScalarFunc::VendorContains, 2)),
            "LENGTH" => Some((ScalarFunc::Length, 1)),
            _ => None,
        }
    }
}

/// How a subquery expression is consumed.
#[derive(Debug, Clone)]
pub enum SubqueryKind {
    /// Single value (first column of the single result row); NULL on empty.
    Scalar,
    /// EXISTS / NOT EXISTS.
    Exists { negated: bool },
    /// `lhs IN (subquery)` / `NOT IN`, with full SQL NULL semantics.
    In { lhs: Box<BExpr>, negated: bool },
}

/// A subquery bound into an expression.
pub struct BoundSubquery {
    pub plan: crate::exec::plan::Plan,
    pub kind: SubqueryKind,
    /// Whether the subquery references columns of any enclosing query.
    /// Uncorrelated subqueries are evaluated once per statement execution
    /// and cached; correlated ones re-execute per outer row (the naive
    /// strategy the paper attributes to the back-end RDBMS, Section 3.4.4).
    pub correlated: bool,
    /// Stable id for per-execution caching.
    pub cache_id: usize,
}

impl std::fmt::Debug for BoundSubquery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundSubquery")
            .field("kind", &self.kind)
            .field("correlated", &self.correlated)
            .finish_non_exhaustive()
    }
}

/// A bound (positional) expression.
#[derive(Debug, Clone)]
pub enum BExpr {
    /// Column of the current row.
    Column(usize),
    /// Column of an enclosing row; depth 1 = immediate enclosing query.
    Outer {
        depth: usize,
        index: usize,
    },
    Literal(Value),
    Param(usize),
    Neg(Box<BExpr>),
    Not(Box<BExpr>),
    Binary {
        left: Box<BExpr>,
        op: BinOp,
        right: Box<BExpr>,
    },
    Between {
        expr: Box<BExpr>,
        low: Box<BExpr>,
        high: Box<BExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BExpr>,
        list: Vec<BExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BExpr>,
        pattern: Box<BExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<BExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(BExpr, BExpr)>,
        else_expr: Option<Box<BExpr>>,
    },
    Extract {
        unit: IntervalUnit,
        expr: Box<BExpr>,
    },
    IntervalAdd {
        expr: Box<BExpr>,
        amount: i32,
        unit: IntervalUnit,
    },
    Func {
        func: ScalarFunc,
        args: Vec<BExpr>,
    },
    Subquery(Arc<BoundSubquery>),
}

/// An aggregate computed by the Aggregate operator.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` for COUNT(*).
    pub arg: Option<BExpr>,
    pub distinct: bool,
}

/// Cached result of an uncorrelated subquery within one execution.
pub enum SubqueryResult {
    Scalar(Value),
    Exists(bool),
    InSet { set: HashSet<Value>, has_null: bool },
}

/// Per-execution state shared by all operators of one statement execution.
pub struct ExecCtx<'a> {
    pub params: &'a [Value],
    pub meter: &'a CostMeter,
    /// Stack of enclosing rows, outermost first.
    pub outer: Vec<Row>,
    /// Cache for uncorrelated subquery results, keyed by `cache_id`.
    pub subquery_cache: Arc<Mutex<HashMap<usize, Arc<SubqueryResult>>>>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(params: &'a [Value], meter: &'a CostMeter) -> Self {
        ExecCtx {
            params,
            meter,
            outer: Vec::new(),
            subquery_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Child context with `row` pushed as the innermost enclosing row.
    pub fn push_outer(&self, row: &[Value]) -> ExecCtx<'a> {
        let mut outer = self.outer.clone();
        outer.push(row.to_vec());
        ExecCtx {
            params: self.params,
            meter: self.meter,
            outer,
            subquery_cache: Arc::clone(&self.subquery_cache),
        }
    }

    fn outer_value(&self, depth: usize, index: usize) -> DbResult<Value> {
        let len = self.outer.len();
        if depth == 0 || depth > len {
            return Err(DbError::execution(format!(
                "outer reference depth {depth} exceeds context ({len} frames)"
            )));
        }
        Ok(self.outer[len - depth][index].clone())
    }
}

impl BExpr {
    pub fn boxed(self) -> Box<BExpr> {
        Box::new(self)
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value], ctx: &ExecCtx) -> DbResult<Value> {
        match self {
            BExpr::Column(i) => Ok(row[*i].clone()),
            BExpr::Outer { depth, index } => ctx.outer_value(*depth, *index),
            BExpr::Literal(v) => Ok(v.clone()),
            BExpr::Param(i) => ctx.params.get(*i).cloned().ok_or(DbError::UnboundParameter(*i)),
            BExpr::Neg(e) => match e.eval(row, ctx)? {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Decimal(d) => Ok(Value::Decimal(d.neg())),
                other => Err(DbError::execution(format!("cannot negate {}", other.type_name()))),
            },
            BExpr::Not(e) => match e.eval(row, ctx)? {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(DbError::execution(format!("NOT applied to {}", other.type_name()))),
            },
            BExpr::Binary { left, op, right } => eval_binary(left, *op, right, row, ctx),
            BExpr::Between { expr, low, high, negated } => {
                let v = expr.eval(row, ctx)?;
                let lo = low.eval(row, ctx)?;
                let hi = high.eval(row, ctx)?;
                let ge = v.sql_cmp(&lo).map(|o| o.is_ge());
                let le = v.sql_cmp(&hi).map(|o| o.is_le());
                let r = and3(ge, le);
                Ok(bool3_to_value(maybe_negate(r, *negated)))
            }
            BExpr::InList { expr, list, negated } => {
                let v = expr.eval(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, ctx)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BExpr::Like { expr, pattern, negated } => {
                let v = expr.eval(row, ctx)?;
                let p = pattern.eval(row, ctx)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let matched = like_match(v.as_str()?.trim_end(), p.as_str()?);
                Ok(Value::Bool(matched != *negated))
            }
            BExpr::IsNull { expr, negated } => {
                let v = expr.eval(row, ctx)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BExpr::Case { branches, else_expr } => {
                for (cond, result) in branches {
                    if cond.eval_bool(row, ctx)? == Some(true) {
                        return result.eval(row, ctx);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row, ctx),
                    None => Ok(Value::Null),
                }
            }
            BExpr::Extract { unit, expr } => {
                let v = expr.eval(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let d = v.as_date()?;
                Ok(Value::Int(match unit {
                    IntervalUnit::Year => d.year() as i64,
                    IntervalUnit::Month => d.month() as i64,
                    IntervalUnit::Day => d.day() as i64,
                }))
            }
            BExpr::IntervalAdd { expr, amount, unit } => {
                let v = expr.eval(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let d = v.as_date()?;
                Ok(Value::Date(match unit {
                    IntervalUnit::Day => d.add_days(*amount),
                    IntervalUnit::Month => d.add_months(*amount),
                    IntervalUnit::Year => d.add_years(*amount),
                }))
            }
            BExpr::Func { func, args } => eval_func(*func, args, row, ctx),
            BExpr::Subquery(sq) => eval_subquery(sq, row, ctx),
        }
    }

    /// Evaluate as a three-valued boolean: `None` is SQL UNKNOWN.
    pub fn eval_bool(&self, row: &[Value], ctx: &ExecCtx) -> DbResult<Option<bool>> {
        match self.eval(row, ctx)? {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(b)),
            other => Err(DbError::execution(format!(
                "predicate evaluated to {}, expected BOOLEAN",
                other.type_name()
            ))),
        }
    }

    /// Visit all nodes (not crossing into subquery plans).
    pub fn visit(&self, f: &mut impl FnMut(&BExpr)) {
        f(self);
        match self {
            BExpr::Column(_) | BExpr::Outer { .. } | BExpr::Literal(_) | BExpr::Param(_) => {}
            BExpr::Neg(e) | BExpr::Not(e) => e.visit(f),
            BExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BExpr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            BExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BExpr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            BExpr::IsNull { expr, .. } => expr.visit(f),
            BExpr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            BExpr::Extract { expr, .. } | BExpr::IntervalAdd { expr, .. } => expr.visit(f),
            BExpr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            BExpr::Subquery(sq) => {
                if let SubqueryKind::In { lhs, .. } = &sq.kind {
                    lhs.visit(f);
                }
            }
        }
    }
}

fn eval_binary(
    left: &BExpr,
    op: BinOp,
    right: &BExpr,
    row: &[Value],
    ctx: &ExecCtx,
) -> DbResult<Value> {
    match op {
        BinOp::And => {
            let l = left.eval_bool(row, ctx)?;
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = right.eval_bool(row, ctx)?;
            Ok(bool3_to_value(and3(l, r)))
        }
        BinOp::Or => {
            let l = left.eval_bool(row, ctx)?;
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = right.eval_bool(row, ctx)?;
            Ok(bool3_to_value(or3(l, r)))
        }
        _ => {
            let l = left.eval(row, ctx)?;
            let r = right.eval(row, ctx)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if op.is_comparison() {
                let ord = l.sql_cmp(&r).ok_or_else(|| {
                    DbError::execution(format!(
                        "cannot compare {} with {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                let b = match op {
                    BinOp::Eq => ord.is_eq(),
                    BinOp::NotEq => ord.is_ne(),
                    BinOp::Lt => ord.is_lt(),
                    BinOp::LtEq => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::GtEq => ord.is_ge(),
                    _ => unreachable!(),
                };
                return Ok(Value::Bool(b));
            }
            arith(l, op, r)
        }
    }
}

/// Numeric arithmetic with the engine's type rules: Int op Int stays Int
/// (except division, which always produces a Decimal), everything else is
/// exact Decimal.
pub fn arith(l: Value, op: BinOp, r: Value) -> DbResult<Value> {
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        match op {
            BinOp::Add => return Ok(Value::Int(a + b)),
            BinOp::Sub => return Ok(Value::Int(a - b)),
            BinOp::Mul => return Ok(Value::Int(a * b)),
            BinOp::Div => {
                return Decimal::from_int(*a).div(Decimal::from_int(*b)).map(Value::Decimal)
            }
            _ => {}
        }
    }
    let a = l.as_decimal()?;
    let b = r.as_decimal()?;
    let d = match op {
        BinOp::Add => a.add(b),
        BinOp::Sub => a.sub(b),
        BinOp::Mul => a.mul(b),
        BinOp::Div => a.div(b)?,
        other => return Err(DbError::execution(format!("{other} is not arithmetic"))),
    };
    Ok(Value::Decimal(d))
}

fn eval_func(func: ScalarFunc, args: &[BExpr], row: &[Value], ctx: &ExecCtx) -> DbResult<Value> {
    let vals: Vec<Value> = args.iter().map(|a| a.eval(row, ctx)).collect::<DbResult<_>>()?;
    if vals.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match func {
        ScalarFunc::Substr => {
            let s = vals[0].as_str()?;
            let start = vals[1].as_int()?.max(1) as usize - 1;
            let len = vals[2].as_int()?.max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let end = (start + len).min(chars.len());
            let start = start.min(chars.len());
            Ok(Value::Str(chars[start..end].iter().collect()))
        }
        ScalarFunc::Upper => Ok(Value::Str(vals[0].as_str()?.to_uppercase())),
        ScalarFunc::Lower => Ok(Value::Str(vals[0].as_str()?.to_lowercase())),
        ScalarFunc::VendorContains => {
            let s = vals[0].as_str()?;
            let sub = vals[1].as_str()?.trim_end();
            Ok(Value::Bool(s.contains(sub)))
        }
        ScalarFunc::Length => Ok(Value::Int(vals[0].as_str()?.trim_end().len() as i64)),
    }
}

fn eval_subquery(sq: &Arc<BoundSubquery>, row: &[Value], ctx: &ExecCtx) -> DbResult<Value> {
    // Uncorrelated: compute once per execution and cache.
    let cached: Option<Arc<SubqueryResult>> =
        if !sq.correlated { ctx.subquery_cache.lock().get(&sq.cache_id).cloned() } else { None };
    let result: Arc<SubqueryResult> = match cached {
        Some(r) => r,
        None => {
            let child_ctx = ctx.push_outer(row);
            let rows = sq.plan.execute(&child_ctx)?;
            ctx.meter.add(Counter::DbTuples, rows.len() as u64);
            let computed = match &sq.kind {
                SubqueryKind::Scalar => {
                    if rows.len() > 1 {
                        return Err(DbError::execution(
                            "scalar subquery returned more than one row",
                        ));
                    }
                    let v = rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null);
                    SubqueryResult::Scalar(v)
                }
                SubqueryKind::Exists { .. } => SubqueryResult::Exists(!rows.is_empty()),
                SubqueryKind::In { .. } => {
                    let mut set = HashSet::with_capacity(rows.len());
                    let mut has_null = false;
                    for r in rows {
                        if r[0].is_null() {
                            has_null = true;
                        } else {
                            set.insert(r[0].clone());
                        }
                    }
                    SubqueryResult::InSet { set, has_null }
                }
            };
            let computed = Arc::new(computed);
            if !sq.correlated {
                ctx.subquery_cache.lock().insert(sq.cache_id, Arc::clone(&computed));
            }
            computed
        }
    };
    match (&sq.kind, result.as_ref()) {
        (SubqueryKind::Scalar, SubqueryResult::Scalar(v)) => Ok(v.clone()),
        (SubqueryKind::Exists { negated }, SubqueryResult::Exists(found)) => {
            Ok(Value::Bool(found != negated))
        }
        (SubqueryKind::In { lhs, negated }, SubqueryResult::InSet { set, has_null }) => {
            let v = lhs.eval(row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            if set.contains(&v) {
                Ok(Value::Bool(!negated))
            } else if *has_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        _ => Err(DbError::execution("subquery kind/result mismatch")),
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn maybe_negate(v: Option<bool>, negate: bool) -> Option<bool> {
    if negate {
        v.map(|b| !b)
    } else {
        v
    }
}

fn bool3_to_value(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

/// SQL LIKE pattern matching: `%` matches any sequence, `_` any single char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let p_rest = &p[1..];
                if p_rest.is_empty() {
                    return true;
                }
                for i in 0..=s.len() {
                    if rec(&s[i..], p_rest) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => !s.is_empty() && s[0] == *c && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.trim_end().chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CostMeter;

    fn ctx<'a>(params: &'a [Value], meter: &'a CostMeter) -> ExecCtx<'a> {
        ExecCtx::new(params, meter)
    }

    #[test]
    fn like_matching() {
        assert!(like_match("green metallic paint", "%green%"));
        assert!(!like_match("red paint", "%green%"));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("promo burnished", "PROMO%".to_lowercase().as_str()));
        assert!(like_match("xyz", "x%z"));
        assert!(like_match("xz", "x%z"));
    }

    #[test]
    fn arithmetic_type_rules() {
        assert_eq!(arith(Value::Int(2), BinOp::Add, Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(arith(Value::Int(2), BinOp::Mul, Value::Int(3)).unwrap(), Value::Int(6));
        let d = arith(Value::Int(1), BinOp::Div, Value::Int(4)).unwrap();
        assert_eq!(d.as_decimal().unwrap().to_f64(), 0.25);
        let d = arith(Value::Decimal(Decimal::parse("1.5").unwrap()), BinOp::Add, Value::Int(1))
            .unwrap();
        assert_eq!(d.to_string(), "2.5");
    }

    #[test]
    fn three_valued_logic() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        // NULL AND FALSE = FALSE
        let e = BExpr::Binary {
            left: BExpr::Literal(Value::Null).boxed(),
            op: BinOp::And,
            right: BExpr::Literal(Value::Bool(false)).boxed(),
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::Bool(false));
        // NULL OR TRUE = TRUE
        let e = BExpr::Binary {
            left: BExpr::Literal(Value::Null).boxed(),
            op: BinOp::Or,
            right: BExpr::Literal(Value::Bool(true)).boxed(),
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::Bool(true));
        // NULL = 1 -> NULL
        let e = BExpr::Binary {
            left: BExpr::Literal(Value::Null).boxed(),
            op: BinOp::Eq,
            right: BExpr::Literal(Value::Int(1)).boxed(),
        };
        assert!(e.eval(&[], &c).unwrap().is_null());
        assert_eq!(e.eval_bool(&[], &c).unwrap(), None);
    }

    #[test]
    fn in_list_null_semantics() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        // 3 IN (1, 2, NULL) -> NULL (not FALSE)
        let e = BExpr::InList {
            expr: BExpr::Literal(Value::Int(3)).boxed(),
            list: vec![
                BExpr::Literal(Value::Int(1)),
                BExpr::Literal(Value::Int(2)),
                BExpr::Literal(Value::Null),
            ],
            negated: false,
        };
        assert!(e.eval(&[], &c).unwrap().is_null());
        // 2 IN (1, 2, NULL) -> TRUE
        let e = BExpr::InList {
            expr: BExpr::Literal(Value::Int(2)).boxed(),
            list: vec![
                BExpr::Literal(Value::Int(1)),
                BExpr::Literal(Value::Int(2)),
                BExpr::Literal(Value::Null),
            ],
            negated: false,
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::Bool(true));
    }

    #[test]
    fn params_bind_and_missing_param_errors() {
        let meter = CostMeter::default();
        let params = [Value::Int(42)];
        let c = ctx(&params, &meter);
        assert_eq!(BExpr::Param(0).eval(&[], &c).unwrap(), Value::Int(42));
        assert!(matches!(BExpr::Param(1).eval(&[], &c), Err(DbError::UnboundParameter(1))));
    }

    #[test]
    fn case_expression() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        let e = BExpr::Case {
            branches: vec![(
                BExpr::Binary {
                    left: BExpr::Column(0).boxed(),
                    op: BinOp::Eq,
                    right: BExpr::Literal(Value::str("BRAZIL")).boxed(),
                },
                BExpr::Column(1),
            )],
            else_expr: Some(BExpr::Literal(Value::Int(0)).boxed()),
        };
        let row1 = vec![Value::str("BRAZIL"), Value::Int(7)];
        let row2 = vec![Value::str("PERU"), Value::Int(7)];
        assert_eq!(e.eval(&row1, &c).unwrap(), Value::Int(7));
        assert_eq!(e.eval(&row2, &c).unwrap(), Value::Int(0));
    }

    #[test]
    fn scalar_funcs() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        let sub = BExpr::Func {
            func: ScalarFunc::Substr,
            args: vec![
                BExpr::Literal(Value::str("PROMO ANODIZED")),
                BExpr::Literal(Value::Int(1)),
                BExpr::Literal(Value::Int(5)),
            ],
        };
        assert_eq!(sub.eval(&[], &c).unwrap(), Value::str("PROMO"));
        let vc = BExpr::Func {
            func: ScalarFunc::VendorContains,
            args: vec![
                BExpr::Literal(Value::str("forest green metallic")),
                BExpr::Literal(Value::str("green")),
            ],
        };
        assert_eq!(vc.eval(&[], &c).unwrap(), Value::Bool(true));
    }

    #[test]
    fn extract_and_interval() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        let e = BExpr::Extract {
            unit: IntervalUnit::Year,
            expr: BExpr::Literal(Value::date(1995, 3, 15)).boxed(),
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::Int(1995));
        let e = BExpr::IntervalAdd {
            expr: BExpr::Literal(Value::date(1998, 12, 1)).boxed(),
            amount: -90,
            unit: IntervalUnit::Day,
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::date(1998, 9, 2));
    }

    #[test]
    fn outer_references() {
        let meter = CostMeter::default();
        let base = ctx(&[], &meter);
        let outer_row = vec![Value::Int(99)];
        let child = base.push_outer(&outer_row);
        let e = BExpr::Outer { depth: 1, index: 0 };
        assert_eq!(e.eval(&[], &child).unwrap(), Value::Int(99));
        assert!(e.eval(&[], &base).is_err(), "no frame at depth 1");
        // Two levels deep.
        let inner_row = vec![Value::Int(5)];
        let grand = child.push_outer(&inner_row);
        assert_eq!(BExpr::Outer { depth: 2, index: 0 }.eval(&[], &grand).unwrap(), Value::Int(99));
        assert_eq!(BExpr::Outer { depth: 1, index: 0 }.eval(&[], &grand).unwrap(), Value::Int(5));
    }

    #[test]
    fn between_negated() {
        let meter = CostMeter::default();
        let c = ctx(&[], &meter);
        let e = BExpr::Between {
            expr: BExpr::Literal(Value::Int(5)).boxed(),
            low: BExpr::Literal(Value::Int(1)).boxed(),
            high: BExpr::Literal(Value::Int(10)).boxed(),
            negated: true,
        };
        assert_eq!(e.eval(&[], &c).unwrap(), Value::Bool(false));
    }
}
