//! Execution layer: bound expressions and physical operators.

pub mod expr;
pub mod plan;

pub use expr::{AggSpec, BExpr, BoundSubquery, ExecCtx, ScalarFunc, SubqueryKind};
pub use plan::{IndexKeyBound, Plan};
