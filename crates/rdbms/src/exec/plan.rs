//! Physical query plans and their (materializing) executor.
//!
//! Operators execute bottom-up and materialize intermediate results. All
//! physical work — page I/O through the pager, per-tuple CPU — is metered
//! into the engine's [`crate::clock::CostMeter`], which is what the paper-reproduction
//! experiments read out.

use crate::catalog::{Index, Table};
use crate::clock::Counter;
use crate::error::{DbError, DbResult};
use crate::exec::expr::{AggSpec, BExpr, ExecCtx};
use crate::lock::KeyRange;
use crate::schema::Row;
use crate::sql::ast::{AggFunc, BinOp, JoinKind};
use crate::storage::codec::encode_key;
use crate::storage::AccessPattern;
use crate::types::{Decimal, Value};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// A bound for one side of an index range, as expressions evaluated at
/// execution time (they may contain parameters or outer references, which
/// is how parameterized cursors and index nested-loop joins work).
#[derive(Debug, Clone)]
pub struct IndexKeyBound {
    pub values: Vec<BExpr>,
    pub inclusive: bool,
}

/// A physical plan node.
pub enum Plan {
    /// Full table scan with optional pushed-down filter.
    SeqScan {
        table: Arc<Table>,
        filter: Option<BExpr>,
    },
    /// B+-tree range scan + heap fetch, with optional residual filter.
    IndexScan {
        table: Arc<Table>,
        index: Arc<Index>,
        lower: Option<IndexKeyBound>,
        upper: Option<IndexKeyBound>,
        residual: Option<BExpr>,
    },
    /// Literal rows (SELECT without FROM, INSERT source).
    Values {
        rows: Vec<Vec<BExpr>>,
    },
    /// Virtual `M$` monitoring view: rows come from the view's provider
    /// closure at *execute* time, so every read — including through a
    /// cached plan — sees the live accumulators. Takes no locks.
    MonitorScan {
        view: Arc<crate::monitor::MonitorView>,
    },
    Filter {
        input: Box<Plan>,
        pred: BExpr,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<BExpr>,
    },
    /// Nested-loop join; the right side may be *correlated* (contain
    /// `Outer{depth:1}` references to the current left row) — that is how
    /// index nested-loop joins are expressed.
    NLJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        on: Option<BExpr>,
        right_correlated: bool,
        right_width: usize,
    },
    /// Hash join: builds on `left`, probes with `right`. Output columns are
    /// left ++ right. For LeftOuter the left side is preserved.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<BExpr>,
        right_keys: Vec<BExpr>,
        residual: Option<BExpr>,
        kind: JoinKind,
        right_width: usize,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<(BExpr, bool)>,
    },
    /// Sort-based grouped aggregation (pipelined sort+group, as the paper
    /// describes the back-end RDBMS doing in Section 4.2). Output row is
    /// group keys followed by aggregate results.
    Aggregate {
        input: Box<Plan>,
        groups: Vec<BExpr>,
        aggs: Vec<AggSpec>,
    },
    Distinct {
        input: Box<Plan>,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
}

/// How a plan reads one base table — the transaction layer picks lock
/// granularity from this (and workload models use it to predict lock
/// footprints).
#[derive(Debug, Clone)]
pub enum TableRead {
    /// Sequential scan: needs a whole-table shared lock.
    Scan,
    /// Index scan on the primary key whose bounds are literal (known
    /// before execution): a shared key-range lock with phantom protection
    /// suffices.
    PkRange(KeyRange),
    /// Index-driven access whose keys are only known at run time (probe
    /// sides of index nested-loop joins, secondary indexes, parameterized
    /// bounds): a shared lock on existing rows.
    Probe,
}

/// Encoded key bytes for an index bound whose values are all literal:
/// `None` = not literal (known only at run time), `Some(None)` = no bound,
/// `Some(Some(bytes))` = literal bound.
fn literal_key(bound: &Option<IndexKeyBound>) -> Option<Option<Vec<u8>>> {
    match bound {
        None => Some(None),
        Some(b) => {
            let vals: Option<Vec<Value>> = b
                .values
                .iter()
                .map(|e| match e {
                    BExpr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            vals.map(|v| Some(encode_key(&v)))
        }
    }
}

/// One base-table access discovered by [`Plan::table_accesses`].
#[derive(Debug, Clone)]
pub struct TableAccess {
    pub table: String,
    pub read: TableRead,
}

impl Plan {
    /// Base tables this plan reads and how, recursing through children.
    /// Subqueries planned inside expressions are *not* visited — callers
    /// cover those tables conservatively via `referenced_tables`.
    pub fn table_accesses(&self) -> Vec<TableAccess> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses(&self, out: &mut Vec<TableAccess>) {
        match self {
            Plan::SeqScan { table, .. } => {
                out.push(TableAccess { table: table.name.clone(), read: TableRead::Scan });
            }
            Plan::IndexScan { table, index, lower, upper, .. } => {
                let on_pk = !table.primary_key.is_empty() && index.columns == table.primary_key;
                let read = match (on_pk, literal_key(lower), literal_key(upper)) {
                    // An unbounded scan on the PK is an ordered full read:
                    // treat it like a probe (existing rows) rather than a
                    // whole-key-space phantom claim.
                    (true, Some(None), Some(None)) => TableRead::Probe,
                    (true, Some(lo), Some(hi)) => {
                        TableRead::PkRange(KeyRange::span(lo.as_deref(), hi.as_deref()))
                    }
                    _ => TableRead::Probe,
                };
                out.push(TableAccess { table: table.name.clone(), read });
            }
            Plan::Values { .. } | Plan::MonitorScan { .. } => {}
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. } => input.collect_accesses(out),
            Plan::NLJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
                left.collect_accesses(out);
                right.collect_accesses(out);
            }
        }
    }

    /// One-line-per-node plan description (EXPLAIN output), used by tests
    /// to assert optimizer choices and by the experiment harness.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::SeqScan { table, filter } => {
                out.push_str(&format!(
                    "{pad}SeqScan {} {}\n",
                    table.name,
                    if filter.is_some() { "(filtered)" } else { "" }
                ));
            }
            Plan::IndexScan { table, index, .. } => {
                out.push_str(&format!("{pad}IndexScan {} via {}\n", table.name, index.name));
            }
            Plan::Values { rows } => {
                out.push_str(&format!("{pad}Values ({} rows)\n", rows.len()));
            }
            Plan::MonitorScan { view } => {
                out.push_str(&format!("{pad}MonitorScan {}\n", view.name()));
            }
            Plan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.describe_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                out.push_str(&format!("{pad}Project ({} cols)\n", exprs.len()));
                input.describe_into(out, depth + 1);
            }
            Plan::NLJoin { left, right, kind, .. } => {
                out.push_str(&format!("{pad}NLJoin {kind:?}\n"));
                left.describe_into(out, depth + 1);
                right.describe_into(out, depth + 1);
            }
            Plan::HashJoin { left, right, kind, left_keys, .. } => {
                out.push_str(&format!("{pad}HashJoin {kind:?} ({} keys)\n", left_keys.len()));
                left.describe_into(out, depth + 1);
                right.describe_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort ({} keys)\n", keys.len()));
                input.describe_into(out, depth + 1);
            }
            Plan::Aggregate { input, groups, aggs } => {
                out.push_str(&format!(
                    "{pad}Aggregate ({} groups, {} aggs)\n",
                    groups.len(),
                    aggs.len()
                ));
                input.describe_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.describe_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.describe_into(out, depth + 1);
            }
        }
    }

    /// Execute to completion.
    ///
    /// When a [`trace::TraceSession`] is active on the calling thread,
    /// every plan node opens a span named like its EXPLAIN line and records
    /// its output cardinality, so a query execution yields an
    /// `EXPLAIN ANALYZE`-style tree of per-node work deltas. The same spans
    /// open wall-clock frames in the active *request* trace (`M$SPANS`)
    /// when one is installed — either listener is enough to pay for the
    /// label formatting. Without both, the instrumentation is two
    /// thread-local checks.
    pub fn execute(&self, ctx: &ExecCtx) -> DbResult<Vec<Row>> {
        if !trace::enabled() && !trace::request::active() {
            return self.execute_node(ctx);
        }
        let span = trace::span(&self.node_label());
        let rows = self.execute_node(ctx)?;
        span.attr("rows_out", rows.len());
        Ok(rows)
    }

    /// Span name for this node: operator plus its salient argument,
    /// mirroring the first line [`Plan::describe`] would print for it.
    fn node_label(&self) -> String {
        match self {
            Plan::SeqScan { table, filter } => format!(
                "SeqScan {}{}",
                table.name,
                if filter.is_some() { " (filtered)" } else { "" }
            ),
            Plan::IndexScan { table, index, .. } => {
                format!("IndexScan {} via {}", table.name, index.name)
            }
            Plan::Values { rows } => format!("Values ({} rows)", rows.len()),
            Plan::MonitorScan { view } => format!("MonitorScan {}", view.name()),
            Plan::Filter { .. } => "Filter".to_string(),
            Plan::Project { exprs, .. } => format!("Project ({} cols)", exprs.len()),
            Plan::NLJoin { kind, .. } => format!("NLJoin {kind:?}"),
            Plan::HashJoin { kind, left_keys, .. } => {
                format!("HashJoin {kind:?} ({} keys)", left_keys.len())
            }
            Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            Plan::Aggregate { groups, aggs, .. } => {
                format!("Aggregate ({} groups, {} aggs)", groups.len(), aggs.len())
            }
            Plan::Distinct { .. } => "Distinct".to_string(),
            Plan::Limit { n, .. } => format!("Limit {n}"),
        }
    }

    fn execute_node(&self, ctx: &ExecCtx) -> DbResult<Vec<Row>> {
        match self {
            Plan::SeqScan { table, filter } => {
                let mut out = Vec::new();
                for item in table.heap.scan() {
                    let (_, row) = item?;
                    ctx.meter.bump(Counter::DbTuples);
                    if let Some(f) = filter {
                        if f.eval_bool(&row, ctx)? != Some(true) {
                            continue;
                        }
                    }
                    out.push(row);
                }
                Ok(out)
            }
            Plan::IndexScan { table, index, lower, upper, residual } => {
                let lo = eval_bound(lower, ctx)?;
                let hi = eval_bound(upper, ctx)?;
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    // A NULL in a bound means the predicate is UNKNOWN for
                    // every row: empty result.
                    _ => return Ok(Vec::new()),
                };
                let entries = {
                    let tree = index.tree.lock();
                    tree.range_scan(as_bound(&lo), as_bound(&hi))?
                };
                let mut out = Vec::with_capacity(entries.len());
                for (_, rid) in entries {
                    // Unclustered index: each qualifying tuple is a random
                    // heap fetch — the crux of the paper's Table 6.
                    let row = table
                        .heap
                        .get(rid, AccessPattern::Random)?
                        .ok_or_else(|| DbError::storage("dangling index entry"))?;
                    ctx.meter.bump(Counter::DbTuples);
                    if let Some(f) = residual {
                        if f.eval_bool(&row, ctx)? != Some(true) {
                            continue;
                        }
                    }
                    out.push(row);
                }
                Ok(out)
            }
            Plan::Values { rows } => {
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let row: Row =
                        exprs.iter().map(|e| e.eval(&[], ctx)).collect::<DbResult<_>>()?;
                    out.push(row);
                }
                Ok(out)
            }
            Plan::MonitorScan { view } => {
                let rows = view.rows();
                ctx.meter.add(Counter::DbTuples, rows.len() as u64);
                Ok(rows)
            }
            Plan::Filter { input, pred } => {
                let rows = input.execute(ctx)?;
                let mut out = Vec::new();
                for row in rows {
                    if pred.eval_bool(&row, ctx)? == Some(true) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Project { input, exprs } => {
                let rows = input.execute(ctx)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let projected: Row =
                        exprs.iter().map(|e| e.eval(&row, ctx)).collect::<DbResult<_>>()?;
                    out.push(projected);
                }
                Ok(out)
            }
            Plan::NLJoin { left, right, kind, on, right_correlated, right_width } => {
                let left_rows = left.execute(ctx)?;
                // Uncorrelated inner: materialize once.
                let materialized_right: Option<Vec<Row>> =
                    if *right_correlated { None } else { Some(right.execute(ctx)?) };
                let mut out = Vec::new();
                for lrow in &left_rows {
                    let right_rows: Vec<Row> = match &materialized_right {
                        Some(r) => r.clone(),
                        None => {
                            let child_ctx = ctx.push_outer(lrow);
                            right.execute(&child_ctx)?
                        }
                    };
                    let mut matched = false;
                    for rrow in &right_rows {
                        ctx.meter.bump(Counter::DbTuples);
                        let mut combined = lrow.clone();
                        combined.extend(rrow.iter().cloned());
                        let ok = match on {
                            Some(p) => p.eval_bool(&combined, ctx)? == Some(true),
                            None => true,
                        };
                        if ok {
                            matched = true;
                            out.push(combined);
                        }
                    }
                    if *kind == JoinKind::LeftOuter && !matched {
                        let mut combined = lrow.clone();
                        combined.extend(std::iter::repeat_n(Value::Null, *right_width));
                        out.push(combined);
                    }
                }
                Ok(out)
            }
            Plan::HashJoin { left, right, left_keys, right_keys, residual, kind, right_width } => {
                let build_rows = left.execute(ctx)?;
                let probe_rows = right.execute(ctx)?;
                let mut table: HashMap<Vec<Value>, Vec<usize>> =
                    HashMap::with_capacity(build_rows.len());
                for (i, row) in build_rows.iter().enumerate() {
                    ctx.meter.bump(Counter::DbTuples);
                    let key: Row =
                        left_keys.iter().map(|e| e.eval(row, ctx)).collect::<DbResult<_>>()?;
                    if key.iter().any(Value::is_null) {
                        continue; // null keys never join
                    }
                    table.entry(key).or_default().push(i);
                }
                let mut matched_build = vec![false; build_rows.len()];
                let mut out = Vec::new();
                for prow in &probe_rows {
                    ctx.meter.bump(Counter::DbTuples);
                    let key: Row =
                        right_keys.iter().map(|e| e.eval(prow, ctx)).collect::<DbResult<_>>()?;
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(idxs) = table.get(&key) {
                        for &i in idxs {
                            let mut combined = build_rows[i].clone();
                            combined.extend(prow.iter().cloned());
                            let ok = match residual {
                                Some(p) => p.eval_bool(&combined, ctx)? == Some(true),
                                None => true,
                            };
                            if ok {
                                matched_build[i] = true;
                                out.push(combined);
                            }
                        }
                    }
                }
                if *kind == JoinKind::LeftOuter {
                    for (i, row) in build_rows.iter().enumerate() {
                        if !matched_build[i] {
                            let mut combined = row.clone();
                            combined.extend(std::iter::repeat_n(Value::Null, *right_width));
                            out.push(combined);
                        }
                    }
                }
                Ok(out)
            }
            Plan::Sort { input, keys } => {
                let rows = input.execute(ctx)?;
                ctx.meter.add(Counter::DbTuples, rows.len() as u64);
                sort_rows(rows, keys, ctx)
            }
            Plan::Aggregate { input, groups, aggs } => {
                let rows = input.execute(ctx)?;
                ctx.meter.add(Counter::DbTuples, rows.len() as u64);
                aggregate(rows, groups, aggs, ctx)
            }
            Plan::Distinct { input } => {
                let rows = input.execute(ctx)?;
                let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
                let mut out = Vec::new();
                for row in rows {
                    ctx.meter.bump(Counter::DbTuples);
                    if seen.insert(row.clone()) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Plan::Limit { input, n } => {
                let mut rows = input.execute(ctx)?;
                rows.truncate(*n as usize);
                Ok(rows)
            }
        }
    }
}

fn eval_bound(bound: &Option<IndexKeyBound>, ctx: &ExecCtx) -> DbResult<Option<EvaluatedBound>> {
    match bound {
        None => Ok(Some(EvaluatedBound::Unbounded)),
        Some(b) => {
            let mut vals = Vec::with_capacity(b.values.len());
            for e in &b.values {
                let v = e.eval(&[], ctx)?;
                if v.is_null() {
                    return Ok(None);
                }
                vals.push(v);
            }
            Ok(Some(EvaluatedBound::Key { bytes: encode_key(&vals), inclusive: b.inclusive }))
        }
    }
}

enum EvaluatedBound {
    Unbounded,
    Key { bytes: Vec<u8>, inclusive: bool },
}

fn as_bound(b: &EvaluatedBound) -> Bound<&[u8]> {
    match b {
        EvaluatedBound::Unbounded => Bound::Unbounded,
        EvaluatedBound::Key { bytes, inclusive: true } => Bound::Included(bytes.as_slice()),
        EvaluatedBound::Key { bytes, inclusive: false } => Bound::Excluded(bytes.as_slice()),
    }
}

/// Stable multi-key sort.
pub fn sort_rows(rows: Vec<Row>, keys: &[(BExpr, bool)], ctx: &ExecCtx) -> DbResult<Vec<Row>> {
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let key: Vec<Value> =
            keys.iter().map(|(e, _)| e.eval(&row, ctx)).collect::<DbResult<_>>()?;
        decorated.push((key, row));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = a[i].total_cmp(&b[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(decorated.into_iter().map(|(_, r)| r).collect())
}

/// One aggregate's accumulator.
struct Acc {
    count: u64,
    sum: Option<Value>,
    min: Option<Value>,
    max: Option<Value>,
    distinct: Option<HashSet<Value>>,
}

impl Acc {
    fn new(distinct: bool) -> Self {
        Acc {
            count: 0,
            sum: None,
            min: None,
            max: None,
            distinct: if distinct { Some(HashSet::new()) } else { None },
        }
    }

    fn update(&mut self, v: Value, func: AggFunc) -> DbResult<()> {
        if v.is_null() {
            return Ok(());
        }
        if let Some(set) = &mut self.distinct {
            if !set.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum = Some(match self.sum.take() {
                    None => v,
                    Some(s) => crate::exec::expr::arith(s, BinOp::Add, v)?,
                });
            }
            AggFunc::Min => {
                let better = match &self.min {
                    None => true,
                    Some(m) => v.total_cmp(m).is_lt(),
                };
                if better {
                    self.min = Some(v);
                }
            }
            AggFunc::Max => {
                let better = match &self.max {
                    None => true,
                    Some(m) => v.total_cmp(m).is_gt(),
                };
                if better {
                    self.max = Some(v);
                }
            }
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc) -> DbResult<Value> {
        Ok(match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => self.sum.clone().unwrap_or(Value::Null),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => match &self.sum {
                None => Value::Null,
                Some(s) => {
                    let sum = s.as_decimal()?;
                    Value::Decimal(sum.div(Decimal::from_int(self.count as i64))?)
                }
            },
        })
    }
}

/// Sort-based grouping: sort input rows by group keys, then stream groups.
fn aggregate(
    rows: Vec<Row>,
    groups: &[BExpr],
    aggs: &[AggSpec],
    ctx: &ExecCtx,
) -> DbResult<Vec<Row>> {
    // Scalar aggregate (no GROUP BY): one group, present even for empty input.
    if groups.is_empty() {
        let mut accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.distinct)).collect();
        for row in &rows {
            accumulate(&mut accs, aggs, row, ctx)?;
        }
        let out: Row = accs
            .iter()
            .zip(aggs)
            .map(|(acc, spec)| acc.finish(spec.func))
            .collect::<DbResult<_>>()?;
        return Ok(vec![out]);
    }
    // Decorate with group keys and sort (pipelined sort+group).
    let mut decorated: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows {
        let key: Vec<Value> = groups.iter().map(|e| e.eval(&row, ctx)).collect::<DbResult<_>>()?;
        decorated.push((key, row));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for i in 0..a.len() {
            let ord = a[i].total_cmp(&b[i]);
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Vec::new();
    let mut current_key: Option<Vec<Value>> = None;
    let mut accs: Vec<Acc> = Vec::new();
    for (key, row) in decorated {
        let same = match &current_key {
            Some(k) => {
                k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a.total_cmp(b).is_eq())
            }
            None => false,
        };
        if !same {
            if let Some(k) = current_key.take() {
                out.push(finish_group(k, &accs, aggs)?);
            }
            current_key = Some(key);
            accs = aggs.iter().map(|a| Acc::new(a.distinct)).collect();
        }
        accumulate(&mut accs, aggs, &row, ctx)?;
    }
    if let Some(k) = current_key.take() {
        out.push(finish_group(k, &accs, aggs)?);
    }
    Ok(out)
}

fn accumulate(accs: &mut [Acc], aggs: &[AggSpec], row: &Row, ctx: &ExecCtx) -> DbResult<()> {
    for (acc, spec) in accs.iter_mut().zip(aggs) {
        match &spec.arg {
            None => {
                // COUNT(*): counts every row.
                acc.count += 1;
            }
            Some(e) => {
                let v = e.eval(row, ctx)?;
                acc.update(v, spec.func)?;
            }
        }
    }
    Ok(())
}

fn finish_group(key: Vec<Value>, accs: &[Acc], aggs: &[AggSpec]) -> DbResult<Row> {
    let mut row = key;
    for (acc, spec) in accs.iter().zip(aggs) {
        row.push(acc.finish(spec.func)?);
    }
    Ok(row)
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe().trim_end())
    }
}
