//! Error types for the rdbms engine.

use std::fmt;

/// All errors produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A name (table, column, index, view) could not be resolved, or a
    /// duplicate definition was attempted.
    Catalog(String),
    /// A query or statement is well-formed but semantically invalid
    /// (type mismatch, wrong arity, aggregate misuse, ...).
    Analysis(String),
    /// A runtime execution failure (division by zero, bad cast, ...).
    Execution(String),
    /// A storage-layer failure (page overflow, bad RID, ...).
    Storage(String),
    /// A constraint violation (unique key, not-null).
    Constraint(String),
    /// The statement referenced a parameter that was not bound.
    UnboundParameter(usize),
    /// A transaction was chosen as a deadlock (or lock-wait-timeout)
    /// victim and must be rolled back.
    Deadlock(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Analysis(m) => write!(f, "analysis error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::UnboundParameter(i) => write!(f, "parameter ${i} is not bound"),
            DbError::Deadlock(m) => write!(f, "deadlock: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;

/// Helper constructors so call sites stay terse.
impl DbError {
    pub fn parse(m: impl Into<String>) -> Self {
        DbError::Parse(m.into())
    }
    pub fn catalog(m: impl Into<String>) -> Self {
        DbError::Catalog(m.into())
    }
    pub fn analysis(m: impl Into<String>) -> Self {
        DbError::Analysis(m.into())
    }
    pub fn execution(m: impl Into<String>) -> Self {
        DbError::Execution(m.into())
    }
    pub fn storage(m: impl Into<String>) -> Self {
        DbError::Storage(m.into())
    }
    pub fn constraint(m: impl Into<String>) -> Self {
        DbError::Constraint(m.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        assert_eq!(DbError::parse("unexpected token").to_string(), "parse error: unexpected token");
        assert_eq!(
            DbError::catalog("no such table T").to_string(),
            "catalog error: no such table T"
        );
        assert_eq!(DbError::UnboundParameter(2).to_string(), "parameter $2 is not bound");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::parse("x"), DbError::Parse("x".into()));
        assert_ne!(DbError::parse("x"), DbError::analysis("x"));
    }
}
