//! Index layer: disk-resident B+-trees over order-preserving encoded keys.

pub mod btree;

pub use btree::{increment_bytes, BTree};
