//! A disk-resident B+-tree over order-preserving byte keys.
//!
//! Nodes live in pager pages, so index traversals are metered like any
//! other page access (random reads on a cold buffer pool) — this is what
//! makes the paper's Table 6 experiment (index vs. scan plan choice)
//! reproducible from first principles.
//!
//! Design notes:
//! * Keys are opaque byte strings produced by [`crate::storage::codec::encode_key`];
//!   byte order == value order.
//! * Non-unique indexes get a RID suffix appended to every stored key, so
//!   stored keys are always distinct and duplicate handling is uniform.
//! * Deletion is lazy: entries are removed but nodes are never merged.
//!   (Matching mid-90s engines; the workloads here are read-mostly.)
//! * Nodes are (de)serialized to an in-memory form for manipulation; the
//!   page is the unit of I/O accounting.

use crate::clock::Counter;
use crate::error::{DbError, DbResult};
use crate::storage::page::{PageId, Rid, PAGE_SIZE};
use crate::storage::pager::{AccessPattern, Pager};
use bytes::{Buf, BufMut};
use std::ops::Bound;
use std::sync::Arc;

const NO_PAGE: PageId = PageId::MAX;
/// Serialized node size budget; split when exceeded.
const NODE_BUDGET: usize = PAGE_SIZE - 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        next: PageId,
        /// Sorted (stored_key, rid) entries.
        entries: Vec<(Vec<u8>, Rid)>,
    },
    Internal {
        /// children.len() == separators.len() + 1; child[i] holds keys
        /// < separators[i]; child.last() holds keys >= last separator.
        separators: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                1 + 2 + 4 + entries.iter().map(|(k, _)| 2 + k.len() + 6).sum::<usize>()
            }
            Node::Internal { separators, children } => {
                1 + 2 + 4 * children.len() + separators.iter().map(|s| 2 + s.len()).sum::<usize>()
            }
        }
    }

    fn encode(&self, out: &mut [u8; PAGE_SIZE]) {
        let mut buf: Vec<u8> = Vec::with_capacity(self.serialized_size());
        match self {
            Node::Leaf { next, entries } => {
                buf.put_u8(1);
                buf.put_u16_le(entries.len() as u16);
                buf.put_u32_le(*next);
                for (k, rid) in entries {
                    buf.put_u16_le(k.len() as u16);
                    buf.put_slice(k);
                    buf.put_u32_le(rid.page);
                    buf.put_u16_le(rid.slot);
                }
            }
            Node::Internal { separators, children } => {
                buf.put_u8(0);
                buf.put_u16_le(separators.len() as u16);
                buf.put_u32_le(children[0]);
                for (s, child) in separators.iter().zip(&children[1..]) {
                    buf.put_u16_le(s.len() as u16);
                    buf.put_slice(s);
                    buf.put_u32_le(*child);
                }
            }
        }
        assert!(buf.len() <= PAGE_SIZE, "node exceeds page: {} bytes", buf.len());
        out[..buf.len()].copy_from_slice(&buf);
    }

    fn decode(data: &[u8; PAGE_SIZE]) -> DbResult<Node> {
        let mut buf = &data[..];
        let kind = buf.get_u8();
        let n = buf.get_u16_le() as usize;
        match kind {
            1 => {
                let next = buf.get_u32_le();
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = buf.get_u16_le() as usize;
                    let k = buf[..klen].to_vec();
                    buf.advance(klen);
                    let page = buf.get_u32_le();
                    let slot = buf.get_u16_le();
                    entries.push((k, Rid::new(page, slot)));
                }
                Ok(Node::Leaf { next, entries })
            }
            0 => {
                let first = buf.get_u32_le();
                let mut separators = Vec::with_capacity(n);
                let mut children = Vec::with_capacity(n + 1);
                children.push(first);
                for _ in 0..n {
                    let klen = buf.get_u16_le() as usize;
                    separators.push(buf[..klen].to_vec());
                    buf.advance(klen);
                    children.push(buf.get_u32_le());
                }
                Ok(Node::Internal { separators, children })
            }
            other => Err(DbError::storage(format!("bad btree node kind {other}"))),
        }
    }
}

/// A B+-tree index.
pub struct BTree {
    pager: Arc<Pager>,
    root: PageId,
    unique: bool,
    entry_count: u64,
    entry_bytes: u64,
    node_pages: u64,
    height: u32,
}

/// Result of inserting into a subtree: possibly a split.
enum InsertResult {
    Ok,
    Split { sep: Vec<u8>, right: PageId },
}

impl BTree {
    /// Create an empty tree.
    pub fn new(pager: Arc<Pager>, unique: bool) -> DbResult<Self> {
        let root = pager.allocate();
        let node = Node::Leaf { next: NO_PAGE, entries: Vec::new() };
        Self::store(&pager, root, &node)?;
        Ok(BTree { pager, root, unique, entry_count: 0, entry_bytes: 0, node_pages: 1, height: 1 })
    }

    fn store(pager: &Pager, pid: PageId, node: &Node) -> DbResult<()> {
        pager.write(pid, AccessPattern::Random, |page| node.encode(page.raw_mut()))
    }

    fn load(&self, pid: PageId) -> DbResult<Node> {
        self.pager.meter().bump(Counter::IndexNodeReads);
        self.pager.read(pid, AccessPattern::Random, |page| Node::decode(page.raw()))?
    }

    /// Stored key: user key, plus RID suffix when non-unique.
    fn stored_key(&self, key: &[u8], rid: Rid) -> Vec<u8> {
        if self.unique {
            key.to_vec()
        } else {
            let mut k = Vec::with_capacity(key.len() + 6);
            k.extend_from_slice(key);
            k.put_u32(rid.page);
            k.put_u16(rid.slot);
            k
        }
    }

    /// Insert an entry. For a unique index, an existing identical key is a
    /// constraint violation.
    pub fn insert(&mut self, key: &[u8], rid: Rid) -> DbResult<()> {
        let skey = self.stored_key(key, rid);
        if self.unique && !self.search_exact(key)?.is_empty() {
            return Err(DbError::constraint(format!(
                "duplicate key in unique index ({} bytes)",
                key.len()
            )));
        }
        let result = self.insert_rec(self.root, &skey, rid)?;
        if let InsertResult::Split { sep, right } = result {
            let new_root = self.pager.allocate();
            let node = Node::Internal { separators: vec![sep], children: vec![self.root, right] };
            Self::store(&self.pager, new_root, &node)?;
            self.root = new_root;
            self.node_pages += 1;
            self.height += 1;
        }
        self.entry_count += 1;
        self.entry_bytes += (skey.len() + 6) as u64;
        Ok(())
    }

    fn insert_rec(&mut self, pid: PageId, skey: &[u8], rid: Rid) -> DbResult<InsertResult> {
        match self.load(pid)? {
            Node::Leaf { next, mut entries } => {
                let pos = entries.partition_point(|(k, _)| k.as_slice() < skey);
                entries.insert(pos, (skey.to_vec(), rid));
                let node = Node::Leaf { next, entries };
                if node.serialized_size() <= NODE_BUDGET {
                    Self::store(&self.pager, pid, &node)?;
                    return Ok(InsertResult::Ok);
                }
                // Split leaf at the midpoint.
                let Node::Leaf { next, entries } = node else { unreachable!() };
                let mid = entries.len() / 2;
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let right_pid = self.pager.allocate();
                self.node_pages += 1;
                Self::store(&self.pager, right_pid, &Node::Leaf { next, entries: right_entries })?;
                Self::store(
                    &self.pager,
                    pid,
                    &Node::Leaf { next: right_pid, entries: left_entries },
                )?;
                Ok(InsertResult::Split { sep, right: right_pid })
            }
            Node::Internal { mut separators, mut children } => {
                let idx = separators.partition_point(|s| s.as_slice() <= skey);
                let child = children[idx];
                match self.insert_rec(child, skey, rid)? {
                    InsertResult::Ok => Ok(InsertResult::Ok),
                    InsertResult::Split { sep, right } => {
                        separators.insert(idx, sep);
                        children.insert(idx + 1, right);
                        let node = Node::Internal { separators, children };
                        if node.serialized_size() <= NODE_BUDGET {
                            Self::store(&self.pager, pid, &node)?;
                            return Ok(InsertResult::Ok);
                        }
                        let Node::Internal { separators, children } = node else { unreachable!() };
                        let mid = separators.len() / 2;
                        let up_sep = separators[mid].clone();
                        let right_seps = separators[mid + 1..].to_vec();
                        let right_children = children[mid + 1..].to_vec();
                        let left_seps = separators[..mid].to_vec();
                        let left_children = children[..mid + 1].to_vec();
                        let right_pid = self.pager.allocate();
                        self.node_pages += 1;
                        Self::store(
                            &self.pager,
                            right_pid,
                            &Node::Internal { separators: right_seps, children: right_children },
                        )?;
                        Self::store(
                            &self.pager,
                            pid,
                            &Node::Internal { separators: left_seps, children: left_children },
                        )?;
                        Ok(InsertResult::Split { sep: up_sep, right: right_pid })
                    }
                }
            }
        }
    }

    /// Remove an entry. Returns true if found.
    pub fn delete(&mut self, key: &[u8], rid: Rid) -> DbResult<bool> {
        let skey = self.stored_key(key, rid);
        let mut pid = self.root;
        loop {
            let node = self.load(pid)?;
            match node {
                Node::Internal { separators, children } => {
                    let idx = separators.partition_point(|s| s.as_slice() <= skey.as_slice());
                    pid = children[idx];
                }
                Node::Leaf { next, mut entries } => {
                    // For unique trees the same user key may map to any rid.
                    let pos = if self.unique {
                        entries.iter().position(|(k, r)| k == &skey && *r == rid)
                    } else {
                        entries.iter().position(|(k, _)| k == &skey)
                    };
                    match pos {
                        Some(i) => {
                            let (k, _) = entries.remove(i);
                            self.entry_count -= 1;
                            self.entry_bytes -= (k.len() + 6) as u64;
                            Self::store(&self.pager, pid, &Node::Leaf { next, entries })?;
                            return Ok(true);
                        }
                        None => return Ok(false),
                    }
                }
            }
        }
    }

    /// Exact-match lookup on the user key; returns all matching RIDs.
    pub fn search_exact(&self, key: &[u8]) -> DbResult<Vec<Rid>> {
        let upper = increment_bytes(key);
        let upper_bound = match &upper {
            Some(u) => Bound::Excluded(u.as_slice()),
            None => Bound::Unbounded,
        };
        // For a unique tree, the stored key == user key, so an exact range
        // [key, key] suffices; for non-unique the RID suffix makes matches
        // fall in [key, increment(key)).
        if self.unique {
            self.range_scan(Bound::Included(key), Bound::Included(key))
        } else {
            self.range_scan(Bound::Included(key), upper_bound)
        }
        .map(|v| v.into_iter().map(|(_, rid)| rid).collect())
    }

    /// Range scan over *user* keys. Bounds are byte-encoded keys; for
    /// non-unique trees inclusive upper bounds are widened past the RID
    /// suffix automatically. Returns (stored_key, rid) pairs in key order.
    pub fn range_scan(
        &self,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> DbResult<Vec<(Vec<u8>, Rid)>> {
        // Normalize the upper bound to an exclusive byte bound.
        let upper_owned: Option<Vec<u8>>;
        let upper_excl: Option<&[u8]> = match upper {
            Bound::Unbounded => None,
            Bound::Excluded(u) => {
                upper_owned = Some(u.to_vec());
                upper_owned.as_deref()
            }
            Bound::Included(u) => {
                // Include all stored keys whose user part == u: widen by
                // byte-increment (works for both unique and suffixed keys).
                match increment_bytes(u) {
                    Some(inc) => {
                        upper_owned = Some(inc);
                        upper_owned.as_deref()
                    }
                    None => None,
                }
            }
        };
        let lower_key: &[u8] = match lower {
            Bound::Unbounded => &[],
            Bound::Included(l) | Bound::Excluded(l) => l,
        };
        // Descend to the leaf that may contain lower_key.
        let mut pid = self.root;
        while let Node::Internal { separators, children } = self.load(pid)? {
            let idx = separators.partition_point(|s| s.as_slice() <= lower_key);
            pid = children[idx];
        }
        let mut out = Vec::new();
        loop {
            let Node::Leaf { next, entries } = self.load(pid)? else {
                return Err(DbError::storage("expected leaf"));
            };
            for (k, rid) in entries {
                let below_lower = match lower {
                    Bound::Unbounded => false,
                    Bound::Included(l) => k.as_slice() < l,
                    // Excluded lower on user keys: skip everything with
                    // that exact user-key prefix.
                    Bound::Excluded(l) => {
                        k.as_slice() < l || (!self.unique && k.starts_with(l)) || k.as_slice() == l
                    }
                };
                if below_lower {
                    continue;
                }
                if let Some(u) = upper_excl {
                    if k.as_slice() >= u {
                        return Ok(out);
                    }
                }
                out.push((k, rid));
            }
            if next == NO_PAGE {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// Full scan in key order.
    pub fn scan_all(&self) -> DbResult<Vec<(Vec<u8>, Rid)>> {
        self.range_scan(Bound::Unbounded, Bound::Unbounded)
    }

    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Live entry bytes (Table 2 index-size accounting).
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }

    pub fn node_pages(&self) -> u64 {
        self.node_pages
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }
}

/// Smallest byte string strictly greater than every string having `key` as
/// prefix; `None` when no such string exists (all 0xFF).
pub fn increment_bytes(key: &[u8]) -> Option<Vec<u8>> {
    let mut out = key.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CostMeter;
    use crate::storage::codec::encode_key;
    use crate::storage::pager::PagerConfig;
    use crate::types::Value;

    fn tree(unique: bool) -> BTree {
        let pager = Pager::new(PagerConfig { pool_pages: 256 }, CostMeter::new());
        BTree::new(pager, unique).unwrap()
    }

    fn key(i: i64) -> Vec<u8> {
        encode_key(&[Value::Int(i)])
    }

    #[test]
    fn insert_and_exact_search() {
        let mut t = tree(false);
        for i in 0..100 {
            t.insert(&key(i), Rid::new(i as u32, 0)).unwrap();
        }
        assert_eq!(t.search_exact(&key(42)).unwrap(), vec![Rid::new(42, 0)]);
        assert_eq!(t.search_exact(&key(1000)).unwrap(), vec![]);
        assert_eq!(t.entry_count(), 100);
    }

    #[test]
    fn duplicates_in_non_unique_index() {
        let mut t = tree(false);
        for s in 0..5u16 {
            t.insert(&key(7), Rid::new(1, s)).unwrap();
        }
        let mut rids = t.search_exact(&key(7)).unwrap();
        rids.sort();
        assert_eq!(rids, (0..5).map(|s| Rid::new(1, s)).collect::<Vec<_>>());
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut t = tree(true);
        t.insert(&key(1), Rid::new(0, 0)).unwrap();
        assert!(matches!(t.insert(&key(1), Rid::new(0, 1)), Err(DbError::Constraint(_))));
    }

    #[test]
    fn large_tree_splits_and_stays_sorted() {
        let mut t = tree(false);
        // Insert shuffled-ish order (odd then even) to exercise splits.
        let n: i64 = 20_000;
        for i in (1..n).step_by(2).chain((0..n).step_by(2)) {
            t.insert(&key(i), Rid::new(i as u32, 0)).unwrap();
        }
        assert!(t.height() >= 2, "20k entries must split, height={}", t.height());
        assert!(t.node_pages() > 10);
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), n as usize);
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0, "keys out of order");
        }
        // Every key findable.
        for i in (0..n).step_by(997) {
            assert_eq!(t.search_exact(&key(i)).unwrap(), vec![Rid::new(i as u32, 0)]);
        }
    }

    #[test]
    fn range_scans() {
        let mut t = tree(false);
        for i in 0..1000 {
            t.insert(&key(i), Rid::new(i as u32, 0)).unwrap();
        }
        let lo = key(100);
        let hi = key(200);
        let got = t.range_scan(Bound::Included(&lo), Bound::Excluded(&hi)).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0].1, Rid::new(100, 0));
        assert_eq!(got.last().unwrap().1, Rid::new(199, 0));

        let got = t.range_scan(Bound::Included(&lo), Bound::Included(&hi)).unwrap();
        assert_eq!(got.len(), 101);

        let got = t.range_scan(Bound::Excluded(&lo), Bound::Included(&hi)).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0].1, Rid::new(101, 0));

        let got = t.range_scan(Bound::Unbounded, Bound::Excluded(&lo)).unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn delete_entries() {
        let mut t = tree(false);
        for i in 0..100 {
            t.insert(&key(i), Rid::new(i as u32, 0)).unwrap();
        }
        assert!(t.delete(&key(50), Rid::new(50, 0)).unwrap());
        assert!(!t.delete(&key(50), Rid::new(50, 0)).unwrap(), "double delete");
        assert_eq!(t.search_exact(&key(50)).unwrap(), vec![]);
        assert_eq!(t.entry_count(), 99);
        assert_eq!(t.scan_all().unwrap().len(), 99);
    }

    #[test]
    fn composite_key_prefix_scan() {
        // Index on (a, b); scan all entries with a == 5.
        let mut t = tree(false);
        for a in 0..10i64 {
            for b in 0..10i64 {
                let k = encode_key(&[Value::Int(a), Value::Int(b)]);
                t.insert(&k, Rid::new(a as u32, b as u16)).unwrap();
            }
        }
        let prefix = encode_key(&[Value::Int(5)]);
        let upper = increment_bytes(&prefix).unwrap();
        let got = t.range_scan(Bound::Included(&prefix), Bound::Excluded(&upper)).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|(_, r)| r.page == 5));
    }

    #[test]
    fn string_keys() {
        let mut t = tree(false);
        let words = ["apple", "banana", "cherry", "date", "elderberry"];
        for (i, w) in words.iter().enumerate() {
            t.insert(&encode_key(&[Value::str(*w)]), Rid::new(i as u32, 0)).unwrap();
        }
        let k = encode_key(&[Value::str("cherry")]);
        assert_eq!(t.search_exact(&k).unwrap(), vec![Rid::new(2, 0)]);
        // Range [banana, date] inclusive
        let lo = encode_key(&[Value::str("banana")]);
        let hi = encode_key(&[Value::str("date")]);
        let got = t.range_scan(Bound::Included(&lo), Bound::Included(&hi)).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn increment_bytes_cases() {
        assert_eq!(increment_bytes(&[1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(increment_bytes(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(increment_bytes(&[0xFF, 0xFF]), None);
        assert_eq!(increment_bytes(&[]), None);
    }

    #[test]
    fn index_io_is_metered() {
        let meter = CostMeter::new();
        let pager = Pager::new(PagerConfig { pool_pages: 16 }, Arc::clone(&meter));
        let mut t = BTree::new(pager, false).unwrap();
        for i in 0..50_000 {
            t.insert(&key(i), Rid::new(i as u32, 0)).unwrap();
        }
        meter.reset();
        t.search_exact(&key(777)).unwrap();
        assert!(meter.get(Counter::IndexNodeReads) >= 2, "root + leaf at least");
    }
}
