//! SQL lexer.

use crate::error::{DbError, DbResult};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, uppercased. (SQL identifiers here are
    /// case-insensitive; there are no quoted identifiers.)
    Word(String),
    /// String literal with '' unescaped.
    StringLit(String),
    /// Integer or decimal literal, kept as text for exact decimal parsing.
    Number(String),
    /// `?`
    Param,
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Param => write!(f, "?"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Tokenize SQL text. Supports `--` line comments.
pub fn tokenize(sql: &str) -> DbResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::parse("unterminated string literal"));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Keep multi-byte UTF-8 intact.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| DbError::parse("invalid UTF-8 in string literal"))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token::StringLit(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                out.push(Token::Number(sql[start..i].to_string()));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                // `$` continues (but cannot start) an identifier, for the
                // `M$...` monitoring views.
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token::Word(sql[start..i].to_ascii_uppercase()));
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            other => {
                return Err(DbError::parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x <= 10.5 AND y <> 'it''s'").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert!(t.contains(&Token::LtEq));
        assert!(t.contains(&Token::Number("10.5".into())));
        assert!(t.contains(&Token::NotEq));
        assert!(t.contains(&Token::StringLit("it's".into())));
    }

    #[test]
    fn words_uppercased_strings_preserved() {
        let t = tokenize("select Name from T where s = 'MixedCase'").unwrap();
        assert_eq!(t[1], Token::Word("NAME".into()));
        assert_eq!(t.last().unwrap(), &Token::StringLit("MixedCase".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Number("1".into()),
                Token::Comma,
                Token::Number("2".into())
            ]
        );
    }

    #[test]
    fn params_and_operators() {
        let t = tokenize("x = ? AND y >= ? + 1").unwrap();
        assert_eq!(t.iter().filter(|t| **t == Token::Param).count(), 2);
        assert!(t.contains(&Token::GtEq));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn minus_vs_comment() {
        // `a - b` is subtraction; `a -- b` is a comment.
        let t = tokenize("a - b").unwrap();
        assert_eq!(t, vec![Token::Word("A".into()), Token::Minus, Token::Word("B".into())]);
        let t = tokenize("a -- b").unwrap();
        assert_eq!(t, vec![Token::Word("A".into())]);
    }
}
