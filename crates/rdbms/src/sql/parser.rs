//! Recursive-descent SQL parser.

use crate::error::{DbError, DbResult};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};
use crate::types::{DataType, Date, Decimal, Value};

/// Parse one SQL statement (optional trailing `;`).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    if !p.at_end() {
        return Err(DbError::parse(format!("unexpected trailing input at '{}'", p.peek_desc())));
    }
    Ok(stmt)
}

/// Parse a SELECT query text into a [`SelectStmt`].
pub fn parse_query(sql: &str) -> DbResult<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(q) => Ok(*q),
        other => Err(DbError::parse(format!("expected SELECT, found {other:?}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` parameters seen so far (positional numbering).
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => t.to_string(),
            None => "<end of input>".to_string(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> DbResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(DbError::parse(format!("expected '{t}', found '{}'", self.peek_desc())))
        }
    }

    /// Is the current token this keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::parse(format!("expected {kw}, found '{}'", self.peek_desc())))
        }
    }

    fn identifier(&mut self) -> DbResult<String> {
        match self.next() {
            Some(Token::Word(w)) => {
                if is_reserved(&w) {
                    Err(DbError::parse(format!("reserved word '{w}' used as identifier")))
                } else {
                    Ok(w)
                }
            }
            other => Err(DbError::parse(format!(
                "expected identifier, found '{}'",
                other.map(|t| t.to_string()).unwrap_or_else(|| "<end>".into())
            ))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> DbResult<Statement> {
        if self.at_kw("SELECT") {
            let q = self.select_stmt()?;
            return Ok(Statement::Select(Box::new(q)));
        }
        if self.eat_kw("INSERT") {
            return self.insert_stmt();
        }
        if self.eat_kw("DELETE") {
            return self.delete_stmt();
        }
        if self.eat_kw("UPDATE") {
            return self.update_stmt();
        }
        if self.eat_kw("CREATE") {
            return self.create_stmt();
        }
        if self.eat_kw("DROP") {
            return self.drop_stmt();
        }
        if self.eat_kw("ANALYZE") {
            let table = if self.at_end() || self.peek() == Some(&Token::Semicolon) {
                None
            } else {
                Some(self.identifier()?)
            };
            return Ok(Statement::Analyze { table });
        }
        Err(DbError::parse(format!("unknown statement start '{}'", self.peek_desc())))
    }

    fn insert_stmt(&mut self) -> DbResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = vec![self.identifier()?];
            while self.eat(&Token::Comma) {
                cols.push(self.identifier()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn delete_stmt(&mut self) -> DbResult<Statement> {
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, filter })
    }

    fn update_stmt(&mut self) -> DbResult<Statement> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect(&Token::Eq)?;
            let val = self.expr()?;
            assignments.push((col, val));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    fn create_stmt(&mut self) -> DbResult<Statement> {
        if self.eat_kw("TABLE") {
            let name = self.identifier()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    self.expect(&Token::LParen)?;
                    primary_key.push(self.identifier()?);
                    while self.eat(&Token::Comma) {
                        primary_key.push(self.identifier()?);
                    }
                    self.expect(&Token::RParen)?;
                } else {
                    let col_name = self.identifier()?;
                    let ty = self.data_type()?;
                    let mut not_null = false;
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        not_null = true;
                    }
                    columns.push(ColumnDef { name: col_name, ty, not_null });
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateTable { name, columns, primary_key });
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect(&Token::LParen)?;
            let mut columns = vec![self.identifier()?];
            while self.eat(&Token::Comma) {
                columns.push(self.identifier()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex { name, table, columns, unique });
        }
        if unique {
            return Err(DbError::parse("expected INDEX after UNIQUE"));
        }
        if self.eat_kw("VIEW") {
            let name = self.identifier()?;
            self.expect_kw("AS")?;
            let q = self.select_stmt()?;
            return Ok(Statement::CreateView { name, query: Box::new(q) });
        }
        Err(DbError::parse(format!("unknown CREATE target '{}'", self.peek_desc())))
    }

    fn drop_stmt(&mut self) -> DbResult<Statement> {
        if self.eat_kw("TABLE") {
            Ok(Statement::DropTable { name: self.identifier()? })
        } else if self.eat_kw("INDEX") {
            Ok(Statement::DropIndex { name: self.identifier()? })
        } else if self.eat_kw("VIEW") {
            Ok(Statement::DropView { name: self.identifier()? })
        } else {
            Err(DbError::parse(format!("unknown DROP target '{}'", self.peek_desc())))
        }
    }

    fn data_type(&mut self) -> DbResult<DataType> {
        let word = match self.next() {
            Some(Token::Word(w)) => w,
            other => return Err(DbError::parse(format!("expected type name, found {other:?}"))),
        };
        match word.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Ok(DataType::Int),
            "DECIMAL" | "NUMERIC" => {
                let mut precision = 18u8;
                let mut scale = 2u8;
                if self.eat(&Token::LParen) {
                    precision = self.unsigned_int()? as u8;
                    if self.eat(&Token::Comma) {
                        scale = self.unsigned_int()? as u8;
                    } else {
                        scale = 0;
                    }
                    self.expect(&Token::RParen)?;
                }
                Ok(DataType::Decimal { precision, scale })
            }
            "CHAR" | "CHARACTER" => {
                let mut n = 1u16;
                if self.eat(&Token::LParen) {
                    n = self.unsigned_int()? as u16;
                    self.expect(&Token::RParen)?;
                }
                Ok(DataType::Char(n))
            }
            "VARCHAR" => {
                self.expect(&Token::LParen)?;
                let n = self.unsigned_int()? as u16;
                self.expect(&Token::RParen)?;
                Ok(DataType::VarChar(n))
            }
            "DATE" => Ok(DataType::Date),
            "BOOLEAN" | "BOOL" => Ok(DataType::Bool),
            other => Err(DbError::parse(format!("unknown type '{other}'"))),
        }
    }

    fn unsigned_int(&mut self) -> DbResult<u64> {
        match self.next() {
            Some(Token::Number(n)) if !n.contains('.') => {
                n.parse().map_err(|_| DbError::parse(format!("invalid integer '{n}'")))
            }
            other => Err(DbError::parse(format!("expected integer, found {other:?}"))),
        }
    }

    // -- SELECT --------------------------------------------------------------

    fn select_stmt(&mut self) -> DbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut projections = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            projections.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.table_ref()?);
            while self.eat(&Token::Comma) {
                from.push(self.table_ref()?);
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") { Some(self.unsigned_int()?) } else { None };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.*
        if let (Some(Token::Word(w)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            if !is_reserved(w) {
                let q = w.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w) {
                Some(self.identifier()?)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> DbResult<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_kw("JOIN") || {
                if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                JoinKind::Inner
            } else if self.at_kw("LEFT") {
                self.eat_kw("LEFT");
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::LeftOuter
            } else {
                break;
            };
            let right = self.table_factor()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> DbResult<TableRef> {
        if self.eat(&Token::LParen) {
            let q = self.select_stmt()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.identifier()?;
            return Ok(TableRef::Subquery { query: Box::new(q), alias });
        }
        let name = self.identifier()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w) {
                Some(self.identifier()?)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // -- expressions ----------------------------------------------------------

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(negate(inner));
        }
        self.predicate()
    }

    /// Comparison-level constructs: =, <>, BETWEEN, IN, LIKE, IS NULL,
    /// EXISTS.
    fn predicate(&mut self) -> DbResult<Expr> {
        if self.eat_kw("EXISTS") {
            self.expect(&Token::LParen)?;
            let q = self.select_stmt()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Exists { query: Box::new(q), negated: false });
        }
        let left = self.additive()?;
        // NOT BETWEEN / NOT IN / NOT LIKE
        let negated = if self.at_kw("NOT") {
            // Only treat as negated predicate if followed by BETWEEN/IN/LIKE.
            match self.tokens.get(self.pos + 1) {
                Some(Token::Word(w)) if w == "BETWEEN" || w == "IN" || w == "LIKE" => {
                    self.pos += 1;
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            if self.at_kw("SELECT") {
                let q = self.select_stmt()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery { expr: Box::new(left), query: Box::new(q), negated });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return Err(DbError::parse("expected BETWEEN, IN or LIKE after NOT"));
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat(&Token::Plus) {
                BinOp::Add
            } else if self.eat(&Token::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            // Interval arithmetic: expr +/- INTERVAL 'n' unit
            if self.eat_kw("INTERVAL") {
                let amount_str = match self.next() {
                    Some(Token::StringLit(s)) => s,
                    other => {
                        return Err(DbError::parse(format!(
                            "expected interval amount string, found {other:?}"
                        )))
                    }
                };
                let amount: i32 = amount_str
                    .trim()
                    .parse()
                    .map_err(|_| DbError::parse(format!("invalid interval '{amount_str}'")))?;
                let unit = self.interval_unit()?;
                let signed = if op == BinOp::Sub { -amount } else { amount };
                left = Expr::IntervalAdd { expr: Box::new(left), amount: signed, unit };
                continue;
            }
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn interval_unit(&mut self) -> DbResult<IntervalUnit> {
        match self.next() {
            Some(Token::Word(w)) => match w.as_str() {
                "DAY" | "DAYS" => Ok(IntervalUnit::Day),
                "MONTH" | "MONTHS" => Ok(IntervalUnit::Month),
                "YEAR" | "YEARS" => Ok(IntervalUnit::Year),
                other => Err(DbError::parse(format!("unknown interval unit '{other}'"))),
            },
            other => Err(DbError::parse(format!("expected interval unit, found {other:?}"))),
        }
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat(&Token::Star) {
                BinOp::Mul
            } else if self.eat(&Token::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Decimal(d)) => Expr::Literal(Value::Decimal(d.neg())),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.contains('.') {
                    Ok(Expr::Literal(Value::Decimal(Decimal::parse(&n)?)))
                } else {
                    let v: i64 = n
                        .parse()
                        .map_err(|_| DbError::parse(format!("integer '{n}' out of range")))?;
                    Ok(Expr::Literal(Value::Int(v)))
                }
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Param) => {
                self.pos += 1;
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.at_kw("SELECT") {
                    let q = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => self.word_expr(w),
            other => Err(DbError::parse(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn word_expr(&mut self, w: String) -> DbResult<Expr> {
        match w.as_str() {
            "NULL" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            "TRUE" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            "FALSE" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            "DATE" => {
                self.pos += 1;
                match self.next() {
                    Some(Token::StringLit(s)) => Ok(Expr::Literal(Value::Date(Date::parse(&s)?))),
                    other => Err(DbError::parse(format!(
                        "expected date string after DATE, found {other:?}"
                    ))),
                }
            }
            "CASE" => {
                self.pos += 1;
                let mut branches = Vec::new();
                while self.eat_kw("WHEN") {
                    let cond = self.expr()?;
                    self.expect_kw("THEN")?;
                    let result = self.expr()?;
                    branches.push((cond, result));
                }
                if branches.is_empty() {
                    return Err(DbError::parse("CASE requires at least one WHEN"));
                }
                let else_expr =
                    if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
                self.expect_kw("END")?;
                Ok(Expr::Case { branches, else_expr })
            }
            "EXTRACT" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let unit = self.interval_unit()?;
                self.expect_kw("FROM")?;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Extract { unit, expr: Box::new(e) })
            }
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                // Aggregate only if followed by '('; else treat as column.
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    let func = match w.as_str() {
                        "COUNT" => AggFunc::Count,
                        "SUM" => AggFunc::Sum,
                        "AVG" => AggFunc::Avg,
                        "MIN" => AggFunc::Min,
                        _ => AggFunc::Max,
                    };
                    self.pos += 2; // word + lparen
                    if func == AggFunc::Count && self.eat(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Agg { func, arg: None, distinct: false });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let arg = self.expr()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct });
                }
                self.column_or_func(w)
            }
            _ => {
                if is_reserved(&w) {
                    return Err(DbError::parse(format!("reserved word '{w}' in expression")));
                }
                self.column_or_func(w)
            }
        }
    }

    /// `name(args)` function call, `qual.name` column, or bare column.
    fn column_or_func(&mut self, w: String) -> DbResult<Expr> {
        self.pos += 1;
        if self.eat(&Token::Dot) {
            let name = self.identifier()?;
            return Ok(Expr::Column { qualifier: Some(w), name });
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Func { name: w, args });
        }
        Ok(Expr::Column { qualifier: None, name: w })
    }
}

/// Apply NOT to an expression, folding into negatable predicates.
fn negate(e: Expr) -> Expr {
    match e {
        Expr::Exists { query, negated } => Expr::Exists { query, negated: !negated },
        Expr::InSubquery { expr, query, negated } => {
            Expr::InSubquery { expr, query, negated: !negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList { expr, list, negated: !negated },
        Expr::Between { expr, low, high, negated } => {
            Expr::Between { expr, low, high, negated: !negated }
        }
        Expr::Like { expr, pattern, negated } => Expr::Like { expr, pattern, negated: !negated },
        Expr::IsNull { expr, negated } => Expr::IsNull { expr, negated: !negated },
        other => Expr::Unary { op: UnaryOp::Not, expr: Box::new(other) },
    }
}

/// Reserved words that cannot be identifiers or implicit aliases.
fn is_reserved(w: &str) -> bool {
    matches!(
        w,
        "SELECT"
            | "FROM"
            | "WHERE"
            | "GROUP"
            | "BY"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "IN"
            | "IS"
            | "NULL"
            | "BETWEEN"
            | "LIKE"
            | "EXISTS"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "OUTER"
            | "ON"
            | "CASE"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "DISTINCT"
            | "INSERT"
            | "INTO"
            | "VALUES"
            | "DELETE"
            | "UPDATE"
            | "SET"
            | "CREATE"
            | "DROP"
            | "TABLE"
            | "INDEX"
            | "VIEW"
            | "UNIQUE"
            | "PRIMARY"
            | "KEY"
            | "INTERVAL"
            | "EXTRACT"
            | "DATE"
            | "ASC"
            | "DESC"
            | "UNION"
            | "TRUE"
            | "FALSE"
            | "ANALYZE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT a, b AS total FROM t WHERE a > 10 ORDER BY b DESC LIMIT 5")
            .unwrap();
        assert_eq!(q.projections.len(), 2);
        assert!(matches!(
            &q.projections[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "TOTAL"
        ));
        assert_eq!(q.from.len(), 1);
        assert!(q.where_clause.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn comma_join_and_explicit_join() {
        let q = parse_query("SELECT * FROM a, b WHERE a.x = b.x").unwrap();
        assert_eq!(q.from.len(), 2);
        let q = parse_query("SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y")
            .unwrap();
        assert_eq!(q.from.len(), 1);
        match &q.from[0] {
            TableRef::Join { kind, .. } => assert_eq!(*kind, JoinKind::LeftOuter),
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn aliases() {
        let q = parse_query("SELECT l.a FROM lineitem l").unwrap();
        match &q.from[0] {
            TableRef::Named { name, alias } => {
                assert_eq!(name, "LINEITEM");
                assert_eq!(alias.as_deref(), Some("L"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_query(
            "SELECT l_returnflag, SUM(l_quantity), COUNT(*), AVG(l_discount), COUNT(DISTINCT x) \
             FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 10",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        match &q.projections[2] {
            SelectItem::Expr {
                expr: Expr::Agg { func: AggFunc::Count, arg: None, .. }, ..
            } => {}
            other => panic!("{other:?}"),
        }
        match &q.projections[4] {
            SelectItem::Expr { expr: Expr::Agg { distinct: true, .. }, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn date_and_interval() {
        let q = parse_query("SELECT * FROM l WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY")
            .unwrap();
        let w = q.where_clause.unwrap();
        match w {
            Expr::Binary { right, .. } => match *right {
                Expr::IntervalAdd { amount, unit, .. } => {
                    assert_eq!(amount, -90);
                    assert_eq!(unit, IntervalUnit::Day);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extract_year() {
        let q = parse_query("SELECT EXTRACT(YEAR FROM o_orderdate) FROM o").unwrap();
        match &q.projections[0] {
            SelectItem::Expr { expr: Expr::Extract { unit: IntervalUnit::Year, .. }, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_subqueries() {
        let q = parse_query(
            "SELECT * FROM p WHERE ps = (SELECT MIN(c) FROM s WHERE s.k = p.k) \
             AND x IN (SELECT y FROM z) AND NOT EXISTS (SELECT 1 FROM w)",
        )
        .unwrap();
        let conjuncts = q.where_clause.unwrap().split_conjuncts();
        assert_eq!(conjuncts.len(), 3);
        assert!(
            matches!(&conjuncts[0], Expr::Binary { right, .. } if matches!(**right, Expr::ScalarSubquery(_)))
        );
        assert!(matches!(&conjuncts[1], Expr::InSubquery { negated: false, .. }));
        assert!(matches!(&conjuncts[2], Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn case_when() {
        let q = parse_query("SELECT SUM(CASE WHEN n = 'BRAZIL' THEN v ELSE 0 END) FROM t").unwrap();
        match &q.projections[0] {
            SelectItem::Expr { expr: Expr::Agg { arg: Some(a), .. }, .. } => {
                assert!(matches!(**a, Expr::Case { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_variants() {
        let q = parse_query(
            "SELECT * FROM t WHERE a NOT IN (1,2) AND b NOT BETWEEN 1 AND 2 \
             AND c NOT LIKE 'x%' AND d IS NOT NULL",
        )
        .unwrap();
        let cs = q.where_clause.unwrap().split_conjuncts();
        assert!(matches!(&cs[0], Expr::InList { negated: true, .. }));
        assert!(matches!(&cs[1], Expr::Between { negated: true, .. }));
        assert!(matches!(&cs[2], Expr::Like { negated: true, .. }));
        assert!(matches!(&cs[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn params_numbered_in_order() {
        let q = parse_query("SELECT * FROM t WHERE a = ? AND b < ?").unwrap();
        let cs = q.where_clause.unwrap().split_conjuncts();
        assert!(matches!(&cs[0], Expr::Binary { right, .. } if matches!(**right, Expr::Param(0))));
        assert!(matches!(&cs[1], Expr::Binary { right, .. } if matches!(**right, Expr::Param(1))));
    }

    #[test]
    fn ddl_statements() {
        let s = parse_statement(
            "CREATE TABLE t (a INTEGER NOT NULL, b DECIMAL(12,2), c CHAR(16), d VARCHAR(44), \
             e DATE, PRIMARY KEY (a))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, primary_key } => {
                assert_eq!(name, "T");
                assert_eq!(columns.len(), 5);
                assert!(columns[0].not_null);
                assert_eq!(columns[1].ty, DataType::Decimal { precision: 12, scale: 2 });
                assert_eq!(columns[2].ty, DataType::Char(16));
                assert_eq!(primary_key, vec!["A"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX i ON t (a, b)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse_statement("CREATE VIEW v AS SELECT a FROM t").unwrap(),
            Statement::CreateView { .. }
        ));
        assert!(matches!(parse_statement("DROP INDEX i").unwrap(), Statement::DropIndex { .. }));
    }

    #[test]
    fn dml_statements() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["A", "B"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { filter: Some(_), .. }
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = 2 WHERE b = 'x'").unwrap(),
            Statement::Update { .. }
        ));
    }

    #[test]
    fn derived_table() {
        let q = parse_query("SELECT s FROM (SELECT SUM(x) AS s FROM t) AS sub").unwrap();
        assert!(matches!(&q.from[0], TableRef::Subquery { alias, .. } if alias == "SUB"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT 1 extra garbage ,,,").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let q = parse_query("SELECT a + b * c FROM t").unwrap();
        match &q.projections[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
        // OR binds weaker than AND
        let q = parse_query("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn unary_minus_folds_literals() {
        let q = parse_query("SELECT -5, -1.5 FROM t").unwrap();
        assert!(matches!(
            &q.projections[0],
            SelectItem::Expr { expr: Expr::Literal(Value::Int(-5)), .. }
        ));
    }

    #[test]
    fn wildcard_variants() {
        let q = parse_query("SELECT *, t.* FROM t").unwrap();
        assert!(matches!(q.projections[0], SelectItem::Wildcard));
        assert!(matches!(&q.projections[1], SelectItem::QualifiedWildcard(w) if w == "T"));
    }
}
