//! SQL front-end: lexer, parser, AST.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggFunc, BinOp, ColumnDef, Expr, IntervalUnit, JoinKind, OrderItem, SelectItem, SelectStmt,
    Statement, TableRef, UnaryOp,
};
pub use parser::{parse_query, parse_statement};
