//! SQL abstract syntax tree.
//!
//! The grammar covers what the TPC-D suite and the SAP R/3 simulator's
//! generated SQL need: select/insert/delete/update, DDL, joins (explicit
//! and comma-style), nested subqueries (scalar, IN, EXISTS), aggregates
//! with DISTINCT, CASE, LIKE, BETWEEN, date/interval arithmetic, and
//! positional `?` parameters.

use crate::types::{DataType, Value};
use std::fmt;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Box<SelectStmt>),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    CreateView {
        name: String,
        query: Box<SelectStmt>,
    },
    DropTable {
        name: String,
    },
    DropIndex {
        name: String,
    },
    DropView {
        name: String,
    },
    /// Recompute optimizer statistics for one table or all tables.
    Analyze {
        table: Option<String>,
    },
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
}

/// A SELECT statement (also used as subquery body and view definition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional output alias
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or view, optionally aliased.
    Named { name: String, alias: Option<String> },
    /// Explicit `a JOIN b ON cond`.
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Expr },
    /// Derived table `(SELECT ...) AS alias`.
    Subquery { query: Box<SelectStmt>, alias: String },
}

impl TableRef {
    /// The binding name this reference introduces (alias or table name)
    /// when it is a leaf.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// Positional parameter `?` (0-based index in bind order).
    Param(usize),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    ScalarSubquery(Box<SelectStmt>),
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Agg {
        func: AggFunc,
        /// `None` for COUNT(*).
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// `EXTRACT(unit FROM expr)`.
    Extract {
        unit: IntervalUnit,
        expr: Box<Expr>,
    },
    /// `expr + INTERVAL 'n' unit` / `expr - INTERVAL 'n' unit`.
    IntervalAdd {
        expr: Box<Expr>,
        amount: i32,
        unit: IntervalUnit,
    },
    /// Named scalar function (SUBSTR, VENDOR_CONTAINS, ...).
    Func {
        name: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        match name.split_once('.') {
            Some((q, n)) => Expr::Column { qualifier: Some(q.to_string()), name: n.to_string() },
            None => Expr::Column { qualifier: None, name: name.to_string() },
        }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::Eq, right)
    }

    /// Combine a list of predicates with AND; `None` for an empty list.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() { return None } else { preds.remove(0) };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Split an expression into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary { left, op: BinOp::And, right } => {
                let mut v = left.split_conjuncts();
                v.extend(right.split_conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Does this expression contain a parameter marker?
    pub fn contains_param(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                found = true;
            }
        });
        found
    }

    /// Pre-order visit of this expression's nodes (not descending into
    /// subquery bodies).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Exists { .. } => {}
            Expr::ScalarSubquery(_) => {}
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
            Expr::Extract { expr, .. } => expr.visit(f),
            Expr::IntervalAdd { expr, .. } => expr.visit(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Column references in this expression (not descending into subqueries).
    pub fn column_refs(&self) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.clone(), name.clone()));
            }
        });
        out
    }

    /// Is this expression a bind-time constant: built only from literals and
    /// scalar operators, with no column, parameter, aggregate, or subquery?
    pub fn is_bind_constant(&self) -> bool {
        match self {
            Expr::Literal(_) => true,
            Expr::Unary { expr, .. } => expr.is_bind_constant(),
            Expr::Binary { left, op, right } => {
                !matches!(op, BinOp::And | BinOp::Or)
                    && left.is_bind_constant()
                    && right.is_bind_constant()
            }
            Expr::Extract { expr, .. } | Expr::IntervalAdd { expr, .. } => expr.is_bind_constant(),
            Expr::Func { args, .. } => args.iter().all(Expr::is_bind_constant),
            _ => false,
        }
    }
}

impl SelectStmt {
    /// The statement as a prepared cursor sees it: every constant operand of
    /// a comparison (or BETWEEN / IN-list element) in a predicate position is
    /// replaced by a positional parameter. This mirrors how R/3's Open SQL
    /// layer binds ABAP host variables instead of inlining values, so a plan
    /// built from the result shows the access paths the parameter-blind
    /// optimizer picks (§4.1).
    pub fn parameterized(&self) -> SelectStmt {
        let mut q = self.clone();
        let mut n = 0usize;
        parameterize_select(&mut q, &mut n);
        q
    }
}

fn parameterize_select(q: &mut SelectStmt, n: &mut usize) {
    for t in &mut q.from {
        parameterize_tableref(t, n);
    }
    if let Some(w) = &mut q.where_clause {
        parameterize_pred(w, n);
    }
    if let Some(h) = &mut q.having {
        parameterize_pred(h, n);
    }
    for item in &mut q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            parameterize_pred(expr, n);
        }
    }
}

fn parameterize_tableref(t: &mut TableRef, n: &mut usize) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Join { left, right, on, .. } => {
            parameterize_tableref(left, n);
            parameterize_tableref(right, n);
            parameterize_pred(on, n);
        }
        TableRef::Subquery { query, .. } => parameterize_select(query, n),
    }
}

fn bind(e: &mut Expr, n: &mut usize) {
    *e = Expr::Param(*n);
    *n += 1;
}

fn parameterize_pred(e: &mut Expr, n: &mut usize) {
    match e {
        Expr::Binary { left, op, right } => {
            if op.is_comparison() {
                match (left.is_bind_constant(), right.is_bind_constant()) {
                    (false, true) => {
                        parameterize_pred(left, n);
                        bind(right, n);
                    }
                    (true, false) => {
                        bind(left, n);
                        parameterize_pred(right, n);
                    }
                    _ => {
                        parameterize_pred(left, n);
                        parameterize_pred(right, n);
                    }
                }
            } else {
                parameterize_pred(left, n);
                parameterize_pred(right, n);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            parameterize_pred(expr, n);
            if low.is_bind_constant() {
                bind(low, n);
            } else {
                parameterize_pred(low, n);
            }
            if high.is_bind_constant() {
                bind(high, n);
            } else {
                parameterize_pred(high, n);
            }
        }
        Expr::InList { expr, list, .. } => {
            parameterize_pred(expr, n);
            for item in list {
                if item.is_bind_constant() {
                    bind(item, n);
                } else {
                    parameterize_pred(item, n);
                }
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            parameterize_pred(expr, n);
            parameterize_select(query, n);
        }
        Expr::Exists { query, .. } => parameterize_select(query, n),
        Expr::ScalarSubquery(query) => parameterize_select(query, n),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => parameterize_pred(expr, n),
        Expr::Like { expr, pattern, .. } => {
            parameterize_pred(expr, n);
            parameterize_pred(pattern, n);
        }
        Expr::Case { branches, else_expr } => {
            for (c, r) in branches {
                parameterize_pred(c, n);
                parameterize_pred(r, n);
            }
            if let Some(el) = else_expr {
                parameterize_pred(el, n);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                parameterize_pred(a, n);
            }
        }
        Expr::Extract { expr, .. } | Expr::IntervalAdd { expr, .. } => parameterize_pred(expr, n),
        Expr::Func { args, .. } => {
            for a in args {
                parameterize_pred(a, n);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_helpers() {
        assert_eq!(Expr::conjunction(vec![]), None);
        let a = Expr::col("a");
        let b = Expr::col("b");
        let c = Expr::col("c");
        let e = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let parts = e.split_conjuncts();
        assert_eq!(parts, vec![a, b, c]);
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = Expr::binary(
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("x"))), distinct: false },
            BinOp::Div,
            Expr::lit(Value::Int(2)),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn column_refs_collects_qualified() {
        let e = Expr::and(
            Expr::eq(Expr::col("t.a"), Expr::lit(Value::Int(1))),
            Expr::eq(Expr::col("b"), Expr::col("t.a")),
        );
        let refs = e.column_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], (Some("t".into()), "a".into()));
        assert_eq!(refs[1], (None, "b".into()));
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Named { name: "ORDERS".into(), alias: Some("O".into()) };
        assert_eq!(t.binding(), Some("O"));
        let t = TableRef::Named { name: "ORDERS".into(), alias: None };
        assert_eq!(t.binding(), Some("ORDERS"));
    }
}
