//! SQL abstract syntax tree.
//!
//! The grammar covers what the TPC-D suite and the SAP R/3 simulator's
//! generated SQL need: select/insert/delete/update, DDL, joins (explicit
//! and comma-style), nested subqueries (scalar, IN, EXISTS), aggregates
//! with DISTINCT, CASE, LIKE, BETWEEN, date/interval arithmetic, and
//! positional `?` parameters.

use crate::types::{DataType, Value};
use std::fmt;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Box<SelectStmt>),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        unique: bool,
    },
    CreateView {
        name: String,
        query: Box<SelectStmt>,
    },
    DropTable {
        name: String,
    },
    DropIndex {
        name: String,
    },
    DropView {
        name: String,
    },
    /// Recompute optimizer statistics for one table or all tables.
    Analyze {
        table: Option<String>,
    },
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
}

/// A SELECT statement (also used as subquery body and view definition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional output alias
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or view, optionally aliased.
    Named { name: String, alias: Option<String> },
    /// Explicit `a JOIN b ON cond`.
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Expr },
    /// Derived table `(SELECT ...) AS alias`.
    Subquery { query: Box<SelectStmt>, alias: String },
}

impl TableRef {
    /// The binding name this reference introduces (alias or table name)
    /// when it is a leaf.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    /// Positional parameter `?` (0-based index in bind order).
    Param(usize),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    ScalarSubquery(Box<SelectStmt>),
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Agg {
        func: AggFunc,
        /// `None` for COUNT(*).
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    /// `EXTRACT(unit FROM expr)`.
    Extract {
        unit: IntervalUnit,
        expr: Box<Expr>,
    },
    /// `expr + INTERVAL 'n' unit` / `expr - INTERVAL 'n' unit`.
    IntervalAdd {
        expr: Box<Expr>,
        amount: i32,
        unit: IntervalUnit,
    },
    /// Named scalar function (SUBSTR, VENDOR_CONTAINS, ...).
    Func {
        name: String,
        args: Vec<Expr>,
    },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        match name.split_once('.') {
            Some((q, n)) => Expr::Column { qualifier: Some(q.to_string()), name: n.to_string() },
            None => Expr::Column { qualifier: None, name: name.to_string() },
        }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::Eq, right)
    }

    /// Combine a list of predicates with AND; `None` for an empty list.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() { return None } else { preds.remove(0) };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Split an expression into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary { left, op: BinOp::And, right } => {
                let mut v = left.split_conjuncts();
                v.extend(right.split_conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Does this expression contain a parameter marker?
    pub fn contains_param(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Param(_)) {
                found = true;
            }
        });
        found
    }

    /// Pre-order visit of this expression's nodes (not descending into
    /// subquery bodies).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Exists { .. } => {}
            Expr::ScalarSubquery(_) => {}
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Case { branches, else_expr } => {
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
            Expr::Extract { expr, .. } => expr.visit(f),
            Expr::IntervalAdd { expr, .. } => expr.visit(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Column references in this expression (not descending into subqueries).
    pub fn column_refs(&self) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier.clone(), name.clone()));
            }
        });
        out
    }

    /// Is this expression a bind-time constant: built only from literals and
    /// scalar operators, with no column, parameter, aggregate, or subquery?
    pub fn is_bind_constant(&self) -> bool {
        match self {
            Expr::Literal(_) => true,
            Expr::Unary { expr, .. } => expr.is_bind_constant(),
            Expr::Binary { left, op, right } => {
                !matches!(op, BinOp::And | BinOp::Or)
                    && left.is_bind_constant()
                    && right.is_bind_constant()
            }
            Expr::Extract { expr, .. } | Expr::IntervalAdd { expr, .. } => expr.is_bind_constant(),
            Expr::Func { args, .. } => args.iter().all(Expr::is_bind_constant),
            _ => false,
        }
    }
}

impl SelectStmt {
    /// The statement as a prepared cursor sees it: every constant operand of
    /// a comparison (or BETWEEN / IN-list element) in a predicate position is
    /// replaced by a positional parameter. This mirrors how R/3's Open SQL
    /// layer binds ABAP host variables instead of inlining values, so a plan
    /// built from the result shows the access paths the parameter-blind
    /// optimizer picks (§4.1).
    pub fn parameterized(&self) -> SelectStmt {
        self.parameterized_collect().0
    }

    /// [`SelectStmt::parameterized`], also returning the constant expression
    /// each introduced parameter replaced, in parameter-index order. A plan
    /// cache evaluates these to bind values: plan from the parameterized
    /// statement (shared across literal variants), execute with the values
    /// extracted from the concrete text — the wire protocol's Parse/Bind
    /// split over a single literal statement.
    pub fn parameterized_collect(&self) -> (SelectStmt, Vec<Expr>) {
        let mut q = self.clone();
        let mut n = 0usize;
        let mut bound = Vec::new();
        parameterize_select(&mut q, &mut n, &mut bound);
        (q, bound)
    }

    /// Does this statement already contain positional parameters (`?`)?
    /// Such a statement is its own normalized form: re-parameterizing it
    /// would renumber markers, so plan caches key it as written.
    pub fn has_params(&self) -> bool {
        select_has_params(self)
    }
}

fn select_has_params(q: &SelectStmt) -> bool {
    let mut found = false;
    let mut check = |e: &Expr| {
        visit_with_subqueries(e, &mut |x| {
            if matches!(x, Expr::Param(_)) {
                found = true;
            }
        });
    };
    for t in &q.from {
        if tableref_has_params(t) {
            return true;
        }
    }
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            check(expr);
        }
    }
    if let Some(w) = &q.where_clause {
        check(w);
    }
    for e in &q.group_by {
        check(e);
    }
    if let Some(h) = &q.having {
        check(h);
    }
    for o in &q.order_by {
        check(&o.expr);
    }
    found
}

/// Visit the name of every base table or view referenced anywhere in `q`:
/// the FROM clause (through joins and derived tables) and subqueries in any
/// expression position. Names are visited as written (not deduplicated, not
/// case-folded); a deeply nested reference may be visited more than once.
pub fn visit_referenced_tables(q: &SelectStmt, f: &mut impl FnMut(&str)) {
    fn tables_of(t: &TableRef, f: &mut impl FnMut(&str)) {
        match t {
            TableRef::Named { name, .. } => f(name),
            TableRef::Join { left, right, .. } => {
                // `on` subqueries are reached via visit_select_exprs below.
                tables_of(left, f);
                tables_of(right, f);
            }
            TableRef::Subquery { query, .. } => visit_referenced_tables(query, f),
        }
    }
    for t in &q.from {
        tables_of(t, f);
    }
    visit_select_exprs(q, &mut |e| match e {
        Expr::InSubquery { query, .. } | Expr::Exists { query, .. } => {
            for t in &query.from {
                tables_of(t, f);
            }
        }
        Expr::ScalarSubquery(query) => {
            for t in &query.from {
                tables_of(t, f);
            }
        }
        _ => {}
    });
}

fn tableref_has_params(t: &TableRef) -> bool {
    match t {
        TableRef::Named { .. } => false,
        TableRef::Join { left, right, on, .. } => {
            let mut found = false;
            visit_with_subqueries(on, &mut |x| {
                if matches!(x, Expr::Param(_)) {
                    found = true;
                }
            });
            found || tableref_has_params(left) || tableref_has_params(right)
        }
        TableRef::Subquery { query, .. } => select_has_params(query),
    }
}

/// Like [`Expr::visit`] but descending into subquery bodies too.
fn visit_with_subqueries(e: &Expr, f: &mut impl FnMut(&Expr)) {
    e.visit(f);
    match e {
        Expr::InSubquery { query, .. } | Expr::Exists { query, .. } => {
            visit_select_exprs(query, f);
        }
        Expr::ScalarSubquery(query) => visit_select_exprs(query, f),
        _ => {}
    }
}

fn visit_select_exprs(q: &SelectStmt, f: &mut impl FnMut(&Expr)) {
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            visit_with_subqueries(expr, f);
        }
    }
    for t in &q.from {
        visit_tableref_exprs(t, f);
    }
    if let Some(w) = &q.where_clause {
        visit_with_subqueries(w, f);
    }
    for e in &q.group_by {
        visit_with_subqueries(e, f);
    }
    if let Some(h) = &q.having {
        visit_with_subqueries(h, f);
    }
    for o in &q.order_by {
        visit_with_subqueries(&o.expr, f);
    }
}

fn visit_tableref_exprs(t: &TableRef, f: &mut impl FnMut(&Expr)) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Join { left, right, on, .. } => {
            visit_tableref_exprs(left, f);
            visit_tableref_exprs(right, f);
            visit_with_subqueries(on, f);
        }
        TableRef::Subquery { query, .. } => visit_select_exprs(query, f),
    }
}

fn parameterize_select(q: &mut SelectStmt, n: &mut usize, bound: &mut Vec<Expr>) {
    for t in &mut q.from {
        parameterize_tableref(t, n, bound);
    }
    if let Some(w) = &mut q.where_clause {
        parameterize_pred(w, n, bound);
    }
    if let Some(h) = &mut q.having {
        parameterize_pred(h, n, bound);
    }
    for item in &mut q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            parameterize_pred(expr, n, bound);
        }
    }
}

fn parameterize_tableref(t: &mut TableRef, n: &mut usize, bound: &mut Vec<Expr>) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Join { left, right, on, .. } => {
            parameterize_tableref(left, n, bound);
            parameterize_tableref(right, n, bound);
            parameterize_pred(on, n, bound);
        }
        TableRef::Subquery { query, .. } => parameterize_select(query, n, bound),
    }
}

fn bind(e: &mut Expr, n: &mut usize, bound: &mut Vec<Expr>) {
    bound.push(e.clone());
    *e = Expr::Param(*n);
    *n += 1;
}

fn parameterize_pred(e: &mut Expr, n: &mut usize, bound: &mut Vec<Expr>) {
    match e {
        Expr::Binary { left, op, right } => {
            if op.is_comparison() {
                match (left.is_bind_constant(), right.is_bind_constant()) {
                    (false, true) => {
                        parameterize_pred(left, n, bound);
                        bind(right, n, bound);
                    }
                    (true, false) => {
                        bind(left, n, bound);
                        parameterize_pred(right, n, bound);
                    }
                    _ => {
                        parameterize_pred(left, n, bound);
                        parameterize_pred(right, n, bound);
                    }
                }
            } else {
                parameterize_pred(left, n, bound);
                parameterize_pred(right, n, bound);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            parameterize_pred(expr, n, bound);
            if low.is_bind_constant() {
                bind(low, n, bound);
            } else {
                parameterize_pred(low, n, bound);
            }
            if high.is_bind_constant() {
                bind(high, n, bound);
            } else {
                parameterize_pred(high, n, bound);
            }
        }
        Expr::InList { expr, list, .. } => {
            parameterize_pred(expr, n, bound);
            for item in list {
                if item.is_bind_constant() {
                    bind(item, n, bound);
                } else {
                    parameterize_pred(item, n, bound);
                }
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            parameterize_pred(expr, n, bound);
            parameterize_select(query, n, bound);
        }
        Expr::Exists { query, .. } => parameterize_select(query, n, bound),
        Expr::ScalarSubquery(query) => parameterize_select(query, n, bound),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => parameterize_pred(expr, n, bound),
        Expr::Like { expr, pattern, .. } => {
            parameterize_pred(expr, n, bound);
            parameterize_pred(pattern, n, bound);
        }
        Expr::Case { branches, else_expr } => {
            for (c, r) in branches {
                parameterize_pred(c, n, bound);
                parameterize_pred(r, n, bound);
            }
            if let Some(el) = else_expr {
                parameterize_pred(el, n, bound);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                parameterize_pred(a, n, bound);
            }
        }
        Expr::Extract { expr, .. } | Expr::IntervalAdd { expr, .. } => {
            parameterize_pred(expr, n, bound)
        }
        Expr::Func { args, .. } => {
            for a in args {
                parameterize_pred(a, n, bound);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_helpers() {
        assert_eq!(Expr::conjunction(vec![]), None);
        let a = Expr::col("a");
        let b = Expr::col("b");
        let c = Expr::col("c");
        let e = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        let parts = e.split_conjuncts();
        assert_eq!(parts, vec![a, b, c]);
    }

    #[test]
    fn contains_aggregate_detects_nested() {
        let e = Expr::binary(
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("x"))), distinct: false },
            BinOp::Div,
            Expr::lit(Value::Int(2)),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn column_refs_collects_qualified() {
        let e = Expr::and(
            Expr::eq(Expr::col("t.a"), Expr::lit(Value::Int(1))),
            Expr::eq(Expr::col("b"), Expr::col("t.a")),
        );
        let refs = e.column_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], (Some("t".into()), "a".into()));
        assert_eq!(refs[1], (None, "b".into()));
    }

    #[test]
    fn binding_names() {
        let t = TableRef::Named { name: "ORDERS".into(), alias: Some("O".into()) };
        assert_eq!(t.binding(), Some("O"));
        let t = TableRef::Named { name: "ORDERS".into(), alias: None };
        assert_eq!(t.binding(), Some("ORDERS"));
    }
}
