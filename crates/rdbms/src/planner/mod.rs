//! The query planner / optimizer.
//!
//! Responsibilities:
//! * name resolution (tables, views, columns, correlated references),
//! * access-path selection (sequential scan vs. B+-tree index scan),
//! * greedy join ordering with hash joins for equi-joins,
//! * aggregation, HAVING, DISTINCT, ORDER BY, LIMIT lowering,
//! * subquery planning (scalar / IN / EXISTS, correlated or not).
//!
//! Two deliberate period-faithful behaviours reproduce the paper's findings:
//!
//! 1. **Parameter blindness** (§4.1): when a sargable predicate compares a
//!    column to a `?` parameter, the optimizer cannot estimate selectivity
//!    and falls back to a rule-based preference for an available index —
//!    exactly the "blindly generates a plan" behaviour the paper observed
//!    when SAP translated Open SQL into parameterized queries.
//! 2. **Naive nested queries** (§3.4.4): correlated subqueries re-execute
//!    per outer row; there is no decorrelation/unnesting rewrite. Manual
//!    unnesting (as the authors did for their Open SQL reports) therefore
//!    beats the engine's own nested execution.

mod builder;
mod dml;
mod sarg;
mod selectivity;

/// Index-assisted DML helpers.
pub mod sarg_helpers {
    pub use super::dml::{dml_index_probe, pk_lock_range};
}

pub use builder::{PlannedQuery, Planner};

use crate::clock::Calibration;

/// Optimizer configuration. Exposed so the ablation benches can toggle the
/// vendor behaviours.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Rule-based index preference for parameterized sargs (§4.1).
    pub blind_param_plans: bool,
    /// Default equality selectivity when statistics are missing.
    pub default_eq_sel: f64,
    /// Default selectivity for range predicates with unknown constants.
    pub default_range_sel: f64,
    /// Default selectivity for LIKE predicates.
    pub like_sel: f64,
    /// Allow hash joins (else all joins are nested-loop).
    pub enable_hash_join: bool,
    /// Cost constants used for access-path decisions.
    pub calibration: Calibration,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            blind_param_plans: true,
            default_eq_sel: 0.005,
            default_range_sel: 0.05,
            like_sel: 0.05,
            enable_hash_join: true,
            calibration: Calibration::default(),
        }
    }
}
