//! Translation of a parsed `SelectStmt` into an executable physical plan.

use crate::catalog::{Catalog, Table};
use crate::error::{DbError, DbResult};
use crate::exec::expr::{AggSpec, BExpr, BoundSubquery, ScalarFunc, SubqueryKind};
use crate::exec::plan::{IndexKeyBound, Plan};
use crate::planner::sarg::{extract_sargs, match_index, IndexAccess, Sarg};
use crate::planner::selectivity::conjunct_selectivity;
use crate::planner::PlannerConfig;
use crate::schema::{Column, Schema};
use crate::sql::ast::{AggFunc, BinOp, Expr, JoinKind, SelectItem, SelectStmt, TableRef};
use crate::types::{DataType, Value};
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::Arc;

/// A fully planned query.
pub struct PlannedQuery {
    pub plan: Plan,
    pub schema: Schema,
    pub n_params: usize,
}

/// The planner. Create one per statement; it is cheap.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    pub config: PlannerConfig,
    next_cache_id: Cell<usize>,
    max_param: Cell<usize>,
}

/// One relation in the FROM list after flattening.
struct Rel {
    schema: Schema,
    source: RelSource,
    /// Single-relation conjuncts assigned to this relation (AST).
    preds: Vec<Expr>,
    /// Estimated output cardinality after applying `preds`.
    est_rows: f64,
}

enum RelSource {
    Base(Arc<Table>),
    Derived(Plan),
}

/// An equi-join predicate `a_col = b_col` between two relations.
struct EquiPred {
    rel_a: usize,
    col_a: Expr,
    rel_b: usize,
    col_b: Expr,
    consumed: bool,
    /// max(NDV of the two join columns) — drives join-size estimation.
    /// A join on a 7-valued column (e.g. a line number alone) must not be
    /// mistaken for a key join, or greedy ordering builds huge
    /// intermediates.
    ndv: f64,
}

/// A partially built join tree.
struct Built {
    plan: Plan,
    schema: Schema,
    card: f64,
    rels: HashSet<usize>,
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner {
            catalog,
            config: PlannerConfig::default(),
            next_cache_id: Cell::new(0),
            max_param: Cell::new(0),
        }
    }

    pub fn with_config(catalog: &'a Catalog, config: PlannerConfig) -> Self {
        Planner { catalog, config, next_cache_id: Cell::new(0), max_param: Cell::new(0) }
    }

    /// Plan a top-level query.
    pub fn plan_query(&self, stmt: &SelectStmt) -> DbResult<PlannedQuery> {
        self.max_param.set(0);
        let mut used = HashSet::new();
        let mut pq = self.plan_select(stmt, &[], &mut used)?;
        if !used.is_empty() {
            return Err(DbError::analysis("top-level query has unresolved outer references"));
        }
        pq.n_params = self.max_param.get();
        Ok(pq)
    }

    // ---------------------------------------------------------------------
    // SELECT planning
    // ---------------------------------------------------------------------

    fn plan_select(
        &self,
        stmt: &SelectStmt,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<PlannedQuery> {
        // 1. FROM resolution.
        let mut rels: Vec<Rel> = Vec::new();
        let mut join_conjuncts: Vec<Expr> = Vec::new();
        for tref in &stmt.from {
            self.collect_from(tref, &mut rels, &mut join_conjuncts, outer, used_outer)?;
        }
        if rels.is_empty() {
            // SELECT without FROM: one empty row.
            rels.push(Rel {
                schema: Schema::new(Vec::new()),
                source: RelSource::Derived(Plan::Values { rows: vec![vec![]] }),
                preds: Vec::new(),
                est_rows: 1.0,
            });
        }

        // 2. Predicate classification.
        let mut conjuncts: Vec<Expr> = join_conjuncts;
        if let Some(w) = &stmt.where_clause {
            conjuncts.extend(w.clone().split_conjuncts());
        }
        let mut equi_preds: Vec<EquiPred> = Vec::new();
        let mut post_preds: Vec<Expr> = Vec::new();
        for c in conjuncts {
            match self.classify_conjunct(&c, &rels)? {
                Classified::Single(i) => rels[i].preds.push(c),
                Classified::Equi { rel_a, col_a, rel_b, col_b } => {
                    let ndv = join_col_ndv(&rels[rel_a], &col_a)
                        .max(join_col_ndv(&rels[rel_b], &col_b))
                        .max(1.0);
                    equi_preds.push(EquiPred { rel_a, col_a, rel_b, col_b, consumed: false, ndv })
                }
                Classified::Post => post_preds.push(c),
            }
        }

        // 3. Access paths + per-relation cardinalities.
        let mut inputs: Vec<Built> = Vec::new();
        for (i, rel) in rels.iter_mut().enumerate() {
            let built = self.build_rel_access(rel, i, outer, used_outer)?;
            inputs.push(built);
        }

        // 4. Greedy join ordering.
        let mut joined = self.order_joins(inputs, &mut equi_preds, outer, used_outer)?;

        // 5. Post-join filters.
        if !post_preds.is_empty() {
            let pred_ast = Expr::conjunction(post_preds).expect("nonempty");
            let pred = self.bind_expr(&pred_ast, &joined.schema, outer, used_outer)?;
            joined.plan = Plan::Filter { input: Box::new(joined.plan), pred };
        }

        // 6. Aggregation.
        let mut agg_asts: Vec<Expr> = Vec::new();
        let collect_aggs = |e: &Expr, out: &mut Vec<Expr>| {
            e.visit(&mut |node| {
                if matches!(node, Expr::Agg { .. }) && !out.contains(node) {
                    out.push(node.clone());
                }
            });
        };
        for item in &stmt.projections {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggs(expr, &mut agg_asts);
            }
        }
        if let Some(h) = &stmt.having {
            collect_aggs(h, &mut agg_asts);
        }
        for o in &stmt.order_by {
            collect_aggs(&o.expr, &mut agg_asts);
        }
        let has_agg = !agg_asts.is_empty() || !stmt.group_by.is_empty();

        let (mut current_plan, mut current_schema) = (joined.plan, joined.schema);

        if has_agg {
            if stmt.having.is_some() && stmt.group_by.is_empty() && agg_asts.is_empty() {
                return Err(DbError::analysis("HAVING without aggregation"));
            }
            // Bind group keys and aggregate args against the join output.
            let mut groups: Vec<BExpr> = Vec::new();
            let mut group_cols: Vec<Column> = Vec::new();
            let mut group_quals: Vec<Option<String>> = Vec::new();
            for g in &stmt.group_by {
                let bound = self.bind_expr(g, &current_schema, outer, used_outer)?;
                let (name, qual, ty) = self.describe_output(g, &current_schema, group_cols.len());
                groups.push(bound);
                group_cols.push(Column::new(name, ty));
                group_quals.push(qual);
            }
            let mut aggs: Vec<AggSpec> = Vec::new();
            let mut agg_cols: Vec<Column> = Vec::new();
            for (i, a) in agg_asts.iter().enumerate() {
                let Expr::Agg { func, arg, distinct } = a else { unreachable!() };
                let bound_arg = match arg {
                    Some(e) => Some(self.bind_expr(e, &current_schema, outer, used_outer)?),
                    None => None,
                };
                aggs.push(AggSpec { func: *func, arg: bound_arg, distinct: *distinct });
                let ty = match func {
                    AggFunc::Count => DataType::Int,
                    _ => DataType::Decimal { precision: 18, scale: 6 },
                };
                agg_cols.push(Column::new(format!("AGG_{i}"), ty));
            }
            current_plan = Plan::Aggregate { input: Box::new(current_plan), groups, aggs };
            // Aggregate output schema: group keys then aggregates.
            let mut schema = Schema::new(Vec::new());
            for (c, q) in group_cols.iter().zip(&group_quals) {
                let s = match q {
                    Some(q) => Schema::qualified(vec![c.clone()], q),
                    None => Schema::new(vec![c.clone()]),
                };
                schema = schema.join(&s);
            }
            schema = schema.join(&Schema::new(agg_cols));
            current_schema = schema;

            // HAVING.
            if let Some(h) = &stmt.having {
                let pred = self.bind_post_agg(
                    h,
                    &stmt.group_by,
                    &agg_asts,
                    &current_schema,
                    outer,
                    used_outer,
                )?;
                current_plan = Plan::Filter { input: Box::new(current_plan), pred };
            }

            // Projections (post-aggregation).
            let (exprs, out_schema, proj_names) = self.bind_projections_post_agg(
                stmt,
                &stmt.group_by,
                &agg_asts,
                &current_schema,
                outer,
                used_outer,
            )?;
            current_plan = Plan::Project { input: Box::new(current_plan), exprs };
            let pre_sort_schema = current_schema;
            current_schema = out_schema;

            self.finish_select(
                stmt,
                current_plan,
                current_schema,
                proj_names,
                Some((pre_sort_schema, agg_asts)),
                outer,
                used_outer,
            )
        } else {
            // Projections (no aggregation).
            let (exprs, out_schema, proj_names) =
                self.bind_projections_plain(stmt, &current_schema, outer, used_outer)?;
            let pre_schema = current_schema.clone();
            current_plan = Plan::Project { input: Box::new(current_plan), exprs };
            current_schema = out_schema;
            self.finish_select(
                stmt,
                current_plan,
                current_schema,
                proj_names,
                Some((pre_schema, Vec::new())),
                outer,
                used_outer,
            )
        }
    }

    /// DISTINCT, ORDER BY, LIMIT — common tail of SELECT planning.
    #[allow(clippy::too_many_arguments)]
    fn finish_select(
        &self,
        stmt: &SelectStmt,
        mut plan: Plan,
        schema: Schema,
        proj_names: Vec<String>,
        _pre: Option<(Schema, Vec<Expr>)>,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<PlannedQuery> {
        if stmt.distinct {
            plan = Plan::Distinct { input: Box::new(plan) };
        }
        if !stmt.order_by.is_empty() {
            let mut keys: Vec<(BExpr, bool)> = Vec::new();
            for item in &stmt.order_by {
                let key =
                    self.resolve_order_key(&item.expr, &proj_names, &schema, outer, used_outer)?;
                keys.push((key, item.desc));
            }
            plan = Plan::Sort { input: Box::new(plan), keys };
        }
        if let Some(n) = stmt.limit {
            plan = Plan::Limit { input: Box::new(plan), n };
        }
        Ok(PlannedQuery { plan, schema, n_params: 0 })
    }

    /// Resolve one ORDER BY expression against the projection output:
    /// by alias, by ordinal, or by re-binding against the output schema.
    fn resolve_order_key(
        &self,
        e: &Expr,
        proj_names: &[String],
        out_schema: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<BExpr> {
        // Ordinal: ORDER BY 1
        if let Expr::Literal(Value::Int(n)) = e {
            let idx = *n as usize;
            if idx == 0 || idx > proj_names.len() {
                return Err(DbError::analysis(format!("ORDER BY position {n} out of range")));
            }
            return Ok(BExpr::Column(idx - 1));
        }
        // Output alias.
        if let Expr::Column { qualifier: None, name } = e {
            if let Some(i) = proj_names.iter().position(|p| p == name) {
                return Ok(BExpr::Column(i));
            }
        }
        // Re-bind against the output schema (output columns carry their
        // source names, so `ORDER BY o_orderdate` works when projected).
        self.bind_expr(e, out_schema, outer, used_outer)
    }

    // ---------------------------------------------------------------------
    // FROM handling
    // ---------------------------------------------------------------------

    fn collect_from(
        &self,
        tref: &TableRef,
        rels: &mut Vec<Rel>,
        join_conjuncts: &mut Vec<Expr>,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<()> {
        match tref {
            TableRef::Named { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(table) = self.catalog.try_table(name) {
                    let schema = table.schema.with_qualifier(binding);
                    rels.push(Rel {
                        schema,
                        source: RelSource::Base(table),
                        preds: Vec::new(),
                        est_rows: 0.0,
                    });
                    return Ok(());
                }
                if let Some(view) = self.catalog.view(name) {
                    let mut sub_used = HashSet::new();
                    let pq = self.plan_select(&view, &[], &mut sub_used)?;
                    let card = 1000.0; // views: no stats; modest default
                    rels.push(Rel {
                        schema: pq.schema.with_qualifier(binding),
                        source: RelSource::Derived(pq.plan),
                        preds: Vec::new(),
                        est_rows: card,
                    });
                    return Ok(());
                }
                if let Some(mv) = self.catalog.monitor_view(name) {
                    rels.push(Rel {
                        schema: mv.schema().with_qualifier(binding),
                        source: RelSource::Derived(Plan::MonitorScan { view: mv }),
                        preds: Vec::new(),
                        est_rows: 100.0,
                    });
                    return Ok(());
                }
                Err(DbError::catalog(format!("no table or view '{name}'")))
            }
            TableRef::Subquery { query, alias } => {
                let pq = self.plan_select(query, outer, used_outer)?;
                rels.push(Rel {
                    schema: pq.schema.with_qualifier(alias),
                    source: RelSource::Derived(pq.plan),
                    preds: Vec::new(),
                    est_rows: 1000.0,
                });
                Ok(())
            }
            TableRef::Join { left, right, kind, on } => match kind {
                JoinKind::Inner => {
                    self.collect_from(left, rels, join_conjuncts, outer, used_outer)?;
                    self.collect_from(right, rels, join_conjuncts, outer, used_outer)?;
                    join_conjuncts.extend(on.clone().split_conjuncts());
                    Ok(())
                }
                JoinKind::LeftOuter => {
                    // Outer joins are planned structurally (no reordering).
                    let (plan, schema) = self.plan_join_block(tref, outer, used_outer)?;
                    rels.push(Rel {
                        schema,
                        source: RelSource::Derived(plan),
                        preds: Vec::new(),
                        est_rows: 10_000.0,
                    });
                    Ok(())
                }
            },
        }
    }

    /// Structural planning for a join tree containing outer joins.
    fn plan_join_block(
        &self,
        tref: &TableRef,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<(Plan, Schema)> {
        match tref {
            TableRef::Named { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(table) = self.catalog.try_table(name) {
                    let schema = table.schema.with_qualifier(binding);
                    return Ok((Plan::SeqScan { table, filter: None }, schema));
                }
                if let Some(view) = self.catalog.view(name) {
                    let mut sub_used = HashSet::new();
                    let pq = self.plan_select(&view, &[], &mut sub_used)?;
                    return Ok((pq.plan, pq.schema.with_qualifier(binding)));
                }
                if let Some(mv) = self.catalog.monitor_view(name) {
                    let schema = mv.schema().with_qualifier(binding);
                    return Ok((Plan::MonitorScan { view: mv }, schema));
                }
                Err(DbError::catalog(format!("no table or view '{name}'")))
            }
            TableRef::Subquery { query, alias } => {
                let pq = self.plan_select(query, outer, used_outer)?;
                Ok((pq.plan, pq.schema.with_qualifier(alias)))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lplan, lschema) = self.plan_join_block(left, outer, used_outer)?;
                let (rplan, rschema) = self.plan_join_block(right, outer, used_outer)?;
                let combined = lschema.join(&rschema);
                // Try to use a hash join for a single equi conjunct set.
                let conjs = on.clone().split_conjuncts();
                let mut lkeys = Vec::new();
                let mut rkeys = Vec::new();
                let mut residual = Vec::new();
                for c in conjs {
                    if let Expr::Binary { left: a, op: BinOp::Eq, right: b } = &c {
                        let a_left = self.binds_fully(a, &lschema);
                        let b_right = self.binds_fully(b, &rschema);
                        let a_right = self.binds_fully(a, &rschema);
                        let b_left = self.binds_fully(b, &lschema);
                        if a_left && b_right {
                            lkeys.push(self.bind_expr(a, &lschema, outer, used_outer)?);
                            rkeys.push(self.bind_expr(b, &rschema, outer, used_outer)?);
                            continue;
                        }
                        if a_right && b_left {
                            lkeys.push(self.bind_expr(b, &lschema, outer, used_outer)?);
                            rkeys.push(self.bind_expr(a, &rschema, outer, used_outer)?);
                            continue;
                        }
                    }
                    residual.push(c);
                }
                let right_width = rschema.len();
                if !lkeys.is_empty() && self.config.enable_hash_join {
                    let residual_pred = match Expr::conjunction(residual) {
                        Some(p) => Some(self.bind_expr(&p, &combined, outer, used_outer)?),
                        None => None,
                    };
                    Ok((
                        Plan::HashJoin {
                            left: Box::new(lplan),
                            right: Box::new(rplan),
                            left_keys: lkeys,
                            right_keys: rkeys,
                            residual: residual_pred,
                            kind: *kind,
                            right_width,
                        },
                        combined,
                    ))
                } else {
                    let on_pred = match Expr::conjunction(residual) {
                        Some(p) => Some(self.bind_expr(&p, &combined, outer, used_outer)?),
                        None => None,
                    };
                    Ok((
                        Plan::NLJoin {
                            left: Box::new(lplan),
                            right: Box::new(rplan),
                            kind: *kind,
                            on: on_pred,
                            right_correlated: false,
                            right_width,
                        },
                        combined,
                    ))
                }
            }
        }
    }

    /// Does `e` bind fully against `schema` (ignoring outer scopes)?
    fn binds_fully(&self, e: &Expr, schema: &Schema) -> bool {
        let refs = e.column_refs();
        !refs.is_empty()
            && refs.iter().all(|(q, n)| schema.try_resolve(q.as_deref(), n).is_some())
            && !has_subquery(e)
    }

    // ---------------------------------------------------------------------
    // Conjunct classification
    // ---------------------------------------------------------------------

    fn classify_conjunct(&self, c: &Expr, rels: &[Rel]) -> DbResult<Classified> {
        if has_subquery(c) {
            return Ok(Classified::Post);
        }
        let refs = c.column_refs();
        let mut rel_set: Vec<usize> = Vec::new();
        for (q, n) in &refs {
            let mut found: Option<usize> = None;
            for (i, rel) in rels.iter().enumerate() {
                if rel.schema.try_resolve(q.as_deref(), n).is_some() {
                    if found.is_some() && found != Some(i) {
                        return Err(DbError::analysis(format!("ambiguous column '{n}'")));
                    }
                    found = Some(i);
                }
            }
            if let Some(i) = found {
                if !rel_set.contains(&i) {
                    rel_set.push(i);
                }
            }
            // Unresolved refs may be outer correlation — handled at binding.
        }
        match rel_set.len() {
            0 => Ok(if rels.len() == 1 { Classified::Single(0) } else { Classified::Post }),
            1 => Ok(Classified::Single(rel_set[0])),
            2 => {
                if let Expr::Binary { left, op: BinOp::Eq, right } = c {
                    if let (Expr::Column { .. }, Expr::Column { .. }) =
                        (left.as_ref(), right.as_ref())
                    {
                        let (q1, n1) = &refs[0];
                        let left_rel = rels
                            .iter()
                            .position(|r| r.schema.try_resolve(q1.as_deref(), n1).is_some());
                        if let Some(la) = left_rel {
                            let other = if rel_set[0] == la { rel_set[1] } else { rel_set[0] };
                            return Ok(Classified::Equi {
                                rel_a: la,
                                col_a: (**left).clone(),
                                rel_b: other,
                                col_b: (**right).clone(),
                            });
                        }
                    }
                }
                Ok(Classified::Post)
            }
            _ => Ok(Classified::Post),
        }
    }

    // ---------------------------------------------------------------------
    // Access-path selection
    // ---------------------------------------------------------------------

    fn build_rel_access(
        &self,
        rel: &mut Rel,
        _idx: usize,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<Built> {
        match &rel.source {
            RelSource::Derived(_) => {
                // Take the plan out; apply predicates as a filter.
                let RelSource::Derived(plan) = std::mem::replace(
                    &mut rel.source,
                    RelSource::Derived(Plan::Values { rows: vec![] }),
                ) else {
                    unreachable!()
                };
                let mut plan = plan;
                if !rel.preds.is_empty() {
                    let pred_ast = Expr::conjunction(rel.preds.clone()).expect("nonempty");
                    let pred = self.bind_expr(&pred_ast, &rel.schema, outer, used_outer)?;
                    plan = Plan::Filter { input: Box::new(plan), pred };
                }
                Ok(Built {
                    plan,
                    schema: rel.schema.clone(),
                    card: rel.est_rows.max(1.0),
                    rels: HashSet::new(),
                })
            }
            RelSource::Base(table) => {
                let table = Arc::clone(table);
                let stats = table.stats.read().clone();
                let (base_rows, base_pages) = if stats.analyzed {
                    (stats.row_count as f64, stats.pages.max(1) as f64)
                } else {
                    // No statistics yet: fall back to live heap counters so
                    // scan costing is still sane on freshly loaded tables.
                    (table.row_count() as f64, table.heap.page_count().max(1) as f64)
                };
                let base_rows = base_rows.max(1.0);

                let schema = rel.schema.clone();
                let resolve_local =
                    |q: Option<&str>, n: &str| -> Option<usize> { schema.try_resolve(q, n) };

                // Selectivity of all single-table predicates.
                let mut sel = 1.0;
                for p in &rel.preds {
                    sel *= conjunct_selectivity(p, &stats, &resolve_local, &self.config);
                }
                let est_rows = (base_rows * sel).max(1.0);

                // Sarg extraction.
                let constantish = |e: &Expr| -> Option<bool> {
                    if has_subquery(e) || e.contains_aggregate() {
                        return None;
                    }
                    let refs = e.column_refs();
                    let mut unknown = e.contains_param();
                    for (q, n) in &refs {
                        if schema.try_resolve(q.as_deref(), n).is_some() {
                            return None; // references the local table
                        }
                        unknown = true; // outer reference: value unknown at plan time
                    }
                    Some(unknown)
                };
                let sargs = extract_sargs(&rel.preds, &resolve_local, &constantish);

                // Candidate index accesses.
                let mut best: Option<(Arc<crate::catalog::Index>, IndexAccess, f64)> = None;
                for index in table.indexes.read().iter() {
                    if let Some(access) = match_index(&index.columns, &sargs) {
                        let acc_sel = self.access_selectivity(&access, &stats, &schema);
                        let better = match &best {
                            None => true,
                            Some((_, _, s)) => acc_sel < *s,
                        };
                        if better {
                            best = Some((Arc::clone(index), access, acc_sel));
                        }
                    }
                }

                let cal = &self.config.calibration;
                let scan_cost = base_pages * cal.ms_seq_page_read + base_rows * cal.ms_db_tuple;

                let use_index = match &best {
                    None => false,
                    Some((index, access, acc_sel)) => {
                        if access.involves_unknown()
                            && self.config.blind_param_plans
                            && *acc_sel < 0.3
                        {
                            // §4.1: the optimizer cannot see the constant and
                            // blindly prefers the index (rule-based fallback).
                            true
                        } else {
                            let matching = base_rows * acc_sel;
                            let index_cost = (index.height() as f64 + matching)
                                * cal.ms_rand_page_read
                                + matching * cal.ms_db_tuple;
                            index_cost < scan_cost
                        }
                    }
                };

                let plan = if use_index {
                    let (index, access, _) = best.expect("use_index implies candidate");
                    self.build_index_scan(&table, index, access, rel, &schema, outer, used_outer)?
                } else {
                    let filter = match Expr::conjunction(rel.preds.clone()) {
                        Some(p) => Some(self.bind_expr(&p, &schema, outer, used_outer)?),
                        None => None,
                    };
                    Plan::SeqScan { table: Arc::clone(&table), filter }
                };
                Ok(Built { plan, schema, card: est_rows, rels: HashSet::new() })
            }
        }
    }

    fn access_selectivity(
        &self,
        access: &IndexAccess,
        stats: &crate::catalog::TableStats,
        schema: &Schema,
    ) -> f64 {
        let resolve = |q: Option<&str>, n: &str| schema.try_resolve(q, n);
        let mut sel = 1.0;
        for s in &access.eq_sargs {
            sel *= self.sarg_selectivity(s, stats, &resolve);
        }
        let mut range = 1.0;
        if let Some(s) = &access.lower {
            range *= self.sarg_selectivity(s, stats, &resolve);
        }
        if let Some(s) = &access.upper {
            range *= self.sarg_selectivity(s, stats, &resolve);
        }
        sel * range
    }

    fn sarg_selectivity(
        &self,
        s: &Sarg,
        stats: &crate::catalog::TableStats,
        _resolve: &dyn Fn(Option<&str>, &str) -> Option<usize>,
    ) -> f64 {
        use crate::planner::selectivity::{cmp_selectivity, default_for};
        let col_stats = if stats.analyzed { stats.columns.get(s.column) } else { None };
        if let Expr::Literal(v) = &s.rhs {
            cmp_selectivity(s.op, v, col_stats, &self.config)
        } else if s.op == crate::sql::ast::BinOp::Eq {
            // Equality against an unknown constant: 1/NDV is still a sound
            // estimate (the classic System R rule). This keeps the blind
            // optimizer from treating a one-valued column (e.g. SAP's
            // MANDT client) as selective.
            match col_stats {
                Some(st) if st.n_distinct > 0 => 1.0 / st.n_distinct as f64,
                _ => default_for(s.op, &self.config),
            }
        } else {
            default_for(s.op, &self.config)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_index_scan(
        &self,
        table: &Arc<Table>,
        index: Arc<crate::catalog::Index>,
        access: IndexAccess,
        rel: &Rel,
        schema: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<Plan> {
        // Bind the bound-value expressions. They must not reference local
        // columns (guaranteed by sarg extraction) — bind against an empty
        // current schema so local refs error out loudly.
        let empty = Schema::new(Vec::new());
        let mut eq_vals: Vec<BExpr> = Vec::new();
        for s in &access.eq_sargs {
            eq_vals.push(self.bind_expr(&s.rhs, &empty, outer, used_outer)?);
        }
        let mut lower_vals = eq_vals.clone();
        let mut lower_inclusive = true;
        let mut lower = if eq_vals.is_empty() { None } else { Some(()) };
        if let Some(s) = &access.lower {
            lower_vals.push(self.bind_expr(&s.rhs, &empty, outer, used_outer)?);
            lower_inclusive = s.op == BinOp::GtEq;
            lower = Some(());
        }
        let mut upper_vals = eq_vals.clone();
        let mut upper_inclusive = true;
        let mut upper = if eq_vals.is_empty() { None } else { Some(()) };
        if let Some(s) = &access.upper {
            upper_vals.push(self.bind_expr(&s.rhs, &empty, outer, used_outer)?);
            upper_inclusive = s.op == BinOp::LtEq;
            upper = Some(());
        }
        let consumed = access.consumed_conjuncts();
        let residual_asts: Vec<Expr> = rel
            .preds
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed.contains(i))
            .map(|(_, p)| p.clone())
            .collect();
        let residual = match Expr::conjunction(residual_asts) {
            Some(p) => Some(self.bind_expr(&p, schema, outer, used_outer)?),
            None => None,
        };
        Ok(Plan::IndexScan {
            table: Arc::clone(table),
            index,
            lower: lower.map(|_| IndexKeyBound { values: lower_vals, inclusive: lower_inclusive }),
            upper: upper.map(|_| IndexKeyBound { values: upper_vals, inclusive: upper_inclusive }),
            residual,
        })
    }

    // ---------------------------------------------------------------------
    // Join ordering
    // ---------------------------------------------------------------------

    fn order_joins(
        &self,
        mut inputs: Vec<Built>,
        equi_preds: &mut [EquiPred],
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<Built> {
        for (i, b) in inputs.iter_mut().enumerate() {
            b.rels.insert(i);
        }
        if inputs.len() == 1 {
            return Ok(inputs.pop().expect("one input"));
        }
        // Start with the smallest relation.
        let start = inputs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.card.total_cmp(&b.card))
            .map(|(i, _)| i)
            .expect("nonempty");
        let mut remaining: Vec<Built> = Vec::new();
        let mut current: Option<Built> = None;
        for (i, b) in inputs.into_iter().enumerate() {
            if i == start {
                current = Some(b);
            } else {
                remaining.push(b);
            }
        }
        let mut current = current.expect("start chosen");

        while !remaining.is_empty() {
            // Find the connected relation producing the smallest join.
            let mut best: Option<(usize, f64, Vec<usize>)> = None; // (idx in remaining, est card, pred idxs)
            for (ri, r) in remaining.iter().enumerate() {
                let preds: Vec<usize> = equi_preds
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        !p.consumed
                            && ((current.rels.contains(&p.rel_a) && r.rels.contains(&p.rel_b))
                                || (current.rels.contains(&p.rel_b) && r.rels.contains(&p.rel_a)))
                    })
                    .map(|(i, _)| i)
                    .collect();
                if preds.is_empty() {
                    continue;
                }
                // Join selectivity: product over the predicates of
                // 1/max(NDV of the join columns) — System R's estimate.
                let mut sel = 1.0f64;
                for &pi in &preds {
                    sel *= 1.0 / equi_preds[pi].ndv;
                }
                let est = (current.card * r.card * sel).max(1.0);
                let better = match &best {
                    None => true,
                    Some((_, c, _)) => est < *c,
                };
                if better {
                    best = Some((ri, est, preds));
                }
            }
            let (ri, est, pred_idxs) = match best {
                Some(b) => b,
                None => {
                    // Disconnected: cross join with the smallest remaining.
                    let ri = remaining
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.card.total_cmp(&b.card))
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    let est = current.card * remaining[ri].card;
                    (ri, est, Vec::new())
                }
            };
            let next = remaining.remove(ri);
            current =
                self.make_join(current, next, est, pred_idxs, equi_preds, outer, used_outer)?;
        }
        Ok(current)
    }

    #[allow(clippy::too_many_arguments)]
    fn make_join(
        &self,
        a: Built,
        b: Built,
        est: f64,
        pred_idxs: Vec<usize>,
        equi_preds: &mut [EquiPred],
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<Built> {
        // Build on the smaller side.
        let (build, probe) = if a.card <= b.card { (a, b) } else { (b, a) };
        let schema = build.schema.join(&probe.schema);
        let mut rels = build.rels.clone();
        rels.extend(&probe.rels);
        if pred_idxs.is_empty() || !self.config.enable_hash_join {
            // Cross/NL join; bind consumed equi preds as ON if present.
            let mut on_asts = Vec::new();
            for &pi in &pred_idxs {
                let p = &mut equi_preds[pi];
                p.consumed = true;
                on_asts.push(Expr::binary(p.col_a.clone(), BinOp::Eq, p.col_b.clone()));
            }
            let on = match Expr::conjunction(on_asts) {
                Some(p) => Some(self.bind_expr(&p, &schema, outer, used_outer)?),
                None => None,
            };
            let right_width = probe.schema.len();
            return Ok(Built {
                plan: Plan::NLJoin {
                    left: Box::new(build.plan),
                    right: Box::new(probe.plan),
                    kind: JoinKind::Inner,
                    on,
                    right_correlated: false,
                    right_width,
                },
                schema,
                card: est,
                rels,
            });
        }
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        for &pi in &pred_idxs {
            let p = &mut equi_preds[pi];
            p.consumed = true;
            // Which side does col_a live on?
            let a_on_build = self.binds_fully(&p.col_a, &build.schema);
            let (bk, pk) = if a_on_build { (&p.col_a, &p.col_b) } else { (&p.col_b, &p.col_a) };
            left_keys.push(self.bind_expr(bk, &build.schema, outer, used_outer)?);
            right_keys.push(self.bind_expr(pk, &probe.schema, outer, used_outer)?);
        }
        let right_width = probe.schema.len();
        Ok(Built {
            plan: Plan::HashJoin {
                left: Box::new(build.plan),
                right: Box::new(probe.plan),
                left_keys,
                right_keys,
                residual: None,
                kind: JoinKind::Inner,
                right_width,
            },
            schema,
            card: est,
            rels,
        })
    }

    // ---------------------------------------------------------------------
    // Projections
    // ---------------------------------------------------------------------

    fn bind_projections_plain(
        &self,
        stmt: &SelectStmt,
        input: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<(Vec<BExpr>, Schema, Vec<String>)> {
        let mut exprs = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        let mut quals: Vec<Option<String>> = Vec::new();
        let mut names = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard => {
                    for i in 0..input.len() {
                        exprs.push(BExpr::Column(i));
                        cols.push(input.column(i).clone());
                        quals.push(input.qualifier(i).map(|s| s.to_string()));
                        names.push(input.column(i).name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for i in 0..input.len() {
                        if input.qualifier(i) == Some(q.to_ascii_uppercase().as_str()) {
                            exprs.push(BExpr::Column(i));
                            cols.push(input.column(i).clone());
                            quals.push(Some(q.clone()));
                            names.push(input.column(i).name.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(DbError::analysis(format!("unknown qualifier '{q}.*'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, input, outer, used_outer)?;
                    let (name, qual, ty) = match alias {
                        Some(a) => (a.clone(), None, self.infer_type(expr, input)),
                        None => self.describe_output(expr, input, exprs.len()),
                    };
                    exprs.push(bound);
                    names.push(name.clone());
                    cols.push(Column::new(name, ty));
                    quals.push(qual);
                }
            }
        }
        let schema = schema_from(cols, quals);
        Ok((exprs, schema, names))
    }

    #[allow(clippy::too_many_arguments)]
    fn bind_projections_post_agg(
        &self,
        stmt: &SelectStmt,
        group_by: &[Expr],
        agg_asts: &[Expr],
        agg_schema: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<(Vec<BExpr>, Schema, Vec<String>)> {
        let mut exprs = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        let mut quals: Vec<Option<String>> = Vec::new();
        let mut names = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(DbError::analysis("* not allowed with GROUP BY/aggregates"));
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self
                        .bind_post_agg(expr, group_by, agg_asts, agg_schema, outer, used_outer)?;
                    let (name, qual, ty) = match alias {
                        Some(a) => (a.clone(), None, self.infer_type(expr, agg_schema)),
                        None => self.describe_output(expr, agg_schema, exprs.len()),
                    };
                    exprs.push(bound);
                    names.push(name.clone());
                    cols.push(Column::new(name, ty));
                    quals.push(qual);
                }
            }
        }
        let schema = schema_from(cols, quals);
        Ok((exprs, schema, names))
    }

    /// Bind an expression in the post-aggregation scope: GROUP BY
    /// expressions and aggregate calls become columns of the Aggregate
    /// operator's output; anything else must be composed of those.
    fn bind_post_agg(
        &self,
        e: &Expr,
        group_by: &[Expr],
        agg_asts: &[Expr],
        agg_schema: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<BExpr> {
        if let Some(i) = group_by.iter().position(|g| g == e) {
            return Ok(BExpr::Column(i));
        }
        if let Some(i) = agg_asts.iter().position(|a| a == e) {
            return Ok(BExpr::Column(group_by.len() + i));
        }
        let rec = |x: &Expr, u: &mut HashSet<usize>| {
            self.bind_post_agg(x, group_by, agg_asts, agg_schema, outer, u)
        };
        match e {
            Expr::Column { qualifier, name } => {
                // A bare column not in GROUP BY is an error — unless it
                // names an outer scope (correlated HAVING).
                if let Some(b) =
                    self.try_bind_outer(qualifier.as_deref(), name, outer, used_outer)?
                {
                    return Ok(b);
                }
                Err(DbError::analysis(format!(
                    "column '{name}' must appear in GROUP BY or an aggregate"
                )))
            }
            Expr::Literal(v) => Ok(BExpr::Literal(v.clone())),
            Expr::Param(i) => {
                self.note_param(*i);
                Ok(BExpr::Param(*i))
            }
            Expr::Unary { op, expr } => {
                let inner = rec(expr, used_outer)?;
                Ok(match op {
                    crate::sql::ast::UnaryOp::Neg => BExpr::Neg(inner.boxed()),
                    crate::sql::ast::UnaryOp::Not => BExpr::Not(inner.boxed()),
                })
            }
            Expr::Binary { left, op, right } => Ok(BExpr::Binary {
                left: rec(left, used_outer)?.boxed(),
                op: *op,
                right: rec(right, used_outer)?.boxed(),
            }),
            Expr::Between { expr, low, high, negated } => Ok(BExpr::Between {
                expr: rec(expr, used_outer)?.boxed(),
                low: rec(low, used_outer)?.boxed(),
                high: rec(high, used_outer)?.boxed(),
                negated: *negated,
            }),
            Expr::InList { expr, list, negated } => Ok(BExpr::InList {
                expr: rec(expr, used_outer)?.boxed(),
                list: list
                    .iter()
                    .map(|x| {
                        self.bind_post_agg(x, group_by, agg_asts, agg_schema, outer, used_outer)
                    })
                    .collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            Expr::Like { expr, pattern, negated } => Ok(BExpr::Like {
                expr: rec(expr, used_outer)?.boxed(),
                pattern: rec(pattern, used_outer)?.boxed(),
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => {
                Ok(BExpr::IsNull { expr: rec(expr, used_outer)?.boxed(), negated: *negated })
            }
            Expr::Case { branches, else_expr } => Ok(BExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.bind_post_agg(
                                c, group_by, agg_asts, agg_schema, outer, used_outer,
                            )?,
                            self.bind_post_agg(
                                r, group_by, agg_asts, agg_schema, outer, used_outer,
                            )?,
                        ))
                    })
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(x) => Some(rec(x, used_outer)?.boxed()),
                    None => None,
                },
            }),
            Expr::Extract { unit, expr } => {
                Ok(BExpr::Extract { unit: *unit, expr: rec(expr, used_outer)?.boxed() })
            }
            Expr::IntervalAdd { expr, amount, unit } => Ok(BExpr::IntervalAdd {
                expr: rec(expr, used_outer)?.boxed(),
                amount: *amount,
                unit: *unit,
            }),
            Expr::Func { name, args } => {
                let (func, arity) = ScalarFunc::from_name(name)
                    .ok_or_else(|| DbError::analysis(format!("unknown function '{name}'")))?;
                if args.len() != arity {
                    return Err(DbError::analysis(format!("{name} expects {arity} arguments")));
                }
                Ok(BExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|x| {
                            self.bind_post_agg(x, group_by, agg_asts, agg_schema, outer, used_outer)
                        })
                        .collect::<DbResult<_>>()?,
                })
            }
            Expr::ScalarSubquery(q) => {
                self.bind_subquery(q, SubKindTag::Scalar, None, agg_schema, outer, used_outer)
            }
            Expr::Exists { query, negated } => self.bind_subquery(
                query,
                SubKindTag::Exists(*negated),
                None,
                agg_schema,
                outer,
                used_outer,
            ),
            Expr::InSubquery { expr, query, negated } => {
                let lhs = rec(expr, used_outer)?;
                self.bind_subquery(
                    query,
                    SubKindTag::In(*negated),
                    Some(lhs),
                    agg_schema,
                    outer,
                    used_outer,
                )
            }
            Expr::Agg { .. } => Err(DbError::analysis(
                "aggregate expression not collected — nested aggregates are not supported",
            )),
        }
    }

    /// Output column naming & typing for a projection item without alias.
    fn describe_output(
        &self,
        e: &Expr,
        input: &Schema,
        idx: usize,
    ) -> (String, Option<String>, DataType) {
        if let Expr::Column { qualifier, name } = e {
            if let Some(i) = input.try_resolve(qualifier.as_deref(), name) {
                return (
                    input.column(i).name.clone(),
                    input.qualifier(i).map(|s| s.to_string()),
                    input.column(i).ty,
                );
            }
            return (name.clone(), qualifier.clone(), DataType::VarChar(64));
        }
        (format!("EXPR_{idx}"), None, self.infer_type(e, input))
    }

    fn infer_type(&self, e: &Expr, input: &Schema) -> DataType {
        match e {
            Expr::Column { qualifier, name } => input
                .try_resolve(qualifier.as_deref(), name)
                .map(|i| input.column(i).ty)
                .unwrap_or(DataType::VarChar(64)),
            Expr::Literal(Value::Int(_)) => DataType::Int,
            Expr::Literal(Value::Decimal(_)) => DataType::Decimal { precision: 18, scale: 6 },
            Expr::Literal(Value::Str(_)) => DataType::VarChar(128),
            Expr::Literal(Value::Date(_)) => DataType::Date,
            Expr::Literal(Value::Bool(_)) => DataType::Bool,
            Expr::Agg { func: AggFunc::Count, .. } => DataType::Int,
            Expr::Agg { .. } => DataType::Decimal { precision: 18, scale: 6 },
            Expr::Binary { op, .. } if op.is_comparison() => DataType::Bool,
            Expr::Binary { .. } | Expr::Unary { .. } => {
                DataType::Decimal { precision: 18, scale: 6 }
            }
            Expr::Extract { .. } => DataType::Int,
            Expr::IntervalAdd { .. } => DataType::Date,
            Expr::Case { branches, .. } => branches
                .first()
                .map(|(_, r)| self.infer_type(r, input))
                .unwrap_or(DataType::VarChar(64)),
            Expr::Func { name, .. } => match name.as_str() {
                "LENGTH" => DataType::Int,
                "VENDOR_CONTAINS" => DataType::Bool,
                _ => DataType::VarChar(128),
            },
            _ => DataType::Bool,
        }
    }

    // ---------------------------------------------------------------------
    // Expression binding (pre-aggregation scope)
    // ---------------------------------------------------------------------

    fn note_param(&self, i: usize) {
        if i + 1 > self.max_param.get() {
            self.max_param.set(i + 1);
        }
    }

    fn try_bind_outer(
        &self,
        qualifier: Option<&str>,
        name: &str,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<Option<BExpr>> {
        // Innermost enclosing frame first.
        for (dist, frame_abs) in (0..outer.len()).rev().enumerate() {
            match outer[frame_abs].resolve_opt(qualifier, name)? {
                Some(idx) => {
                    used_outer.insert(frame_abs);
                    return Ok(Some(BExpr::Outer { depth: dist + 1, index: idx }));
                }
                None => continue,
            }
        }
        Ok(None)
    }

    pub(crate) fn bind_expr(
        &self,
        e: &Expr,
        current: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<BExpr> {
        match e {
            Expr::Column { qualifier, name } => {
                if let Some(idx) = current.resolve_opt(qualifier.as_deref(), name)? {
                    return Ok(BExpr::Column(idx));
                }
                if let Some(b) =
                    self.try_bind_outer(qualifier.as_deref(), name, outer, used_outer)?
                {
                    return Ok(b);
                }
                let full = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                };
                Err(DbError::analysis(format!("unknown column '{full}'")))
            }
            Expr::Literal(v) => Ok(BExpr::Literal(v.clone())),
            Expr::Param(i) => {
                self.note_param(*i);
                Ok(BExpr::Param(*i))
            }
            Expr::Unary { op, expr } => {
                let inner = self.bind_expr(expr, current, outer, used_outer)?;
                Ok(match op {
                    crate::sql::ast::UnaryOp::Neg => BExpr::Neg(inner.boxed()),
                    crate::sql::ast::UnaryOp::Not => BExpr::Not(inner.boxed()),
                })
            }
            Expr::Binary { left, op, right } => Ok(BExpr::Binary {
                left: self.bind_expr(left, current, outer, used_outer)?.boxed(),
                op: *op,
                right: self.bind_expr(right, current, outer, used_outer)?.boxed(),
            }),
            Expr::Between { expr, low, high, negated } => Ok(BExpr::Between {
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
                low: self.bind_expr(low, current, outer, used_outer)?.boxed(),
                high: self.bind_expr(high, current, outer, used_outer)?.boxed(),
                negated: *negated,
            }),
            Expr::InList { expr, list, negated } => Ok(BExpr::InList {
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
                list: list
                    .iter()
                    .map(|x| self.bind_expr(x, current, outer, used_outer))
                    .collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            Expr::Like { expr, pattern, negated } => Ok(BExpr::Like {
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
                pattern: self.bind_expr(pattern, current, outer, used_outer)?.boxed(),
                negated: *negated,
            }),
            Expr::IsNull { expr, negated } => Ok(BExpr::IsNull {
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
                negated: *negated,
            }),
            Expr::Case { branches, else_expr } => Ok(BExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.bind_expr(c, current, outer, used_outer)?,
                            self.bind_expr(r, current, outer, used_outer)?,
                        ))
                    })
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(x) => Some(self.bind_expr(x, current, outer, used_outer)?.boxed()),
                    None => None,
                },
            }),
            Expr::Extract { unit, expr } => Ok(BExpr::Extract {
                unit: *unit,
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
            }),
            Expr::IntervalAdd { expr, amount, unit } => Ok(BExpr::IntervalAdd {
                expr: self.bind_expr(expr, current, outer, used_outer)?.boxed(),
                amount: *amount,
                unit: *unit,
            }),
            Expr::Func { name, args } => {
                let (func, arity) = ScalarFunc::from_name(name)
                    .ok_or_else(|| DbError::analysis(format!("unknown function '{name}'")))?;
                if args.len() != arity {
                    return Err(DbError::analysis(format!("{name} expects {arity} arguments")));
                }
                Ok(BExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|x| self.bind_expr(x, current, outer, used_outer))
                        .collect::<DbResult<_>>()?,
                })
            }
            Expr::ScalarSubquery(q) => {
                self.bind_subquery(q, SubKindTag::Scalar, None, current, outer, used_outer)
            }
            Expr::Exists { query, negated } => self.bind_subquery(
                query,
                SubKindTag::Exists(*negated),
                None,
                current,
                outer,
                used_outer,
            ),
            Expr::InSubquery { expr, query, negated } => {
                let lhs = self.bind_expr(expr, current, outer, used_outer)?;
                self.bind_subquery(
                    query,
                    SubKindTag::In(*negated),
                    Some(lhs),
                    current,
                    outer,
                    used_outer,
                )
            }
            Expr::Agg { .. } => {
                Err(DbError::analysis("aggregate function not allowed in this context"))
            }
        }
    }

    fn bind_subquery(
        &self,
        q: &SelectStmt,
        tag: SubKindTag,
        lhs: Option<BExpr>,
        current: &Schema,
        outer: &[Schema],
        used_outer: &mut HashSet<usize>,
    ) -> DbResult<BExpr> {
        let mut frames: Vec<Schema> = outer.to_vec();
        frames.push(current.clone());
        let mut sub_used = HashSet::new();
        let mut pq = self.plan_select(q, &frames, &mut sub_used)?;
        match tag {
            SubKindTag::Scalar | SubKindTag::In(_) => {
                if pq.schema.len() != 1 {
                    return Err(DbError::analysis(format!(
                        "subquery must return exactly one column, returns {}",
                        pq.schema.len()
                    )));
                }
            }
            SubKindTag::Exists(_) => {
                // EXISTS only needs one row.
                pq.plan = Plan::Limit { input: Box::new(pq.plan), n: 1 };
            }
        }
        let correlated = !sub_used.is_empty();
        // Propagate correlation beyond our own frame to our caller.
        for &abs in &sub_used {
            if abs < outer.len() {
                used_outer.insert(abs);
            }
        }
        let kind = match tag {
            SubKindTag::Scalar => SubqueryKind::Scalar,
            SubKindTag::Exists(negated) => SubqueryKind::Exists { negated },
            SubKindTag::In(negated) => {
                SubqueryKind::In { lhs: lhs.expect("In subquery has lhs").boxed(), negated }
            }
        };
        let cache_id = self.next_cache_id.get();
        self.next_cache_id.set(cache_id + 1);
        Ok(BExpr::Subquery(Arc::new(BoundSubquery { plan: pq.plan, kind, correlated, cache_id })))
    }
}

enum SubKindTag {
    Scalar,
    Exists(bool),
    In(bool),
}

enum Classified {
    Single(usize),
    Equi { rel_a: usize, col_a: Expr, rel_b: usize, col_b: Expr },
    Post,
}

/// NDV of a join column in a relation (for join-size estimation).
fn join_col_ndv(rel: &Rel, col: &Expr) -> f64 {
    let Expr::Column { qualifier, name } = col else {
        return 1000.0;
    };
    let Some(idx) = rel.schema.try_resolve(qualifier.as_deref(), name) else {
        return 1000.0;
    };
    match &rel.source {
        RelSource::Base(table) => {
            let stats = table.stats.read();
            if stats.analyzed {
                stats
                    .columns
                    .get(idx)
                    .map(|c| c.n_distinct as f64)
                    .filter(|&n| n > 0.0)
                    .unwrap_or(1000.0)
            } else {
                table.row_count().max(1) as f64
            }
        }
        RelSource::Derived(_) => 1000.0,
    }
}

fn schema_from(cols: Vec<Column>, quals: Vec<Option<String>>) -> Schema {
    let mut schema = Schema::new(Vec::new());
    for (c, q) in cols.into_iter().zip(quals) {
        let s = match q {
            Some(q) => Schema::qualified(vec![c], &q),
            None => Schema::new(vec![c]),
        };
        schema = schema.join(&s);
    }
    schema
}

/// Does the expression contain any subquery node?
pub fn has_subquery(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |node| {
        if matches!(node, Expr::ScalarSubquery(_) | Expr::Exists { .. } | Expr::InSubquery { .. }) {
            found = true;
        }
    });
    found
}
