//! Index-assisted row location for DML (DELETE/UPDATE ... WHERE key = ...).

use crate::catalog::Table;
use crate::error::DbResult;
use crate::lock::KeyRange;
use crate::planner::sarg::{extract_sargs, match_index};
use crate::sql::ast::{BinOp, Expr};
use crate::storage::codec::encode_key;
use crate::storage::Rid;
use crate::types::Value;
use std::ops::Bound;

/// If the filter is sargable against the table's *primary-key* index with
/// literal bounds, return the key range a DML statement must lock.
/// Bounds are widened to inclusive (exclusive endpoints are covered too),
/// which is conservative for locking. `None` means the statement cannot
/// be row-locked and needs a table lock.
pub fn pk_lock_range(table: &Table, filter: &Expr) -> Option<KeyRange> {
    if table.primary_key.is_empty() {
        return None;
    }
    let schema = &table.schema;
    let conjuncts = filter.clone().split_conjuncts();
    let resolve = |q: Option<&str>, n: &str| schema.try_resolve(q, n);
    let constantish = |e: &Expr| match e {
        Expr::Literal(_) => Some(false),
        _ => None,
    };
    let sargs = extract_sargs(&conjuncts, &resolve, &constantish);
    if sargs.is_empty() {
        return None;
    }
    let access = match_index(&table.primary_key, &sargs)?;
    let lit = |e: &Expr| -> Value {
        match e {
            Expr::Literal(v) => v.clone(),
            _ => unreachable!("constantish admits literals only"),
        }
    };
    let eq_vals: Vec<Value> = access.eq_sargs.iter().map(|s| lit(&s.rhs)).collect();
    let mut lower_vals = eq_vals.clone();
    let mut has_lower = !eq_vals.is_empty();
    if let Some(s) = &access.lower {
        lower_vals.push(lit(&s.rhs));
        has_lower = true;
    }
    let mut upper_vals = eq_vals;
    let mut has_upper = !upper_vals.is_empty();
    if let Some(s) = &access.upper {
        upper_vals.push(lit(&s.rhs));
        has_upper = true;
    }
    if lower_vals.iter().any(Value::is_null) || upper_vals.iter().any(Value::is_null) {
        // A NULL key never matches; fall back to coarse locking rather
        // than inventing a range for an empty result.
        return None;
    }
    let lower_bytes = encode_key(&lower_vals);
    let upper_bytes = encode_key(&upper_vals);
    let lo = if has_lower { Some(lower_bytes.as_slice()) } else { None };
    let hi = if has_upper { Some(upper_bytes.as_slice()) } else { None };
    Some(KeyRange::span(lo, hi))
}

/// If the filter is sargable against one of the table's indexes with
/// literal bounds, return the candidate RIDs from an index range scan
/// (callers re-check the full predicate). `None` means "no index helps —
/// scan".
pub fn dml_index_probe(table: &Table, filter: &Expr) -> DbResult<Option<Vec<Rid>>> {
    let schema = &table.schema;
    let conjuncts = filter.clone().split_conjuncts();
    let resolve = |q: Option<&str>, n: &str| schema.try_resolve(q, n);
    // DML probes only use literal constants (no parameters here).
    let constantish = |e: &Expr| match e {
        Expr::Literal(_) => Some(false),
        _ => None,
    };
    let sargs = extract_sargs(&conjuncts, &resolve, &constantish);
    if sargs.is_empty() {
        return Ok(None);
    }
    for index in table.indexes.read().iter() {
        let Some(access) = match_index(&index.columns, &sargs) else {
            continue;
        };
        let lit = |e: &Expr| -> Value {
            match e {
                Expr::Literal(v) => v.clone(),
                _ => unreachable!("constantish admits literals only"),
            }
        };
        let eq_vals: Vec<Value> = access.eq_sargs.iter().map(|s| lit(&s.rhs)).collect();
        if eq_vals.iter().any(Value::is_null) {
            return Ok(Some(Vec::new())); // NULL key never matches
        }
        let mut lower_vals = eq_vals.clone();
        let mut lower_inclusive = true;
        let mut has_lower = !eq_vals.is_empty();
        if let Some(s) = &access.lower {
            let v = lit(&s.rhs);
            if v.is_null() {
                return Ok(Some(Vec::new()));
            }
            lower_vals.push(v);
            lower_inclusive = s.op == BinOp::GtEq;
            has_lower = true;
        }
        let mut upper_vals = eq_vals.clone();
        let mut upper_inclusive = true;
        let mut has_upper = !eq_vals.is_empty();
        if let Some(s) = &access.upper {
            let v = lit(&s.rhs);
            if v.is_null() {
                return Ok(Some(Vec::new()));
            }
            upper_vals.push(v);
            upper_inclusive = s.op == BinOp::LtEq;
            has_upper = true;
        }
        let lower_bytes = encode_key(&lower_vals);
        let upper_bytes = encode_key(&upper_vals);
        let lower_bound = if has_lower {
            if lower_inclusive {
                Bound::Included(lower_bytes.as_slice())
            } else {
                Bound::Excluded(lower_bytes.as_slice())
            }
        } else {
            Bound::Unbounded
        };
        let upper_bound = if has_upper {
            if upper_inclusive {
                Bound::Included(upper_bytes.as_slice())
            } else {
                Bound::Excluded(upper_bytes.as_slice())
            }
        } else {
            Bound::Unbounded
        };
        let entries = index.tree.lock().range_scan(lower_bound, upper_bound)?;
        return Ok(Some(entries.into_iter().map(|(_, rid)| rid).collect()));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use crate::Database;

    #[test]
    fn delete_by_key_uses_index_not_scan() {
        let db = Database::with_defaults();
        db.execute("CREATE TABLE t (k INTEGER NOT NULL, v INTEGER, PRIMARY KEY (k))").unwrap();
        let values: Vec<String> = (0..5000).map(|i| format!("({i}, {})", i % 10)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        db.meter().reset();
        let n = db.execute("DELETE FROM t WHERE k = 42").unwrap().count().unwrap();
        assert_eq!(n, 1);
        let work = db.snapshot();
        // A scan would touch ~5000 tuples; the probe touches a handful.
        assert!(work.db_tuples() < 50, "index-assisted delete, got {} tuples", work.db_tuples());

        // Range delete via the same machinery.
        let n = db.execute("DELETE FROM t WHERE k BETWEEN 100 AND 199").unwrap().count().unwrap();
        assert_eq!(n, 100);

        // Non-sargable predicate still works (falls back to a scan).
        let n = db.execute("DELETE FROM t WHERE v = 3").unwrap().count().unwrap();
        assert!(n > 100);
    }
}
