//! Selectivity estimation from catalog statistics, System-R style.

use crate::catalog::{ColumnStats, TableStats};
use crate::planner::PlannerConfig;
use crate::sql::ast::{BinOp, Expr};
use crate::types::Value;

/// Convert a value to a point on the number line for interpolation.
pub fn value_to_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Decimal(d) => Some(d.to_f64()),
        Value::Date(d) => Some(d.days() as f64),
        Value::Bool(b) => Some(*b as i64 as f64),
        // First bytes of the (trimmed) string as a crude position.
        Value::Str(s) => {
            let mut x = 0f64;
            for (i, b) in s.trim_end().bytes().take(6).enumerate() {
                x += b as f64 / 256f64.powi(i as i32 + 1);
            }
            Some(x)
        }
        Value::Null => None,
    }
}

/// Selectivity of `col op literal` using column stats.
pub fn cmp_selectivity(
    op: BinOp,
    lit: &Value,
    stats: Option<&ColumnStats>,
    config: &PlannerConfig,
) -> f64 {
    let Some(st) = stats else {
        return default_for(op, config);
    };
    match op {
        BinOp::Eq => {
            if st.n_distinct > 0 {
                1.0 / st.n_distinct as f64
            } else {
                config.default_eq_sel
            }
        }
        BinOp::NotEq => {
            if st.n_distinct > 0 {
                1.0 - 1.0 / st.n_distinct as f64
            } else {
                1.0 - config.default_eq_sel
            }
        }
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let (Some(min), Some(max), Some(v)) = (
                st.min.as_ref().and_then(value_to_f64),
                st.max.as_ref().and_then(value_to_f64),
                value_to_f64(lit),
            ) else {
                return default_for(op, config);
            };
            if max <= min {
                return default_for(op, config);
            }
            let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
            match op {
                BinOp::Lt | BinOp::LtEq => frac.max(1e-9),
                _ => (1.0 - frac).max(1e-9),
            }
        }
        _ => 0.25,
    }
}

pub fn default_for(op: BinOp, config: &PlannerConfig) -> f64 {
    match op {
        BinOp::Eq => config.default_eq_sel,
        BinOp::NotEq => 1.0 - config.default_eq_sel,
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => config.default_range_sel,
        _ => 0.25,
    }
}

/// Estimate the selectivity of one single-table conjunct. `resolve` maps a
/// (qualifier, name) pair to the column ordinal if it belongs to the table.
pub fn conjunct_selectivity(
    conjunct: &Expr,
    stats: &TableStats,
    resolve: &dyn Fn(Option<&str>, &str) -> Option<usize>,
    config: &PlannerConfig,
) -> f64 {
    let col_stats = |e: &Expr| -> Option<&ColumnStats> {
        if let Expr::Column { qualifier, name } = e {
            let idx = resolve(qualifier.as_deref(), name)?;
            if stats.analyzed {
                return stats.columns.get(idx);
            }
        }
        None
    };
    match conjunct {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // column vs literal (either order)
            if let Expr::Literal(v) = right.as_ref() {
                return cmp_selectivity(*op, v, col_stats(left), config);
            }
            if let Expr::Literal(v) = left.as_ref() {
                return cmp_selectivity(flip(*op), v, col_stats(right), config);
            }
            // Parameter or expression: unknown constant.
            default_for(*op, config)
        }
        Expr::Binary { left, op: BinOp::And, right } => {
            conjunct_selectivity(left, stats, resolve, config)
                * conjunct_selectivity(right, stats, resolve, config)
        }
        Expr::Binary { left, op: BinOp::Or, right } => {
            let a = conjunct_selectivity(left, stats, resolve, config);
            let b = conjunct_selectivity(right, stats, resolve, config);
            (a + b - a * b).min(1.0)
        }
        Expr::Between { expr, low, high, negated } => {
            let sel = match (low.as_ref(), high.as_ref()) {
                (Expr::Literal(lo), Expr::Literal(hi)) => {
                    let st = col_stats(expr);
                    let a = cmp_selectivity(BinOp::GtEq, lo, st, config);
                    let b = cmp_selectivity(BinOp::LtEq, hi, st, config);
                    (a + b - 1.0).clamp(1e-9, 1.0)
                }
                _ => config.default_range_sel,
            };
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::InList { expr, list, negated } => {
            let st = col_stats(expr);
            let eq = match st {
                Some(s) if s.n_distinct > 0 => 1.0 / s.n_distinct as f64,
                _ => config.default_eq_sel,
            };
            let sel = (eq * list.len() as f64).min(1.0);
            if *negated {
                1.0 - sel
            } else {
                sel
            }
        }
        Expr::Like { negated, .. } => {
            if *negated {
                1.0 - config.like_sel
            } else {
                config.like_sel
            }
        }
        Expr::IsNull { negated, .. } => {
            if *negated {
                0.95
            } else {
                0.05
            }
        }
        _ => 0.25,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnStats;

    fn stats_0_100() -> ColumnStats {
        ColumnStats {
            n_distinct: 100,
            min: Some(Value::Int(0)),
            max: Some(Value::Int(100)),
            null_count: 0,
        }
    }

    #[test]
    fn equality_uses_ndv() {
        let cfg = PlannerConfig::default();
        let s = cmp_selectivity(BinOp::Eq, &Value::Int(5), Some(&stats_0_100()), &cfg);
        assert!((s - 0.01).abs() < 1e-12);
    }

    #[test]
    fn range_interpolates() {
        let cfg = PlannerConfig::default();
        let s = cmp_selectivity(BinOp::Lt, &Value::Int(25), Some(&stats_0_100()), &cfg);
        assert!((s - 0.25).abs() < 1e-9);
        let s = cmp_selectivity(BinOp::Gt, &Value::Int(25), Some(&stats_0_100()), &cfg);
        assert!((s - 0.75).abs() < 1e-9);
        // Out-of-range literal clamps.
        let s = cmp_selectivity(BinOp::Lt, &Value::Int(-5), Some(&stats_0_100()), &cfg);
        assert!(s <= 1e-6);
    }

    #[test]
    fn missing_stats_fall_back_to_defaults() {
        let cfg = PlannerConfig::default();
        assert_eq!(cmp_selectivity(BinOp::Eq, &Value::Int(5), None, &cfg), cfg.default_eq_sel);
        assert_eq!(cmp_selectivity(BinOp::Lt, &Value::Int(5), None, &cfg), cfg.default_range_sel);
    }

    #[test]
    fn string_position_is_monotone() {
        let a = value_to_f64(&Value::str("APPLE")).unwrap();
        let b = value_to_f64(&Value::str("BANANA")).unwrap();
        assert!(a < b);
    }
}
