//! Search-argument (sarg) analysis: which conjuncts can drive an index.

use crate::sql::ast::{BinOp, Expr};

/// A normalized sargable comparison: `column <op> rhs`, where `rhs`
/// contains no references to the local table.
#[derive(Debug, Clone)]
pub struct Sarg {
    /// Ordinal of the conjunct this sarg came from (for residual tracking).
    pub conjunct_idx: usize,
    /// Column ordinal in the table.
    pub column: usize,
    pub op: BinOp,
    pub rhs: Expr,
    /// True when the rhs contains a `?` parameter (or an outer reference),
    /// i.e. the optimizer cannot see the constant (§4.1 of the paper).
    pub rhs_unknown: bool,
}

/// Extract sargs from single-table conjuncts.
///
/// * `resolve_local` maps (qualifier, name) to a local column ordinal.
/// * `is_local_free` must report whether an expression is free of local
///   column references (it may contain params, literals, outer refs).
pub fn extract_sargs(
    conjuncts: &[Expr],
    resolve_local: &dyn Fn(Option<&str>, &str) -> Option<usize>,
    rhs_is_constantish: &dyn Fn(&Expr) -> Option<bool>, // Some(unknown?) or None if not usable
) -> Vec<Sarg> {
    let mut out = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        match c {
            Expr::Binary { left, op, right } if op.is_comparison() && *op != BinOp::NotEq => {
                if let Expr::Column { qualifier, name } = left.as_ref() {
                    if let Some(col) = resolve_local(qualifier.as_deref(), name) {
                        if let Some(unknown) = rhs_is_constantish(right) {
                            out.push(Sarg {
                                conjunct_idx: i,
                                column: col,
                                op: *op,
                                rhs: (**right).clone(),
                                rhs_unknown: unknown,
                            });
                            continue;
                        }
                    }
                }
                if let Expr::Column { qualifier, name } = right.as_ref() {
                    if let Some(col) = resolve_local(qualifier.as_deref(), name) {
                        if let Some(unknown) = rhs_is_constantish(left) {
                            out.push(Sarg {
                                conjunct_idx: i,
                                column: col,
                                op: flip(*op),
                                rhs: (**left).clone(),
                                rhs_unknown: unknown,
                            });
                        }
                    }
                }
            }
            Expr::Between { expr, low, high, negated: false } => {
                if let Expr::Column { qualifier, name } = expr.as_ref() {
                    if let Some(col) = resolve_local(qualifier.as_deref(), name) {
                        if let (Some(u1), Some(u2)) =
                            (rhs_is_constantish(low), rhs_is_constantish(high))
                        {
                            out.push(Sarg {
                                conjunct_idx: i,
                                column: col,
                                op: BinOp::GtEq,
                                rhs: (**low).clone(),
                                rhs_unknown: u1,
                            });
                            out.push(Sarg {
                                conjunct_idx: i,
                                column: col,
                                op: BinOp::LtEq,
                                rhs: (**high).clone(),
                                rhs_unknown: u2,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// A concrete index access chosen for a table: equality prefix plus an
/// optional range on the next key column.
#[derive(Debug, Clone)]
pub struct IndexAccess {
    /// Equality sargs, one per leading index column.
    pub eq_sargs: Vec<Sarg>,
    /// Range sargs on the column after the equality prefix.
    pub lower: Option<Sarg>,
    pub upper: Option<Sarg>,
}

impl IndexAccess {
    /// Which conjuncts are fully consumed by the access path.
    pub fn consumed_conjuncts(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.eq_sargs.iter().map(|s| s.conjunct_idx).collect();
        if let Some(s) = &self.lower {
            v.push(s.conjunct_idx);
        }
        if let Some(s) = &self.upper {
            v.push(s.conjunct_idx);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    pub fn involves_unknown(&self) -> bool {
        self.eq_sargs.iter().any(|s| s.rhs_unknown)
            || self.lower.as_ref().is_some_and(|s| s.rhs_unknown)
            || self.upper.as_ref().is_some_and(|s| s.rhs_unknown)
    }
}

/// Match sargs against an index's key columns. Returns `None` when not even
/// the first key column has a usable sarg.
pub fn match_index(index_columns: &[usize], sargs: &[Sarg]) -> Option<IndexAccess> {
    let mut eq_sargs = Vec::new();
    let mut lower = None;
    let mut upper = None;
    for &col in index_columns {
        // Prefer an equality sarg on this column.
        if let Some(s) = sargs.iter().find(|s| s.column == col && s.op == BinOp::Eq) {
            eq_sargs.push(s.clone());
            continue;
        }
        // Otherwise take range sargs on this column and stop.
        for s in sargs.iter().filter(|s| s.column == col) {
            match s.op {
                BinOp::Gt | BinOp::GtEq if lower.is_none() => {
                    lower = Some(s.clone());
                }
                BinOp::Lt | BinOp::LtEq if upper.is_none() => {
                    upper = Some(s.clone());
                }
                _ => {}
            }
        }
        break;
    }
    if eq_sargs.is_empty() && lower.is_none() && upper.is_none() {
        None
    } else {
        Some(IndexAccess { eq_sargs, lower, upper })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn col(name: &str) -> Expr {
        Expr::col(name)
    }

    fn lit(i: i64) -> Expr {
        Expr::Literal(Value::Int(i))
    }

    fn resolve(q: Option<&str>, n: &str) -> Option<usize> {
        match n {
            "A" => Some(0),
            "B" => Some(1),
            "C" => Some(2),
            _ => None,
        }
        .filter(|_| q.is_none() || q == Some("T"))
    }

    fn constantish(e: &Expr) -> Option<bool> {
        match e {
            Expr::Literal(_) => Some(false),
            Expr::Param(_) => Some(true),
            _ => None,
        }
    }

    #[test]
    fn extracts_and_normalizes() {
        let conjuncts = vec![
            Expr::binary(col("A"), BinOp::Eq, lit(5)),
            Expr::binary(lit(10), BinOp::Gt, col("B")), // => B < 10
            Expr::binary(col("C"), BinOp::Lt, Expr::Param(0)),
        ];
        let sargs = extract_sargs(&conjuncts, &resolve, &constantish);
        assert_eq!(sargs.len(), 3);
        assert_eq!(sargs[0].op, BinOp::Eq);
        assert_eq!(sargs[1].column, 1);
        assert_eq!(sargs[1].op, BinOp::Lt);
        assert!(sargs[2].rhs_unknown);
    }

    #[test]
    fn between_gives_two_sargs() {
        let conjuncts = vec![Expr::Between {
            expr: Box::new(col("A")),
            low: Box::new(lit(1)),
            high: Box::new(lit(10)),
            negated: false,
        }];
        let sargs = extract_sargs(&conjuncts, &resolve, &constantish);
        assert_eq!(sargs.len(), 2);
        assert_eq!(sargs[0].op, BinOp::GtEq);
        assert_eq!(sargs[1].op, BinOp::LtEq);
    }

    #[test]
    fn match_composite_index() {
        let conjuncts = vec![
            Expr::binary(col("A"), BinOp::Eq, lit(5)),
            Expr::binary(col("B"), BinOp::Lt, lit(10)),
            Expr::binary(col("B"), BinOp::GtEq, lit(2)),
        ];
        let sargs = extract_sargs(&conjuncts, &resolve, &constantish);
        // Index on (A, B): eq prefix on A, range on B.
        let access = match_index(&[0, 1], &sargs).unwrap();
        assert_eq!(access.eq_sargs.len(), 1);
        assert!(access.lower.is_some());
        assert!(access.upper.is_some());
        assert_eq!(access.consumed_conjuncts(), vec![0, 1, 2]);
        // Index on (B): range only.
        let access = match_index(&[1], &sargs).unwrap();
        assert!(access.eq_sargs.is_empty());
        // Index on (C): nothing.
        assert!(match_index(&[2], &sargs).is_none());
    }

    #[test]
    fn noteq_is_not_sargable() {
        let conjuncts = vec![Expr::binary(col("A"), BinOp::NotEq, lit(5))];
        assert!(extract_sargs(&conjuncts, &resolve, &constantish).is_empty());
    }
}
