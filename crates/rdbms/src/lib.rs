//! # rdbms — a from-scratch relational database engine
//!
//! The "commercial RDBMS back-end" substrate for the reproduction of
//! *Database Performance in the Real World — TPC-D and SAP R/3* (SIGMOD
//! 1997). Provides:
//!
//! * slotted-page storage with a metered buffer pool and simulated disk,
//! * B+-tree indexes over order-preserving key encodings,
//! * a SQL front-end (parser for SELECT/DML/DDL with subqueries, CASE,
//!   date/interval arithmetic, parameters),
//! * a System-R-style planner with the two period-faithful behaviours the
//!   paper measures (parameter-blind plans, naive nested queries),
//! * a materializing executor,
//! * the deterministic cost clock used by every experiment in this
//!   workspace (see DESIGN.md §5),
//! * an ARIES-style write-ahead log with group commit and restart
//!   recovery (see DESIGN.md §10).

pub mod catalog;
pub mod clock;
pub mod db;
pub mod error;
pub mod exec;
pub mod index;
pub mod lock;
pub mod monitor;
pub mod plancache;
pub mod planner;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod txn;
pub mod types;
pub mod wal;

pub use clock::{Calibration, CostMeter, Counter, MeterScope, MeterSnapshot};
pub use clock::{CriticalPath, RequestCtx, RequestGuard, RequestTrace, TraceRing};
pub use clock::{WaitEvent, WaitScope, WaitSnapshot, WaitStats, WaitTimer};
pub use db::{Database, DbConfig, ExecOutcome, Prepared, QueryResult};
pub use error::{DbError, DbResult};
pub use lock::{KeyRange, LockInfo, LockManager, LockMode, RowLock, RowMode, TxnId};
pub use monitor::{MonitorView, StatementCollector, StatementSample, StatementStats};
pub use plancache::{CachedPlan, PlanCache, PlanCacheEntryInfo};
pub use schema::{Column, Row, Schema};
pub use txn::{Txn, TxnStats};
pub use types::{DataType, Date, Decimal, Value};
pub use wal::{CommitPolicy, Lsn, RecoveryReport, Wal, WalConfig};
