//! The system catalog: tables, indexes, views, and optimizer statistics.

use crate::error::{DbError, DbResult};
use crate::index::BTree;
use crate::schema::{Column, Schema};
use crate::sql::ast::SelectStmt;
use crate::storage::codec::encode_key;
use crate::storage::{HeapFile, Pager, Rid};
use crate::types::Value;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-column statistics gathered by ANALYZE.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    pub n_distinct: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: u64,
}

/// Per-table statistics.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: u64,
    pub pages: u64,
    pub columns: Vec<ColumnStats>,
    /// False until the first ANALYZE; the optimizer falls back to
    /// defaults when false.
    pub analyzed: bool,
}

/// A secondary (or primary-key) B+-tree index.
pub struct Index {
    pub name: String,
    pub table: String,
    /// Column ordinals in the base table, in key order.
    pub columns: Vec<usize>,
    pub unique: bool,
    pub tree: Mutex<BTree>,
}

impl Index {
    /// Encode the key for `row` of the base table.
    pub fn key_for(&self, row: &[Value]) -> Vec<u8> {
        let vals: Vec<Value> = self.columns.iter().map(|&i| row[i].clone()).collect();
        encode_key(&vals)
    }

    pub fn entry_bytes(&self) -> u64 {
        self.tree.lock().entry_bytes()
    }

    pub fn node_pages(&self) -> u64 {
        self.tree.lock().node_pages()
    }

    pub fn height(&self) -> u32 {
        self.tree.lock().height()
    }
}

/// A base table.
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub heap: HeapFile,
    /// Ordinals of the primary-key columns (may be empty).
    pub primary_key: Vec<usize>,
    pub indexes: RwLock<Vec<Arc<Index>>>,
    pub stats: RwLock<TableStats>,
}

impl Table {
    /// Current row count: statistics if analyzed, else the live heap count.
    pub fn row_count(&self) -> u64 {
        self.heap.live_rows()
    }

    pub fn find_index(&self, name: &str) -> Option<Arc<Index>> {
        self.indexes.read().iter().find(|i| i.name == name).cloned()
    }

    /// Indexes whose first key column is `col`.
    pub fn indexes_on_prefix(&self, col: usize) -> Vec<Arc<Index>> {
        self.indexes.read().iter().filter(|i| i.columns.first() == Some(&col)).cloned().collect()
    }
}

/// The catalog.
pub struct Catalog {
    pager: Arc<Pager>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    views: RwLock<HashMap<String, Arc<SelectStmt>>>,
    /// Monotonic DDL version: bumped by every schema change (CREATE/DROP
    /// TABLE/INDEX/VIEW and ANALYZE). Plan caches record the version they
    /// planned under and treat any entry whose referenced objects changed
    /// since as stale (see [`crate::plancache`]).
    ddl_version: AtomicU64,
    /// Per-object DDL versions, keyed by upper-cased table/view name: the
    /// [`Catalog::version`] at which the object (or one of its indexes, or
    /// its statistics) last changed. Objects never touched by DDL since the
    /// catalog was created are absent (version 0).
    object_versions: RwLock<HashMap<String, u64>>,
    /// Virtual `M$` monitoring views (see [`crate::monitor`]). Kept apart
    /// from base tables and SQL views: they take no locks, are never
    /// plan-cache dependencies, and DDL cannot touch them.
    monitor_views: RwLock<HashMap<String, Arc<crate::monitor::MonitorView>>>,
}

impl Catalog {
    pub fn new(pager: Arc<Pager>) -> Self {
        Catalog {
            pager,
            tables: RwLock::new(HashMap::new()),
            views: RwLock::new(HashMap::new()),
            ddl_version: AtomicU64::new(0),
            object_versions: RwLock::new(HashMap::new()),
            monitor_views: RwLock::new(HashMap::new()),
        }
    }

    /// Register (or replace) a virtual monitoring view. The name must be
    /// in the `M$` namespace.
    pub fn register_monitor_view(&self, view: Arc<crate::monitor::MonitorView>) {
        debug_assert!(crate::monitor::is_monitor_name(view.name()));
        self.monitor_views.write().insert(view.name().to_string(), view);
    }

    pub fn monitor_view(&self, name: &str) -> Option<Arc<crate::monitor::MonitorView>> {
        self.monitor_views.read().get(&name.to_ascii_uppercase()).cloned()
    }

    pub fn monitor_view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.monitor_views.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Current global DDL version (0 for a catalog no DDL ever touched).
    pub fn version(&self) -> u64 {
        self.ddl_version.load(Ordering::Acquire)
    }

    /// The global version at which `name` (a table or view, upper-cased or
    /// not) last changed; 0 if never.
    pub fn object_version(&self, name: &str) -> u64 {
        self.object_versions.read().get(&name.to_ascii_uppercase()).copied().unwrap_or(0)
    }

    /// Record a schema change to `name`: bump the global DDL version and
    /// stamp the object with it.
    fn bump_version(&self, name: &str) {
        let v = self.ddl_version.fetch_add(1, Ordering::AcqRel) + 1;
        self.object_versions.write().insert(name.to_ascii_uppercase(), v);
    }

    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<Column>,
        primary_key_names: &[String],
    ) -> DbResult<Arc<Table>> {
        let name = name.to_ascii_uppercase();
        if crate::monitor::is_monitor_name(&name) {
            return Err(DbError::catalog(format!("'{name}' is in the reserved M$ namespace")));
        }
        if self.tables.read().contains_key(&name) || self.views.read().contains_key(&name) {
            return Err(DbError::catalog(format!("table or view '{name}' already exists")));
        }
        let schema = Schema::qualified(columns, &name);
        let mut primary_key = Vec::new();
        for pk in primary_key_names {
            primary_key.push(schema.resolve(None, pk)?);
        }
        let n_cols = schema.len();
        let table = Arc::new(Table {
            name: name.clone(),
            schema,
            heap: HeapFile::new(Arc::clone(&self.pager)),
            primary_key: primary_key.clone(),
            indexes: RwLock::new(Vec::new()),
            stats: RwLock::new(TableStats {
                columns: vec![ColumnStats::default(); n_cols],
                ..TableStats::default()
            }),
        });
        self.tables.write().insert(name.clone(), Arc::clone(&table));
        self.bump_version(&name);
        // Primary key implies a unique index.
        if !primary_key.is_empty() {
            self.create_index_ordinals(&format!("{name}_PKEY"), &name, primary_key, true)?;
        }
        Ok(table)
    }

    pub fn create_index(
        &self,
        index_name: &str,
        table_name: &str,
        column_names: &[String],
        unique: bool,
    ) -> DbResult<Arc<Index>> {
        let table = self.table(table_name)?;
        let mut ordinals = Vec::new();
        for c in column_names {
            ordinals.push(table.schema.resolve(None, c)?);
        }
        self.create_index_ordinals(index_name, &table.name, ordinals, unique)
    }

    fn create_index_ordinals(
        &self,
        index_name: &str,
        table_name: &str,
        columns: Vec<usize>,
        unique: bool,
    ) -> DbResult<Arc<Index>> {
        let index_name = index_name.to_ascii_uppercase();
        let table = self.table(table_name)?;
        {
            let existing = table.indexes.read();
            if existing.iter().any(|i| i.name == index_name) {
                return Err(DbError::catalog(format!("index '{index_name}' already exists")));
            }
        }
        let mut tree = BTree::new(Arc::clone(&self.pager), unique)?;
        // Backfill from existing rows.
        for item in table.heap.scan() {
            let (rid, row) = item?;
            let vals: Vec<Value> = columns.iter().map(|&i| row[i].clone()).collect();
            tree.insert(&encode_key(&vals), rid)?;
        }
        let index = Arc::new(Index {
            name: index_name,
            table: table.name.clone(),
            columns,
            unique,
            tree: Mutex::new(tree),
        });
        table.indexes.write().push(Arc::clone(&index));
        self.bump_version(&table.name);
        Ok(index)
    }

    pub fn drop_index(&self, name: &str) -> DbResult<()> {
        let name = name.to_ascii_uppercase();
        for table in self.tables.read().values() {
            let mut idxs = table.indexes.write();
            if let Some(pos) = idxs.iter().position(|i| i.name == name) {
                idxs.remove(pos);
                drop(idxs);
                self.bump_version(&table.name);
                return Ok(());
            }
        }
        Err(DbError::catalog(format!("no index '{name}'")))
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let name = name.to_ascii_uppercase();
        match self.tables.write().remove(&name) {
            Some(_) => {
                self.bump_version(&name);
                Ok(())
            }
            None => Err(DbError::catalog(format!("no table '{name}'"))),
        }
    }

    pub fn create_view(&self, name: &str, query: SelectStmt) -> DbResult<()> {
        let name = name.to_ascii_uppercase();
        if crate::monitor::is_monitor_name(&name) {
            return Err(DbError::catalog(format!("'{name}' is in the reserved M$ namespace")));
        }
        if self.tables.read().contains_key(&name) || self.views.read().contains_key(&name) {
            return Err(DbError::catalog(format!("table or view '{name}' already exists")));
        }
        self.views.write().insert(name.clone(), Arc::new(query));
        self.bump_version(&name);
        Ok(())
    }

    pub fn drop_view(&self, name: &str) -> DbResult<()> {
        match self.views.write().remove(&name.to_ascii_uppercase()) {
            Some(_) => {
                self.bump_version(name);
                Ok(())
            }
            None => Err(DbError::catalog(format!("no view '{name}'"))),
        }
    }

    pub fn table(&self, name: &str) -> DbResult<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::catalog(format!("no table '{name}'")))
    }

    pub fn try_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.read().get(&name.to_ascii_uppercase()).cloned()
    }

    pub fn view(&self, name: &str) -> Option<Arc<SelectStmt>> {
        self.views.read().get(&name.to_ascii_uppercase()).cloned()
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Insert a row through the catalog, maintaining all indexes and the
    /// primary-key constraint. Returns the RID.
    pub fn insert_row(&self, table: &Table, row: &[Value]) -> DbResult<Rid> {
        let row = crate::schema::coerce_row(&table.schema, row)?;
        let indexes = table.indexes.read();
        // Check unique constraints first so a violation leaves no trace.
        for index in indexes.iter().filter(|i| i.unique) {
            let key = index.key_for(&row);
            if !index.tree.lock().search_exact(&key)?.is_empty() {
                return Err(DbError::constraint(format!(
                    "unique index {} violated on {}",
                    index.name, table.name
                )));
            }
        }
        let rid = table.heap.insert(&row)?;
        for index in indexes.iter() {
            let key = index.key_for(&row);
            index.tree.lock().insert(&key, rid)?;
        }
        self.pager.meter().bump(crate::clock::Counter::DbTuples);
        Ok(rid)
    }

    /// Delete a row by RID, maintaining indexes. The row must be fetched
    /// first to compute its index keys.
    pub fn delete_row(&self, table: &Table, rid: Rid) -> DbResult<()> {
        let row = table
            .heap
            .get(rid, crate::storage::AccessPattern::Random)?
            .ok_or_else(|| DbError::storage(format!("no row at {rid:?}")))?;
        for index in table.indexes.read().iter() {
            let key = index.key_for(&row);
            index.tree.lock().delete(&key, rid)?;
        }
        self.pager.meter().bump(crate::clock::Counter::DbTuples);
        table.heap.delete(rid)
    }

    /// Update a row by RID, maintaining indexes.
    pub fn update_row(&self, table: &Table, rid: Rid, new_row: &[Value]) -> DbResult<Rid> {
        let new_row = crate::schema::coerce_row(&table.schema, new_row)?;
        let old_row = table
            .heap
            .get(rid, crate::storage::AccessPattern::Random)?
            .ok_or_else(|| DbError::storage(format!("no row at {rid:?}")))?;
        let indexes = table.indexes.read();
        for index in indexes.iter() {
            let key = index.key_for(&old_row);
            index.tree.lock().delete(&key, rid)?;
        }
        let new_rid = table.heap.update(rid, &new_row)?;
        for index in indexes.iter() {
            let key = index.key_for(&new_row);
            index.tree.lock().insert(&key, new_rid)?;
        }
        self.pager.meter().bump(crate::clock::Counter::DbTuples);
        Ok(new_rid)
    }

    /// Recompute statistics for one table (full pass).
    pub fn analyze_table(&self, table: &Table) -> DbResult<()> {
        let n = table.schema.len();
        let mut distinct: Vec<HashSet<u64>> = vec![HashSet::new(); n];
        let mut mins: Vec<Option<Value>> = vec![None; n];
        let mut maxs: Vec<Option<Value>> = vec![None; n];
        let mut nulls = vec![0u64; n];
        let mut rows = 0u64;
        for item in table.heap.scan() {
            let (_, row) = item?;
            rows += 1;
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                // Hash for approximate-but-exact-at-our-scale NDV.
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut h);
                distinct[i].insert(h.finish());
                let better_min = match &mins[i] {
                    None => true,
                    Some(m) => v.total_cmp(m).is_lt(),
                };
                if better_min {
                    mins[i] = Some(v.clone());
                }
                let better_max = match &maxs[i] {
                    None => true,
                    Some(m) => v.total_cmp(m).is_gt(),
                };
                if better_max {
                    maxs[i] = Some(v.clone());
                }
            }
        }
        let mut stats = table.stats.write();
        stats.row_count = rows;
        stats.pages = table.heap.page_count() as u64;
        stats.analyzed = true;
        stats.columns = (0..n)
            .map(|i| ColumnStats {
                n_distinct: distinct[i].len() as u64,
                min: mins[i].clone(),
                max: maxs[i].clone(),
                null_count: nulls[i],
            })
            .collect();
        drop(stats);
        // New statistics change what the planner would choose: cached plans
        // for this table are stale (for quality, not correctness).
        self.bump_version(&table.name);
        Ok(())
    }

    /// Data + index sizes in bytes for one table (Table 2 accounting).
    pub fn table_sizes(&self, table: &Table) -> (u64, u64) {
        let data = table.heap.live_bytes();
        let index: u64 = table.indexes.read().iter().map(|i| i.entry_bytes()).sum();
        (data, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CostMeter;
    use crate::storage::PagerConfig;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        Catalog::new(Pager::new(PagerConfig::default(), CostMeter::new()))
    }

    fn make_items(cat: &Catalog) -> Arc<Table> {
        cat.create_table(
            "items",
            vec![
                Column::new("id", DataType::Int).not_null(),
                Column::new("name", DataType::VarChar(30)),
                Column::new("qty", DataType::Int),
            ],
            &["ID".to_string()],
        )
        .unwrap()
    }

    #[test]
    fn create_table_with_pkey_index() {
        let cat = catalog();
        let t = make_items(&cat);
        assert_eq!(t.indexes.read().len(), 1);
        assert_eq!(t.indexes.read()[0].name, "ITEMS_PKEY");
        assert!(t.indexes.read()[0].unique);
        assert!(cat.create_table("ITEMS", vec![], &[]).is_err(), "duplicate rejected");
    }

    #[test]
    fn insert_maintains_indexes_and_pkey() {
        let cat = catalog();
        let t = make_items(&cat);
        cat.insert_row(&t, &[Value::Int(1), Value::str("a"), Value::Int(10)]).unwrap();
        cat.insert_row(&t, &[Value::Int(2), Value::str("b"), Value::Int(20)]).unwrap();
        let dup = cat.insert_row(&t, &[Value::Int(1), Value::str("c"), Value::Int(30)]);
        assert!(matches!(dup, Err(DbError::Constraint(_))));
        assert_eq!(t.heap.live_rows(), 2, "failed insert left no row");
        let idx = t.find_index("ITEMS_PKEY").unwrap();
        let rids = idx.tree.lock().search_exact(&encode_key(&[Value::Int(2)])).unwrap();
        assert_eq!(rids.len(), 1);
    }

    #[test]
    fn secondary_index_backfills() {
        let cat = catalog();
        let t = make_items(&cat);
        for i in 0..50 {
            cat.insert_row(&t, &[Value::Int(i), Value::str("n"), Value::Int(i % 5)]).unwrap();
        }
        let idx = cat.create_index("items_qty", "items", &["QTY".into()], false).unwrap();
        let rids = idx.tree.lock().search_exact(&encode_key(&[Value::Int(3)])).unwrap();
        assert_eq!(rids.len(), 10);
    }

    #[test]
    fn delete_and_update_maintain_indexes() {
        let cat = catalog();
        let t = make_items(&cat);
        let rid = cat.insert_row(&t, &[Value::Int(1), Value::str("a"), Value::Int(10)]).unwrap();
        cat.create_index("items_qty", "items", &["QTY".into()], false).unwrap();
        let new_rid =
            cat.update_row(&t, rid, &[Value::Int(1), Value::str("a"), Value::Int(99)]).unwrap();
        let idx = t.find_index("ITEMS_QTY").unwrap();
        assert!(idx.tree.lock().search_exact(&encode_key(&[Value::Int(10)])).unwrap().is_empty());
        assert_eq!(idx.tree.lock().search_exact(&encode_key(&[Value::Int(99)])).unwrap().len(), 1);
        cat.delete_row(&t, new_rid).unwrap();
        assert_eq!(t.heap.live_rows(), 0);
        assert!(idx.tree.lock().search_exact(&encode_key(&[Value::Int(99)])).unwrap().is_empty());
    }

    #[test]
    fn analyze_computes_stats() {
        let cat = catalog();
        let t = make_items(&cat);
        for i in 0..100 {
            cat.insert_row(
                &t,
                &[Value::Int(i), Value::str(format!("n{}", i % 10)), Value::Int(i % 4)],
            )
            .unwrap();
        }
        cat.analyze_table(&t).unwrap();
        let stats = t.stats.read();
        assert!(stats.analyzed);
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[0].n_distinct, 100);
        assert_eq!(stats.columns[1].n_distinct, 10);
        assert_eq!(stats.columns[2].n_distinct, 4);
        assert_eq!(stats.columns[0].min, Some(Value::Int(0)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(99)));
    }

    #[test]
    fn views_registered_and_dropped() {
        let cat = catalog();
        let q = crate::sql::parse_query("SELECT 1").unwrap();
        cat.create_view("v", q).unwrap();
        assert!(cat.view("V").is_some());
        assert!(cat.create_view("v", crate::sql::parse_query("SELECT 2").unwrap()).is_err());
        cat.drop_view("v").unwrap();
        assert!(cat.view("v").is_none());
    }

    #[test]
    fn table_sizes_accounted() {
        let cat = catalog();
        let t = make_items(&cat);
        for i in 0..100 {
            cat.insert_row(&t, &[Value::Int(i), Value::str("abcdefghij"), Value::Int(1)]).unwrap();
        }
        let (data, index) = cat.table_sizes(&t);
        assert!(data > 100 * 20, "data bytes counted");
        assert!(index > 0, "pkey index bytes counted");
    }
}
