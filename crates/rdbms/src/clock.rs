//! The deterministic cost clock.
//!
//! The clock now lives in the workspace-wide `trace` crate so the layers
//! above the engine (R/3 simulator, throughput driver, bench harness) can
//! share meters, spans, and histograms without depending on the engine.
//! This module re-exports it under the historical `rdbms::clock` path.

pub use trace::meter::{fmt_duration, Calibration, CostMeter, Counter, MeterScope, MeterSnapshot};
pub use trace::request::{
    chrome_trace_json, validate_chrome_trace, CriticalPath, RequestCtx, RequestGuard, RequestTrace,
    TraceRing,
};
pub use trace::wait::{WaitEvent, WaitScope, WaitSnapshot, WaitStats, WaitTimer};
