//! The deterministic cost clock.
//!
//! The paper's numbers are wall-clock seconds on 1996 hardware (SPARCstation
//! 20, 2x60 MHz, 10 MB database buffer, Seagate ST15230N disks). What a
//! reproduction must preserve is the *shape* of the results — which
//! configuration wins, by roughly what factor, and where crossovers fall.
//! Those shapes are functions of physical operation counts (page I/Os split
//! by access pattern, per-tuple CPU work, interface crossings between the
//! RDBMS and the application server, sort spills, consistency checks)
//! multiplied by the relative costs of those operations.
//!
//! Every layer of this workspace meters its real work into a [`CostMeter`];
//! a [`Calibration`] turns the meter into simulated seconds. Calibration is
//! data, not code, so benches can sweep it (ablation) and EXPERIMENTS.md can
//! report both raw counters and derived times.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic counters for every metered operation class.
#[derive(Debug, Default)]
pub struct CostMeter {
    /// Buffer-pool misses served by a sequential page read.
    pub seq_page_reads: AtomicU64,
    /// Buffer-pool misses served by a random page read.
    pub rand_page_reads: AtomicU64,
    /// Dirty pages written back.
    pub page_writes: AtomicU64,
    /// Tuples processed by engine operators (scan, probe, join, agg, ...).
    pub db_tuples: AtomicU64,
    /// Round trips crossing the RDBMS <-> application-server interface
    /// (statement opens, fetch batches, per-tuple crossings of nested
    /// SELECT loops — Section 2.3 of the paper).
    pub ipc_crossings: AtomicU64,
    /// Tuples shipped across the interface to the application server.
    pub ipc_tuples: AtomicU64,
    /// Tuples processed inside the application server (ABAP-side joins,
    /// grouping, EXTRACT/LOOP processing).
    pub app_tuples: AtomicU64,
    /// Application-server intermediate spill I/O in pages (Section 4.2:
    /// SAP sorts by writing the sorted result to secondary storage and
    /// re-reading it).
    pub app_spill_pages: AtomicU64,
    /// Per-record batch-input consistency-check units (Section 2.4/3.4.2).
    pub check_units: AtomicU64,
    /// Application-server buffer (cache) probes and hits (Section 4.3).
    pub cache_probes: AtomicU64,
    pub cache_hits: AtomicU64,
    /// B+-tree node reads (subset of page reads, kept separately so index
    /// ablations can be reported).
    pub index_node_reads: AtomicU64,
    /// Times a transaction had to block on a table lock held by another
    /// transaction (multi-user workloads only; the wall/simulated wait
    /// duration is tracked by the lock manager / throughput driver).
    pub lock_waits: AtomicU64,
}

impl CostMeter {
    pub fn new() -> Arc<Self> {
        Arc::new(CostMeter::default())
    }

    pub fn add(&self, field: Counter, n: u64) {
        self.counter(field).fetch_add(n, Ordering::Relaxed);
        // Mirror the work into every meter scope active on this thread so a
        // transaction / dispatcher request gets its own attribution without
        // threading a meter through every storage-layer call.
        SCOPES.with(|scopes| {
            for scoped in scopes.borrow().iter() {
                if !std::ptr::eq(Arc::as_ptr(scoped), self) {
                    scoped.counter(field).fetch_add(n, Ordering::Relaxed);
                }
            }
        });
    }

    pub fn bump(&self, field: Counter) {
        self.add(field, 1);
    }

    pub fn get(&self, field: Counter) -> u64 {
        self.counter(field).load(Ordering::Relaxed)
    }

    fn counter(&self, field: Counter) -> &AtomicU64 {
        match field {
            Counter::SeqPageReads => &self.seq_page_reads,
            Counter::RandPageReads => &self.rand_page_reads,
            Counter::PageWrites => &self.page_writes,
            Counter::DbTuples => &self.db_tuples,
            Counter::IpcCrossings => &self.ipc_crossings,
            Counter::IpcTuples => &self.ipc_tuples,
            Counter::AppTuples => &self.app_tuples,
            Counter::AppSpillPages => &self.app_spill_pages,
            Counter::CheckUnits => &self.check_units,
            Counter::CacheProbes => &self.cache_probes,
            Counter::CacheHits => &self.cache_hits,
            Counter::IndexNodeReads => &self.index_node_reads,
            Counter::LockWaits => &self.lock_waits,
        }
    }

    /// Snapshot all counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        MeterSnapshot {
            seq_page_reads: self.get(Counter::SeqPageReads),
            rand_page_reads: self.get(Counter::RandPageReads),
            page_writes: self.get(Counter::PageWrites),
            db_tuples: self.get(Counter::DbTuples),
            ipc_crossings: self.get(Counter::IpcCrossings),
            ipc_tuples: self.get(Counter::IpcTuples),
            app_tuples: self.get(Counter::AppTuples),
            app_spill_pages: self.get(Counter::AppSpillPages),
            check_units: self.get(Counter::CheckUnits),
            cache_probes: self.get(Counter::CacheProbes),
            cache_hits: self.get(Counter::CacheHits),
            index_node_reads: self.get(Counter::IndexNodeReads),
            lock_waits: self.get(Counter::LockWaits),
        }
    }

    /// Reset every counter to zero (between experiments).
    pub fn reset(&self) {
        for c in Counter::ALL {
            self.counter(c).store(0, Ordering::Relaxed);
        }
    }
}

/// Identifies one metered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    SeqPageReads,
    RandPageReads,
    PageWrites,
    DbTuples,
    IpcCrossings,
    IpcTuples,
    AppTuples,
    AppSpillPages,
    CheckUnits,
    CacheProbes,
    CacheHits,
    IndexNodeReads,
    LockWaits,
}

impl Counter {
    pub const ALL: [Counter; 13] = [
        Counter::SeqPageReads,
        Counter::RandPageReads,
        Counter::PageWrites,
        Counter::DbTuples,
        Counter::IpcCrossings,
        Counter::IpcTuples,
        Counter::AppTuples,
        Counter::AppSpillPages,
        Counter::CheckUnits,
        Counter::CacheProbes,
        Counter::CacheHits,
        Counter::IndexNodeReads,
        Counter::LockWaits,
    ];
}

thread_local! {
    /// Stack of per-transaction / per-request meters active on this thread.
    static SCOPES: RefCell<Vec<Arc<CostMeter>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that registers `meter` as an attribution target on the current
/// thread: while the scope is alive, every [`CostMeter::add`] performed on
/// this thread (against any meter) is mirrored into the scoped meter. Scopes
/// nest — a dispatcher request scope can contain a transaction scope, and
/// both receive the work done inside the inner scope.
///
/// The guard is `!Send` so a scope is always popped on the thread that
/// pushed it.
pub struct MeterScope {
    meter: Arc<CostMeter>,
    _not_send: PhantomData<*const ()>,
}

impl MeterScope {
    pub fn enter(meter: Arc<CostMeter>) -> MeterScope {
        SCOPES.with(|scopes| scopes.borrow_mut().push(Arc::clone(&meter)));
        MeterScope { meter, _not_send: PhantomData }
    }

    /// The meter this scope feeds.
    pub fn meter(&self) -> &Arc<CostMeter> {
        &self.meter
    }
}

impl Drop for MeterScope {
    fn drop(&mut self) {
        SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            // Scopes are strictly nested (RAII, !Send), so ours is on top.
            let popped = scopes.pop();
            debug_assert!(popped.is_some_and(|p| Arc::ptr_eq(&p, &self.meter)));
        });
    }
}

/// An immutable point-in-time copy of the meter, with difference support.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeterSnapshot {
    pub seq_page_reads: u64,
    pub rand_page_reads: u64,
    pub page_writes: u64,
    pub db_tuples: u64,
    pub ipc_crossings: u64,
    pub ipc_tuples: u64,
    pub app_tuples: u64,
    pub app_spill_pages: u64,
    pub check_units: u64,
    pub cache_probes: u64,
    pub cache_hits: u64,
    pub index_node_reads: u64,
    pub lock_waits: u64,
}

impl MeterSnapshot {
    /// Work performed between `earlier` and `self`.
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        MeterSnapshot {
            seq_page_reads: self.seq_page_reads - earlier.seq_page_reads,
            rand_page_reads: self.rand_page_reads - earlier.rand_page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            db_tuples: self.db_tuples - earlier.db_tuples,
            ipc_crossings: self.ipc_crossings - earlier.ipc_crossings,
            ipc_tuples: self.ipc_tuples - earlier.ipc_tuples,
            app_tuples: self.app_tuples - earlier.app_tuples,
            app_spill_pages: self.app_spill_pages - earlier.app_spill_pages,
            check_units: self.check_units - earlier.check_units,
            cache_probes: self.cache_probes - earlier.cache_probes,
            cache_hits: self.cache_hits - earlier.cache_hits,
            index_node_reads: self.index_node_reads - earlier.index_node_reads,
            lock_waits: self.lock_waits - earlier.lock_waits,
        }
    }

    pub fn cache_hit_ratio(&self) -> f64 {
        if self.cache_probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_probes as f64
        }
    }
}

/// Cost constants in milliseconds per unit, calibrated to the paper's 1996
/// environment. See DESIGN.md section 5.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Calibration {
    pub ms_seq_page_read: f64,
    pub ms_rand_page_read: f64,
    pub ms_page_write: f64,
    pub ms_db_tuple: f64,
    pub ms_ipc_crossing: f64,
    pub ms_ipc_tuple: f64,
    pub ms_app_tuple: f64,
    pub ms_app_spill_page: f64,
    pub ms_check_unit: f64,
    pub ms_cache_probe: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::sparc20_1996()
    }
}

impl Calibration {
    /// Default calibration: a 1996 SPARCstation 20 class machine.
    ///
    /// * Seagate ST15230N-era disk: ~11 ms average access; sequential
    ///   multi-page transfers amortize to ~1.5 ms/8 KB page.
    /// * 60 MHz SuperSPARC: ~150 us of evaluation work per tuple in the
    ///   engine (TPC-D expressions are arithmetic-heavy); interpreted
    ///   ABAP per-tuple work is several times that.
    /// * SQL interface crossing (parameterized OPEN/FETCH via IPC): ~0.5 ms.
    /// * Batch-input consistency checking: the dominant load cost; one check
    ///   unit is one application-level validation step (dialog simulation,
    ///   dictionary validation, authority check) — SAP transactions cost
    ///   on the order of seconds per record on this hardware.
    pub fn sparc20_1996() -> Self {
        Calibration {
            ms_seq_page_read: 1.5,
            ms_rand_page_read: 11.0,
            ms_page_write: 2.0,
            ms_db_tuple: 0.15,
            ms_ipc_crossing: 0.5,
            ms_ipc_tuple: 0.05,
            ms_app_tuple: 0.5,
            ms_app_spill_page: 3.0,
            ms_check_unit: 150.0,
            ms_cache_probe: 0.08,
        }
    }

    /// Simulated seconds for a snapshot of work.
    pub fn seconds(&self, m: &MeterSnapshot) -> f64 {
        let ms = m.seq_page_reads as f64 * self.ms_seq_page_read
            + m.rand_page_reads as f64 * self.ms_rand_page_read
            + m.page_writes as f64 * self.ms_page_write
            + m.db_tuples as f64 * self.ms_db_tuple
            + m.ipc_crossings as f64 * self.ms_ipc_crossing
            + m.ipc_tuples as f64 * self.ms_ipc_tuple
            + m.app_tuples as f64 * self.ms_app_tuple
            + m.app_spill_pages as f64 * self.ms_app_spill_page
            + m.check_units as f64 * self.ms_check_unit
            + m.cache_probes as f64 * self.ms_cache_probe;
        ms / 1000.0
    }
}

/// Pretty duration like the paper's tables ("2h 14m 56s", "5m 17s", "34s").
pub fn fmt_duration(seconds: f64) -> String {
    let total = seconds.round() as u64;
    let d = total / 86_400;
    let h = (total % 86_400) / 3600;
    let m = (total % 3600) / 60;
    let s = total % 60;
    if seconds < 1.0 {
        return format!("{:.2}s", seconds);
    }
    let mut out = String::new();
    if d > 0 {
        out.push_str(&format!("{d}d "));
    }
    if h > 0 || d > 0 {
        out.push_str(&format!("{h}h "));
    }
    if m > 0 || h > 0 || d > 0 {
        out.push_str(&format!("{m}m "));
    }
    out.push_str(&format!("{s}s"));
    out
}

impl fmt::Display for MeterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq_io={} rand_io={} writes={} db_tuples={} ipc={} ipc_tuples={} app_tuples={} spill={} checks={} cache={}/{} lock_waits={}",
            self.seq_page_reads,
            self.rand_page_reads,
            self.page_writes,
            self.db_tuples,
            self.ipc_crossings,
            self.ipc_tuples,
            self.app_tuples,
            self.app_spill_pages,
            self.check_units,
            self.cache_hits,
            self.cache_probes,
            self.lock_waits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_and_resets() {
        let m = CostMeter::new();
        m.bump(Counter::SeqPageReads);
        m.add(Counter::DbTuples, 10);
        assert_eq!(m.get(Counter::SeqPageReads), 1);
        assert_eq!(m.get(Counter::DbTuples), 10);
        m.reset();
        assert_eq!(m.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let m = CostMeter::new();
        m.add(Counter::AppTuples, 5);
        let a = m.snapshot();
        m.add(Counter::AppTuples, 7);
        let diff = m.snapshot().since(&a);
        assert_eq!(diff.app_tuples, 7);
        assert_eq!(diff.seq_page_reads, 0);
    }

    #[test]
    fn calibration_converts_to_seconds() {
        let cal = Calibration::sparc20_1996();
        let snap = MeterSnapshot { rand_page_reads: 1000, ..Default::default() };
        let s = cal.seconds(&snap);
        assert!((s - 11.0).abs() < 1e-9);
    }

    #[test]
    fn random_io_much_more_expensive_than_sequential() {
        let cal = Calibration::default();
        assert!(cal.ms_rand_page_read > 4.0 * cal.ms_seq_page_read);
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(fmt_duration(317.0), "5m 17s");
        assert_eq!(fmt_duration(34.0), "34s");
        assert_eq!(fmt_duration(8096.0), "2h 14m 56s");
        assert_eq!(fmt_duration(2_231_700.0), "25d 19h 55m 0s");
        assert_eq!(fmt_duration(0.25), "0.25s");
    }

    #[test]
    fn meter_scope_mirrors_work_and_nests() {
        let global = CostMeter::new();
        let outer = CostMeter::new();
        let inner = CostMeter::new();
        global.add(Counter::DbTuples, 1); // before any scope
        {
            let _o = MeterScope::enter(Arc::clone(&outer));
            global.add(Counter::DbTuples, 10);
            {
                let _i = MeterScope::enter(Arc::clone(&inner));
                global.add(Counter::DbTuples, 100);
            }
            global.add(Counter::DbTuples, 1000);
        }
        global.add(Counter::DbTuples, 10000); // after scopes closed
        assert_eq!(global.get(Counter::DbTuples), 11111);
        assert_eq!(outer.get(Counter::DbTuples), 1110);
        assert_eq!(inner.get(Counter::DbTuples), 100);
    }

    #[test]
    fn meter_scope_does_not_double_count_self() {
        let meter = CostMeter::new();
        let _s = MeterScope::enter(Arc::clone(&meter));
        meter.add(Counter::AppTuples, 3);
        assert_eq!(meter.get(Counter::AppTuples), 3);
    }

    #[test]
    fn hit_ratio() {
        let snap = MeterSnapshot { cache_probes: 100, cache_hits: 85, ..Default::default() };
        assert!((snap.cache_hit_ratio() - 0.85).abs() < 1e-12);
        assert_eq!(MeterSnapshot::default().cache_hit_ratio(), 0.0);
    }
}
