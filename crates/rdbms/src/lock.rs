//! Hierarchical (multi-granularity) lock manager: IS/IX/S/X intention
//! locks at table level with S/X key-range locks underneath, in the Gray &
//! Reuter tradition the commercial engines of the paper's era used.
//!
//! A transaction reading one key range of a table takes IS on the table
//! plus a shared range lock; a writer takes IX plus exclusive ranges (or
//! points). Whole-table operations take plain S/X, which conflict with the
//! other side's intention bits — so a full scan still excludes writers,
//! but an RF1 insert of *new* keys slips past index-driven queries instead
//! of queuing behind them. Key ranges are encoded-key byte intervals
//! (`storage::codec::encode_key` is order-preserving), with inclusive
//! upper bounds widened by byte-increment exactly like the B+-tree's
//! `Included` bound, so a prefix bound covers all composite keys under it.
//!
//! When one transaction accumulates more than `escalation_threshold` range
//! locks on a single table, they are traded for one table lock
//! (escalation). A lock conversion (e.g. S -> X while other readers share
//! the table) waits for the other holders to drain; while a converter is
//! pending, no new conflicting locks are granted (no starvation), and a
//! second simultaneous converter is aborted by the wait-for graph as a
//! genuine deadlock. Deadlocks across both levels are detected with the
//! same wait-for graph, backstopped by a lock-wait timeout.

use crate::clock::{CostMeter, Counter};
use crate::error::{DbError, DbResult};
use crate::index::btree::increment_bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transaction identifier (monotonically increasing per database).
pub type TxnId = u64;

/// Lock strength on a table. `IntentShared`/`IntentExclusive` announce
/// range locks underneath; `Shared`/`Exclusive` cover the whole table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// IS — this transaction holds (or will take) shared ranges below.
    IntentShared,
    /// IX — this transaction holds exclusive ranges below.
    IntentExclusive,
    /// S — whole-table read; excludes writers at any granularity.
    Shared,
    /// X — whole-table write; excludes everything.
    Exclusive,
}

impl LockMode {
    /// The classic multi-granularity compatibility matrix.
    pub fn compatible(held: LockMode, requested: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (held, requested),
            (IntentShared, IntentShared | IntentExclusive | Shared)
                | (IntentExclusive, IntentShared | IntentExclusive)
                | (Shared, IntentShared | Shared)
        )
    }

    /// Does holding `self` make a request for `requested` redundant?
    fn covers(self, requested: LockMode) -> bool {
        use LockMode::*;
        match self {
            Exclusive => true,
            Shared => matches!(requested, Shared | IntentShared),
            IntentExclusive => matches!(requested, IntentExclusive | IntentShared),
            IntentShared => requested == IntentShared,
        }
    }

    fn bit(self) -> u8 {
        match self {
            LockMode::IntentShared => 1,
            LockMode::IntentExclusive => 2,
            LockMode::Shared => 4,
            LockMode::Exclusive => 8,
        }
    }

    const ALL: [LockMode; 4] =
        [LockMode::IntentShared, LockMode::IntentExclusive, LockMode::Shared, LockMode::Exclusive];
}

fn bits_compatible(held_bits: u8, requested: LockMode) -> bool {
    LockMode::ALL
        .into_iter()
        .filter(|m| held_bits & m.bit() != 0)
        .all(|m| LockMode::compatible(m, requested))
}

/// A half-open interval of encoded key bytes: `lo` inclusive (empty =
/// unbounded below), `hi` exclusive (`None` = unbounded above).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    lo: Vec<u8>,
    hi: Option<Vec<u8>>,
}

impl KeyRange {
    /// The whole key space.
    pub fn all() -> KeyRange {
        KeyRange { lo: Vec::new(), hi: None }
    }

    /// A single full key (covers suffixed composite keys under it, like
    /// the B+-tree's `Included` bound).
    pub fn point(key: &[u8]) -> KeyRange {
        KeyRange { lo: key.to_vec(), hi: increment_bytes(key) }
    }

    /// `[lo, hi]` with an inclusive, prefix-widened upper bound; `None`
    /// on either side means unbounded.
    pub fn span(lo: Option<&[u8]>, hi_inclusive: Option<&[u8]>) -> KeyRange {
        KeyRange {
            lo: lo.map(<[u8]>::to_vec).unwrap_or_default(),
            hi: hi_inclusive.and_then(increment_bytes),
        }
    }

    /// Do the two intervals share at least one encoded key?
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        let starts_below = |lo: &[u8], hi: &Option<Vec<u8>>| match hi {
            None => true,
            Some(h) => lo < h.as_slice(),
        };
        starts_below(&self.lo, &other.hi) && starts_below(&other.lo, &self.hi)
    }

    /// Is `other` entirely inside this interval? Used to answer a lock
    /// re-request from a range the transaction already holds.
    pub fn contains(&self, other: &KeyRange) -> bool {
        let lo_ok = self.lo.as_slice() <= other.lo.as_slice();
        let hi_ok = match (&self.hi, &other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b <= a,
        };
        lo_ok && hi_ok
    }
}

/// Row/key-range lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowMode {
    /// Readers share; conflicts only with exclusive ranges.
    Shared,
    /// Writers exclude every overlapping range.
    Exclusive,
}

/// One key-range lock request/holding on a table. Built with the
/// constructors, which pick the phantom semantics:
///
/// * [`RowLock::shared`] — predicate read with known bounds; conflicts
///   with *any* exclusive range including inserts (phantom protection).
/// * [`RowLock::shared_existing`] — reads rows located at run time
///   (index-driven probes without static bounds); conflicts with
///   deletes/updates of current rows but not with inserts of new keys.
/// * [`RowLock::exclusive`] — delete/update of existing rows.
/// * [`RowLock::insert`] — exclusive lock on a newly created key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowLock {
    mode: RowMode,
    range: KeyRange,
    /// Exclusive lock on a key that did not exist before this transaction
    /// (insert): compatible with `existing`-only readers.
    fresh: bool,
    /// Shared lock on current table contents only (no phantom claim).
    existing: bool,
}

impl RowLock {
    /// Predicate read with phantom protection: conflicts with any
    /// exclusive range in `range`, including inserts of new keys.
    pub fn shared(range: KeyRange) -> RowLock {
        RowLock { mode: RowMode::Shared, range, fresh: false, existing: false }
    }

    /// Read of rows located at run time (no static predicate): conflicts
    /// with deletes/updates of current rows but lets fresh-key inserts
    /// slip past.
    pub fn shared_existing(range: KeyRange) -> RowLock {
        RowLock { mode: RowMode::Shared, range, fresh: false, existing: true }
    }

    /// Delete or update of rows that already exist in `range`.
    pub fn exclusive(range: KeyRange) -> RowLock {
        RowLock { mode: RowMode::Exclusive, range, fresh: false, existing: false }
    }

    /// Exclusive lock on a newly created key: compatible with
    /// [`RowLock::shared_existing`] readers, which cannot observe it.
    pub fn insert(range: KeyRange) -> RowLock {
        RowLock { mode: RowMode::Exclusive, range, fresh: true, existing: false }
    }

    /// Table-level mode this range lock announces (its intention lock).
    fn intention(&self) -> LockMode {
        match self.mode {
            RowMode::Shared => LockMode::IntentShared,
            RowMode::Exclusive => LockMode::IntentExclusive,
        }
    }

    fn conflicts_with(&self, other: &RowLock) -> bool {
        if self.mode == RowMode::Shared && other.mode == RowMode::Shared {
            return false;
        }
        // A reader of current contents cannot observe a key that did not
        // exist when the inserter locked it — S(existing) and X(fresh)
        // never conflict. That is what lets RF1 slip past query streams.
        if self.mode != other.mode {
            let (s, x) = if self.mode == RowMode::Shared { (self, other) } else { (other, self) };
            if s.existing && x.fresh {
                return false;
            }
        }
        self.range.overlaps(&other.range)
    }
}

/// What a blocked transaction is waiting for.
#[derive(Debug, Clone)]
enum Request {
    Table(LockMode),
    Row(RowLock),
}

/// One row of the `M$LOCKS` monitoring view: a holder of (or waiter for)
/// locks on one table. See [`LockManager::snapshot_locks`].
#[derive(Debug, Clone)]
pub struct LockInfo {
    pub table: String,
    pub txn: TxnId,
    /// `"HELD"` or `"WAITING"`.
    pub state: &'static str,
    /// Held table modes (`"IX,S"`; empty for row-only holders) or the
    /// blocked request (`"TABLE X"`, `"ROW S"`, `"ROW X"`).
    pub mode: String,
    /// Key-range locks this transaction holds on this table.
    pub row_locks: u64,
}

fn mode_short(m: LockMode) -> &'static str {
    match m {
        LockMode::IntentShared => "IS",
        LockMode::IntentExclusive => "IX",
        LockMode::Shared => "S",
        LockMode::Exclusive => "X",
    }
}

#[derive(Default)]
struct TableLocks {
    /// Table-mode bitmask per holder (a transaction can hold e.g. S|IX).
    held: HashMap<TxnId, u8>,
    rows: Vec<(TxnId, RowLock)>,
    /// Transaction waiting to convert to a stronger table mode. While set,
    /// new locks that conflict with the requested mode are not granted, so
    /// the converter cannot be starved by a stream of new readers.
    upgrader: Option<TxnId>,
}

struct LmState {
    tables: HashMap<String, TableLocks>,
    waiting: HashMap<TxnId, (String, Request)>,
}

/// Hierarchical strict two-phase lock manager with wait-for-graph deadlock
/// detection and a timeout fallback.
pub struct LockManager {
    state: Mutex<LmState>,
    released: Condvar,
    timeout: Duration,
    escalation_threshold: usize,
    meter: Option<Arc<CostMeter>>,
}

/// Row locks a transaction may hold on one table before they are traded
/// for a single table lock. Sized so a TPC-D refresh pair at SF 0.2
/// (UF1 inserts ~1500 ORDERS+LINEITEM rows) stays row-granular.
pub const DEFAULT_ESCALATION_THRESHOLD: usize = 4096;

impl LockManager {
    /// A lock manager with the default escalation threshold and no meter;
    /// `timeout` bounds every lock wait (the deadlock backstop).
    pub fn new(timeout: Duration) -> Self {
        Self::configured(timeout, DEFAULT_ESCALATION_THRESHOLD, None)
    }

    /// Full-control constructor: `escalation_threshold` row locks per
    /// table before they are traded for one table lock (clamped to at
    /// least 1), and an optional meter that counts row locks,
    /// escalations, and conversion waits.
    pub fn configured(
        timeout: Duration,
        escalation_threshold: usize,
        meter: Option<Arc<CostMeter>>,
    ) -> Self {
        LockManager {
            state: Mutex::new(LmState { tables: HashMap::new(), waiting: HashMap::new() }),
            released: Condvar::new(),
            timeout,
            escalation_threshold: escalation_threshold.max(1),
            meter,
        }
    }

    fn count(&self, c: Counter) {
        if let Some(m) = &self.meter {
            m.bump(c);
        }
    }

    /// Acquire (or convert to) table-level `mode` on `table` for
    /// transaction `me`, blocking while conflicting holders exist. Returns
    /// the wall-clock time spent blocked (zero when granted immediately).
    pub fn acquire(&self, me: TxnId, table: &str, mode: LockMode) -> DbResult<Duration> {
        let key = table.to_ascii_uppercase();
        let mut st = self.state.lock();
        if Self::table_covered(&st, me, &key, mode) {
            return Ok(Duration::ZERO);
        }
        let is_conversion = st.tables.get(&key).is_some_and(|t| {
            t.held.get(&me).copied().unwrap_or(0) != 0 || t.rows.iter().any(|(txn, _)| *txn == me)
        });
        let waited = self.wait_for_grant(&mut st, me, &key, Request::Table(mode), is_conversion);
        if waited.is_ok() {
            let t = st.tables.entry(key).or_default();
            *t.held.entry(me).or_insert(0) |= mode.bit();
            if t.upgrader == Some(me) {
                t.upgrader = None;
                self.released.notify_all();
            }
        }
        waited
    }

    /// Acquire a key-range lock (granting the matching intention lock on
    /// the table as part of the same request). Escalates to a table lock
    /// once `me` holds more than the escalation threshold of ranges here.
    pub fn acquire_row(&self, me: TxnId, table: &str, row: RowLock) -> DbResult<Duration> {
        let key = table.to_ascii_uppercase();
        let mut st = self.state.lock();
        if Self::row_covered(&st, me, &key, &row) {
            return Ok(Duration::ZERO);
        }
        let intention = row.intention();
        let waited = self.wait_for_grant(&mut st, me, &key, Request::Row(row.clone()), false)?;
        let t = st.tables.entry(key.clone()).or_default();
        *t.held.entry(me).or_insert(0) |= intention.bit();
        t.rows.push((me, row));
        self.count(Counter::RowLocks);
        let mine = t.rows.iter().filter(|(txn, _)| *txn == me).count();
        if mine <= self.escalation_threshold {
            return Ok(waited);
        }
        // Escalate: trade all of `me`'s ranges here for one table lock.
        let mode = if t.rows.iter().any(|(txn, r)| *txn == me && r.mode == RowMode::Exclusive) {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        let escalation_wait = self.wait_for_grant(&mut st, me, &key, Request::Table(mode), true)?;
        let t = st.tables.entry(key).or_default();
        *t.held.entry(me).or_insert(0) |= mode.bit();
        if t.upgrader == Some(me) {
            t.upgrader = None;
        }
        t.rows.retain(|(txn, _)| *txn != me);
        self.count(Counter::LockEscalations);
        self.released.notify_all();
        Ok(waited + escalation_wait)
    }

    /// Release every lock `me` holds and wake blocked requesters.
    pub fn release_all(&self, me: TxnId) {
        let mut st = self.state.lock();
        st.waiting.remove(&me);
        st.tables.retain(|_, t| {
            t.held.remove(&me);
            t.rows.retain(|(txn, _)| *txn != me);
            if t.upgrader == Some(me) {
                t.upgrader = None;
            }
            !t.held.is_empty() || !t.rows.is_empty()
        });
        self.released.notify_all();
    }

    /// Tables `me` currently holds locks on (for tests / introspection).
    pub fn held(&self, me: TxnId) -> Vec<String> {
        let st = self.state.lock();
        let mut out: Vec<String> = st
            .tables
            .iter()
            .filter(|(_, t)| {
                t.held.get(&me).copied().unwrap_or(0) != 0
                    || t.rows.iter().any(|(txn, _)| *txn == me)
            })
            .map(|(name, _)| name.clone())
            .collect();
        out.sort();
        out
    }

    /// Number of key-range locks `me` holds on `table` (zero after an
    /// escalation traded them for a table lock).
    pub fn row_lock_count(&self, me: TxnId, table: &str) -> usize {
        let key = table.to_ascii_uppercase();
        let st = self.state.lock();
        st.tables.get(&key).map_or(0, |t| t.rows.iter().filter(|(txn, _)| *txn == me).count())
    }

    /// Does `me` hold a whole-table (non-intention) lock on `table`?
    pub fn holds_table_lock(&self, me: TxnId, table: &str) -> bool {
        let key = table.to_ascii_uppercase();
        let st = self.state.lock();
        st.tables.get(&key).is_some_and(|t| {
            let bits = t.held.get(&me).copied().unwrap_or(0);
            bits & (LockMode::Shared.bit() | LockMode::Exclusive.bit()) != 0
        })
    }

    /// True when no transaction holds or waits for anything (test hook for
    /// "no phantom holders survive release_all").
    pub fn is_quiescent(&self) -> bool {
        let st = self.state.lock();
        st.tables.is_empty() && st.waiting.is_empty()
    }

    /// Point-in-time picture of the whole lock table for the M$LOCKS
    /// monitoring view: one entry per (table, holder) and one per waiter,
    /// sorted by table then transaction. Takes the state mutex briefly;
    /// never blocks on any lock.
    pub fn snapshot_locks(&self) -> Vec<LockInfo> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for (name, t) in &st.tables {
            let mut holders: Vec<TxnId> = t.held.keys().copied().collect();
            holders.extend(t.rows.iter().map(|(txn, _)| *txn));
            holders.sort_unstable();
            holders.dedup();
            for txn in holders {
                let bits = t.held.get(&txn).copied().unwrap_or(0);
                let mode = LockMode::ALL
                    .into_iter()
                    .filter(|m| bits & m.bit() != 0)
                    .map(mode_short)
                    .collect::<Vec<_>>()
                    .join(",");
                let row_locks = t.rows.iter().filter(|(holder, _)| *holder == txn).count() as u64;
                out.push(LockInfo { table: name.clone(), txn, state: "HELD", mode, row_locks });
            }
        }
        for (txn, (table, req)) in &st.waiting {
            let mode = match req {
                Request::Table(m) => format!("TABLE {}", mode_short(*m)),
                Request::Row(r) => match r.mode {
                    RowMode::Shared => "ROW S".to_string(),
                    RowMode::Exclusive => "ROW X".to_string(),
                },
            };
            out.push(LockInfo {
                table: table.clone(),
                txn: *txn,
                state: "WAITING",
                mode,
                row_locks: 0,
            });
        }
        drop(st);
        out.sort_by(|a, b| {
            a.table.cmp(&b.table).then(a.txn.cmp(&b.txn)).then(a.state.cmp(b.state))
        });
        out
    }

    /// Block until `req` is grantable (the caller applies the grant while
    /// the state lock is still held). `conversion` marks requests that
    /// strengthen locks `me` already holds — those register as the table's
    /// pending upgrader so new readers cannot starve them.
    fn wait_for_grant(
        &self,
        st: &mut parking_lot::MutexGuard<'_, LmState>,
        me: TxnId,
        key: &str,
        req: Request,
        conversion: bool,
    ) -> DbResult<Duration> {
        let start = Instant::now();
        let mut blocked = false;
        loop {
            if Self::conflicting_holders(st, me, key, &req).is_empty() {
                st.waiting.remove(&me);
                return Ok(if blocked { start.elapsed() } else { Duration::ZERO });
            }
            if !blocked {
                blocked = true;
                if conversion {
                    let t = st.tables.entry(key.to_string()).or_default();
                    if t.upgrader.is_none() {
                        t.upgrader = Some(me);
                    }
                    self.count(Counter::UpgradeWaits);
                }
            }
            st.waiting.insert(me, (key.to_string(), req.clone()));
            let abort = |st: &mut LmState, reason: String| {
                st.waiting.remove(&me);
                if let Some(t) = st.tables.get_mut(key) {
                    if t.upgrader == Some(me) {
                        t.upgrader = None;
                    }
                }
                Err(DbError::Deadlock(reason))
            };
            if Self::in_cycle(st, me) {
                return abort(st, format!("transaction {me} aborted: deadlock on table {key}"));
            }
            if start.elapsed() >= self.timeout {
                return abort(
                    st,
                    format!("transaction {me} aborted: lock wait timeout on table {key}"),
                );
            }
            // Wake periodically even without a release so a cycle formed by
            // two requests registering simultaneously is still detected.
            let tick = self.timeout.min(Duration::from_millis(20));
            self.released.wait_for(st, tick);
        }
    }

    fn table_covered(st: &LmState, me: TxnId, key: &str, mode: LockMode) -> bool {
        let bits = st.tables.get(key).and_then(|t| t.held.get(&me)).copied().unwrap_or(0);
        LockMode::ALL.into_iter().any(|m| bits & m.bit() != 0 && m.covers(mode))
    }

    fn row_covered(st: &LmState, me: TxnId, key: &str, row: &RowLock) -> bool {
        let needed_table = match row.mode {
            RowMode::Shared => LockMode::Shared,
            RowMode::Exclusive => LockMode::Exclusive,
        };
        if Self::table_covered(st, me, key, needed_table) {
            return true;
        }
        let Some(t) = st.tables.get(key) else { return false };
        t.rows.iter().any(|(txn, held)| {
            *txn == me
                && (held.mode == RowMode::Exclusive || row.mode == RowMode::Shared)
                && held.range.contains(&row.range)
        })
    }

    /// Transactions whose current locks (or pending conversion) block
    /// `me`'s request. Range-lock holders are visible to table requests
    /// through their intention bits, which `acquire_row` grants atomically
    /// with the range.
    fn conflicting_holders(st: &LmState, me: TxnId, key: &str, req: &Request) -> Vec<TxnId> {
        let Some(t) = st.tables.get(key) else { return Vec::new() };
        let mut out = Vec::new();
        for (&txn, &bits) in &t.held {
            if txn == me || bits == 0 {
                continue;
            }
            let conflict = match req {
                Request::Table(mode) => !bits_compatible(bits, *mode),
                // A range request conflicts with another's whole-table
                // lock exactly as its intention mode would.
                Request::Row(row) => !bits_compatible(bits, row.intention()),
            };
            if conflict {
                out.push(txn);
            }
        }
        if let Request::Row(row) = req {
            for (txn, held) in &t.rows {
                if *txn != me && !out.contains(txn) && held.conflicts_with(row) {
                    out.push(*txn);
                }
            }
        }
        // A pending converter blocks new grants that are incompatible with
        // the mode it is converting to (readers already holding locks are
        // unaffected: their re-requests are answered by the covered
        // checks before we get here).
        if let Some(u) = t.upgrader {
            if u != me && !out.contains(&u) {
                if let Some((ukey, Request::Table(umode))) = st.waiting.get(&u) {
                    let blocked = match req {
                        Request::Table(mode) => !LockMode::compatible(*umode, *mode),
                        Request::Row(row) => !LockMode::compatible(*umode, row.intention()),
                    };
                    if ukey == key && blocked {
                        out.push(u);
                    }
                }
            }
        }
        out
    }

    /// Does the wait-for graph contain a cycle through `me`? Edges run from
    /// each waiting transaction to the holders blocking its request.
    fn in_cycle(st: &LmState, me: TxnId) -> bool {
        let mut visited = HashSet::new();
        let Some((key, req)) = st.waiting.get(&me) else { return false };
        let mut stack = Self::conflicting_holders(st, me, key, req);
        while let Some(n) = stack.pop() {
            if n == me {
                return true;
            }
            if !visited.insert(n) {
                continue;
            }
            if let Some((k, r)) = st.waiting.get(&n) {
                stack.extend(Self::conflicting_holders(st, n, k, r));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn key(i: i64) -> Vec<u8> {
        crate::storage::codec::encode_key(&[crate::types::Value::Int(i)])
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        let compat = |a, b| LockMode::compatible(a, b);
        assert!(compat(IntentShared, IntentShared));
        assert!(compat(IntentShared, IntentExclusive));
        assert!(compat(IntentShared, Shared));
        assert!(!compat(IntentShared, Exclusive));
        assert!(compat(IntentExclusive, IntentExclusive));
        assert!(!compat(IntentExclusive, Shared));
        assert!(compat(Shared, Shared));
        assert!(!compat(Shared, IntentExclusive));
        for m in LockMode::ALL {
            assert!(!compat(Exclusive, m));
            assert!(!compat(m, Exclusive));
        }
    }

    #[test]
    fn key_ranges_overlap_and_contain() {
        let r = |a: i64, b: i64| KeyRange::span(Some(&key(a)), Some(&key(b)));
        assert!(r(1, 10).overlaps(&r(10, 20)), "inclusive bounds touch");
        assert!(!r(1, 9).overlaps(&r(10, 20)));
        assert!(r(1, 100).contains(&r(5, 50)));
        assert!(!r(5, 50).contains(&r(1, 100)));
        assert!(KeyRange::all().contains(&r(1, 100)));
        assert!(KeyRange::all().overlaps(&KeyRange::point(&key(7))));
        assert!(r(1, 10).overlaps(&KeyRange::point(&key(10))));
        assert!(!r(1, 10).overlaps(&KeyRange::point(&key(11))));
        // A point on a key prefix covers composite keys extending it.
        let prefix = KeyRange::point(&key(3));
        let composite = crate::storage::codec::encode_key(&[
            crate::types::Value::Int(3),
            crate::types::Value::Int(9),
        ]);
        assert!(prefix.overlaps(&KeyRange::point(&composite)));
    }

    #[test]
    fn range_locks_on_disjoint_keys_do_not_conflict() {
        let lm = LockManager::new(Duration::from_millis(200));
        lm.acquire_row(1, "t", RowLock::shared(KeyRange::span(Some(&key(1)), Some(&key(100)))))
            .unwrap();
        // Disjoint writer proceeds; overlapping writer deadlock-times-out.
        lm.acquire_row(2, "t", RowLock::exclusive(KeyRange::point(&key(200)))).unwrap();
        assert!(matches!(
            lm.acquire_row(2, "t", RowLock::exclusive(KeyRange::point(&key(50)))),
            Err(DbError::Deadlock(_))
        ));
        // Insert of a new key inside the read range conflicts (phantom
        // protection for static predicate ranges)...
        assert!(matches!(
            lm.acquire_row(2, "t", RowLock::insert(KeyRange::point(&key(60)))),
            Err(DbError::Deadlock(_))
        ));
        lm.release_all(1);
        lm.release_all(2);
        // ...but not with an existing-rows-only reader (which spans the
        // whole key space here).
        lm.acquire_row(3, "t", RowLock::shared_existing(KeyRange::all())).unwrap();
        lm.acquire_row(2, "t", RowLock::insert(KeyRange::point(&key(60)))).unwrap();
        // The existing reader does conflict with a delete range.
        assert!(matches!(
            lm.acquire_row(4, "t", RowLock::exclusive(KeyRange::span(None, Some(&key(10))))),
            Err(DbError::Deadlock(_))
        ));
        assert!(!lm.is_quiescent());
        lm.release_all(2);
        lm.release_all(3);
        assert!(lm.is_quiescent());
    }

    #[test]
    fn table_lock_excludes_row_locks_and_vice_versa() {
        let lm = LockManager::new(Duration::from_millis(150));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        // Reader under IS coexists with table S; row writer does not.
        lm.acquire_row(2, "t", RowLock::shared(KeyRange::point(&key(1)))).unwrap();
        assert!(lm.acquire_row(3, "t", RowLock::exclusive(KeyRange::point(&key(9)))).is_err());
        lm.release_all(1);
        lm.acquire_row(3, "t", RowLock::exclusive(KeyRange::point(&key(9)))).unwrap();
        // Row X (via IX) blocks a whole-table S request.
        assert!(lm.acquire(4, "t", LockMode::Shared).is_err());
        lm.release_all(2);
        lm.release_all(3);
        lm.acquire(4, "t", LockMode::Shared).unwrap();
    }

    #[test]
    fn conversion_waits_for_readers_to_drain() {
        let lm = Arc::new(LockManager::configured(
            Duration::from_secs(5),
            DEFAULT_ESCALATION_THRESHOLD,
            Some(CostMeter::new()),
        ));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.acquire(2, "t", LockMode::Shared).unwrap();
        let released = Arc::new(AtomicBool::new(false));
        let lm2 = Arc::clone(&lm);
        let rel2 = Arc::clone(&released);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            rel2.store(true, Ordering::SeqCst);
            lm2.release_all(2);
        });
        // The upgrade must wait for txn 2 rather than abort immediately.
        let waited = lm.acquire(1, "t", LockMode::Exclusive).unwrap();
        assert!(released.load(Ordering::SeqCst), "upgrade granted only after the reader left");
        assert!(waited > Duration::ZERO);
        h.join().unwrap();
        assert_eq!(lm.meter.as_ref().unwrap().get(Counter::UpgradeWaits), 1);
    }

    #[test]
    fn pending_upgrader_blocks_new_readers() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.acquire(2, "t", LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let upgrader = std::thread::spawn(move || lm2.acquire(1, "t", LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(60));
        // A brand-new reader must queue behind the pending upgrade (no
        // starvation), even though its mode is compatible with the
        // current holders.
        let lm3 = Arc::clone(&lm);
        let reader_done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&reader_done);
        let reader = std::thread::spawn(move || {
            let r = lm3.acquire(3, "t", LockMode::Shared);
            done2.store(true, Ordering::SeqCst);
            r
        });
        std::thread::sleep(Duration::from_millis(80));
        assert!(!reader_done.load(Ordering::SeqCst), "reader must queue behind the upgrader");
        lm.release_all(2);
        upgrader.join().unwrap().unwrap();
        lm.release_all(1);
        reader.join().unwrap().unwrap();
    }

    #[test]
    fn two_simultaneous_upgraders_deadlock_one_victim() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(1, "t", LockMode::Shared).unwrap();
        lm.acquire(2, "t", LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let a = std::thread::spawn(move || {
            let r = lm2.acquire(1, "t", LockMode::Exclusive);
            if r.is_err() {
                lm2.release_all(1);
            }
            r
        });
        let lm3 = Arc::clone(&lm);
        let b = std::thread::spawn(move || {
            let r = lm3.acquire(2, "t", LockMode::Exclusive);
            if r.is_err() {
                lm3.release_all(2);
            }
            r
        });
        let ra = a.join().unwrap();
        let rb = b.join().unwrap();
        assert!(
            ra.is_ok() != rb.is_ok(),
            "exactly one upgrader wins, the other is the deadlock victim: {ra:?} {rb:?}"
        );
    }

    #[test]
    fn escalation_trades_ranges_for_a_table_lock() {
        let meter = CostMeter::new();
        let lm = LockManager::configured(Duration::from_millis(200), 4, Some(Arc::clone(&meter)));
        for i in 0..4 {
            lm.acquire_row(1, "t", RowLock::insert(KeyRange::point(&key(i)))).unwrap();
        }
        assert_eq!(lm.row_lock_count(1, "t"), 4);
        assert!(!lm.holds_table_lock(1, "t"));
        lm.acquire_row(1, "t", RowLock::insert(KeyRange::point(&key(99)))).unwrap();
        assert_eq!(lm.row_lock_count(1, "t"), 0, "ranges traded for the table lock");
        assert!(lm.holds_table_lock(1, "t"));
        assert_eq!(meter.get(Counter::LockEscalations), 1);
        assert_eq!(meter.get(Counter::RowLocks), 5);
        // The escalated X excludes even disjoint row locks now.
        assert!(lm.acquire_row(2, "t", RowLock::exclusive(KeyRange::point(&key(1000)))).is_err());
        lm.release_all(1);
        assert!(lm.is_quiescent());
    }
}
