//! `M$` system views are read without locks from provider closures, so
//! they must stay correct while the catalog churns underneath them: DDL
//! invalidating plan-cache entries, tables appearing and disappearing,
//! and statements being re-planned concurrently.

use rdbms::{Database, PlanCache, Value, WaitEvent, WaitSnapshot};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn db_with_table() -> Arc<Database> {
    let db = Arc::new(Database::with_defaults());
    db.execute("CREATE TABLE t (a INTEGER NOT NULL, b INTEGER, PRIMARY KEY (a))").unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 10)).unwrap();
    }
    db
}

/// Monitor-view reads race DDL churn and the plan-cache invalidation it
/// causes. Readers must never see an error while tables come and go; the
/// cache must actually be invalidated by every index touch on `t`.
#[test]
fn m_view_reads_race_ddl_and_plan_cache_invalidation() {
    const DDL_ROUNDS: usize = 40;

    let db = db_with_table();
    let cache = PlanCache::new(16);
    let done = Arc::new(AtomicBool::new(false));
    let view_reads = Arc::new(AtomicU64::new(0));

    // Two monitor readers sweeping the engine-level views the whole time
    // the churn below runs.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (db, done, view_reads) =
                (Arc::clone(&db), Arc::clone(&done), Arc::clone(&view_reads));
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    for view in ["M$WAIT_EVENTS", "M$STATEMENTS", "M$LOCKS"] {
                        let rows = db
                            .query(&format!("SELECT * FROM {view}"))
                            .unwrap_or_else(|e| panic!("{view} read failed mid-DDL: {e}"));
                        if view == "M$WAIT_EVENTS" {
                            assert_eq!(rows.rows.len(), 6);
                        }
                        view_reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // The churn: tables appear and disappear, every index touch on `t`
    // invalidates its cached plan, and the statement is re-prepared and
    // re-run against the new catalog version each round.
    let mut misses = 0u64;
    let mut hits = 0u64;
    for i in 0..DDL_ROUNDS {
        db.execute(&format!("CREATE TABLE u{i} (x INTEGER NOT NULL, PRIMARY KEY (x))")).unwrap();
        db.execute(&format!("CREATE INDEX t_b{i} ON t (b)")).unwrap();
        db.execute(&format!("DROP TABLE u{i}")).unwrap();
        let plan = cache.prepare(&db, "SELECT b FROM t WHERE a = 7").unwrap();
        misses += (!plan.cache_hit) as u64;
        let rows = db.execute_prepared(&plan.prepared, &plan.extracted_params).unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(70)]]);
        let again = cache.prepare(&db, "SELECT b FROM t WHERE a = 7").unwrap();
        hits += again.cache_hit as u64;
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    assert_eq!(misses, DDL_ROUNDS as u64, "every index DDL on t must force a replan");
    assert_eq!(hits, DDL_ROUNDS as u64, "re-prepares between DDL must hit");
    assert!(view_reads.load(Ordering::Relaxed) > 0, "monitor readers never got a sweep in");
}

/// `M$TRACES` and `M$SPANS` read the trace ring without stopping it: 16
/// sessions complete traces as fast as they can — enough to rotate the
/// ring past its capacity — while readers sweep both views through SQL.
/// Every fetched row must satisfy the partition invariant, no sweep may
/// observe a duplicate trace id, and nothing may panic.
#[test]
fn m_traces_reads_race_concurrent_trace_completion() {
    const WRITERS: usize = 16;
    const PER_WRITER: usize = 300; // 4800 traces > the 4096-slot ring

    let db = Arc::new(Database::with_defaults());
    let done = Arc::new(AtomicBool::new(false));
    let sweeps = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (db, done, sweeps) = (Arc::clone(&db), Arc::clone(&done), Arc::clone(&sweeps));
            std::thread::spawn(move || {
                let capacity = db.trace_ring().capacity();
                while !done.load(Ordering::Relaxed) {
                    let rows = db
                        .query(
                            "SELECT TRACE_ID, END_TO_END_US, DISPATCH_QUEUE_US, LOCK_US, \
                             WAL_FLUSH_US, GROUP_COMMIT_US, BUFFER_MISS_US, EXEC_US, \
                             APP_SERVER_US FROM M$TRACES",
                        )
                        .unwrap_or_else(|e| panic!("M$TRACES read failed mid-churn: {e}"))
                        .rows;
                    assert!(rows.len() <= capacity, "ring overflowed its capacity");
                    let mut seen = HashSet::new();
                    for row in &rows {
                        let ints: Vec<i64> = row
                            .iter()
                            .map(|v| match v {
                                Value::Int(i) => *i,
                                other => panic!("non-integer in M$TRACES: {other:?}"),
                            })
                            .collect();
                        assert!(
                            seen.insert(ints[0]),
                            "duplicate trace id {} in one sweep",
                            ints[0]
                        );
                        let sum: i64 = ints[2..].iter().sum();
                        assert_eq!(sum, ints[1], "segments must sum to END_TO_END_US mid-churn");
                    }
                    db.query("SELECT TRACE_ID, SPAN_ID, ELAPSED_US FROM M$SPANS")
                        .unwrap_or_else(|e| panic!("M$SPANS read failed mid-churn: {e}"));
                    sweeps.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let ctx = db
                        .begin_request("race", &format!("w{w}-{i}"))
                        .expect("monitor is on by default");
                    let _guard = ctx.install();
                    // A real wait on the serving thread, so completed
                    // traces carry a nonzero Exec segment.
                    db.wait_stats().record(WaitEvent::Exec, Duration::from_micros(20));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let ring = db.trace_ring();
    assert_eq!(ring.completed(), (WRITERS * PER_WRITER) as u64);
    assert!(ring.evicted() > 0, "the churn must have rotated the ring");
    assert!(sweeps.load(Ordering::Relaxed) > 0, "readers never got a sweep in");
}

/// Monitor plans produce rows at execute time, not plan time: re-running
/// the same prepared `M$` plan must see state recorded after it was
/// prepared, and the shared plan cache must refuse to cache it at all.
#[test]
fn monitor_rows_stay_fresh_through_prepared_plans() {
    let db = db_with_table();
    let cache = PlanCache::new(8);
    let first = cache.prepare(&db, "SELECT * FROM M$STATEMENTS").unwrap();
    let n_before =
        db.execute_prepared(&first.prepared, &first.extracted_params).unwrap().rows.len();

    // New statements land in the collector after the plan was built (the
    // server session layer is the production caller of `record`).
    let waits = WaitSnapshot::default();
    db.statement_collector().record(
        "k1",
        "SELECT b FROM t WHERE a = ?",
        Duration::from_micros(120),
        1,
        &waits,
    );
    db.statement_collector().record(
        "k2",
        "UPDATE t SET b = ? WHERE a = ?",
        Duration::from_micros(250),
        1,
        &waits,
    );

    let again = cache.prepare(&db, "SELECT * FROM M$STATEMENTS").unwrap();
    assert!(!again.cache_hit, "M$ statements must bypass the shared plan cache");
    let n_after = db.execute_prepared(&again.prepared, &again.extracted_params).unwrap().rows.len();
    assert_eq!(n_after, n_before + 2, "prepared M$ plan must see post-prepare state");

    // And the very first prepared plan, re-executed, sees them too.
    let n_stale_plan =
        db.execute_prepared(&first.prepared, &first.extracted_params).unwrap().rows.len();
    assert_eq!(n_stale_plan, n_after, "rows are produced at execute time, not plan time");
}
