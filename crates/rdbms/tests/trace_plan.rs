//! The executor's span instrumentation: running a query under a
//! `trace::TraceSession` must yield an EXPLAIN-ANALYZE span tree whose
//! structure matches the plan and whose per-node exclusive times sum to the
//! query total.

use rdbms::Database;
use trace::{Calibration, TraceSession};

fn sample_db() -> Database {
    let db = Database::with_defaults();
    db.execute(
        "CREATE TABLE orders (o_id INTEGER NOT NULL, o_cust INTEGER, o_total DECIMAL(10,2), \
         PRIMARY KEY (o_id))",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE lines (l_order INTEGER NOT NULL, l_no INTEGER NOT NULL, l_qty INTEGER, \
         PRIMARY KEY (l_order, l_no))",
    )
    .unwrap();
    for o in 0..50 {
        db.execute(&format!("INSERT INTO orders VALUES ({o}, {}, {}.25)", o % 7, o * 3)).unwrap();
        for l in 0..4 {
            db.execute(&format!("INSERT INTO lines VALUES ({o}, {l}, {})", (o + l) % 9)).unwrap();
        }
    }
    db.execute("ANALYZE orders").unwrap();
    db.execute("ANALYZE lines").unwrap();
    db
}

#[test]
fn traced_query_produces_a_plan_span_tree() {
    let db = sample_db();
    let sql = "SELECT o_cust, SUM(l_qty) FROM orders, lines WHERE o_id = l_order \
               AND o_total > 10 GROUP BY o_cust ORDER BY o_cust";
    let session = TraceSession::start(Calibration::default());
    let result = db.query(sql).unwrap();
    let trace = session.finish();

    // One root span (the topmost plan node), covering all session work
    // since nothing else ran on the thread.
    let root = trace.root().expect("single root span");
    assert!(root.span_count() >= 4, "expected scan/join/agg/sort spans, got:\n{}", trace.render());

    // The root's rows_out attribute is the query's result cardinality.
    assert_eq!(root.attr("rows_out"), Some(result.rows.len().to_string().as_str()));

    // Scans on both tables appear somewhere in the tree.
    let names: Vec<&str> = collect_names(root);
    assert!(names.iter().any(|n| n.contains("ORDERS")), "no scan span for orders: {names:?}");
    assert!(names.iter().any(|n| n.contains("LINES")), "no scan span for lines: {names:?}");
    assert!(names.iter().any(|n| n.starts_with("Aggregate")), "no aggregate span: {names:?}");
    assert!(names.iter().any(|n| n.starts_with("Sort")), "no sort span: {names:?}");

    // Exclusive per-node times sum to the root's inclusive time, and the
    // root accounts for every unit of metered work in the session.
    let root_ms = trace.calibration.millis(&root.work);
    assert!((trace.self_ms_total() - root_ms).abs() < 1e-9);
    assert_eq!(root.work, trace.total, "work outside the root span");
}

#[test]
fn untraced_queries_meter_identically() {
    // The instrumentation must not change what gets metered.
    let sql = "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust";
    let db_a = sample_db();
    let before = db_a.snapshot();
    db_a.query(sql).unwrap();
    let untraced = db_a.snapshot().since(&before);

    let db_b = sample_db();
    let before = db_b.snapshot();
    let session = TraceSession::start(Calibration::default());
    db_b.query(sql).unwrap();
    let trace = session.finish();
    let traced = db_b.snapshot().since(&before);

    assert_eq!(untraced, traced);
    assert_eq!(trace.total, traced);
}

fn collect_names(root: &trace::SpanRecord) -> Vec<&str> {
    let mut out = vec![root.name.as_str()];
    for c in &root.children {
        out.extend(collect_names(c));
    }
    out
}
