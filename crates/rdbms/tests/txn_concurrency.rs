//! Concurrency-control tests: conflicting writers serialize, deadlocks are
//! detected and broken, committed work is visible to later transactions,
//! rollback undoes everything, and lock waits are metered.

use rdbms::db::DbConfig;
use rdbms::types::Value;
use rdbms::{Database, DbError};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn db_with_counter() -> Database {
    let db = Database::with_defaults();
    db.execute("CREATE TABLE counters (id INTEGER NOT NULL, v INTEGER, PRIMARY KEY (id))").unwrap();
    db.execute("INSERT INTO counters VALUES (1, 0)").unwrap();
    db
}

fn counter_value(db: &Database) -> i64 {
    db.query("SELECT v FROM counters WHERE id = 1").unwrap().scalar().unwrap().as_int().unwrap()
}

#[test]
fn conflicting_writers_serialize_without_lost_updates() {
    let db = Arc::new(db_with_counter());
    let threads = 4;
    let increments = 25;
    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let mut txn = db.begin();
                for _ in 0..increments {
                    // Read-modify-write across two statements: only the
                    // exclusive table lock held to commit keeps another
                    // writer from sneaking in between them.
                    let v = txn
                        .query("SELECT v FROM counters WHERE id = 1")
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_int()
                        .unwrap();
                    txn.execute(&format!("UPDATE counters SET v = {} WHERE id = 1", v + 1))
                        .unwrap();
                }
                txn.commit().unwrap();
            });
        }
    });
    assert_eq!(counter_value(&db), (threads * increments) as i64);
}

#[test]
fn deadlock_is_detected_and_one_victim_aborts() {
    let config = DbConfig { lock_timeout: Duration::from_secs(2), ..DbConfig::default() };
    let db = Arc::new(Database::new(config));
    db.execute("CREATE TABLE t1 (a INTEGER)").unwrap();
    db.execute("CREATE TABLE t2 (a INTEGER)").unwrap();
    db.execute("INSERT INTO t1 VALUES (0)").unwrap();
    db.execute("INSERT INTO t2 VALUES (0)").unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let outcomes: Vec<Result<(), DbError>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (first, second) in [("t1", "t2"), ("t2", "t1")] {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let mut txn = db.begin();
                txn.execute(&format!("UPDATE {first} SET a = a + 1")).unwrap();
                barrier.wait(); // both hold their first lock before crossing
                match txn.execute(&format!("UPDATE {second} SET a = a + 1")) {
                    Ok(_) => {
                        txn.commit().unwrap();
                        Ok(())
                    }
                    Err(e) => {
                        txn.rollback().unwrap();
                        Err(e)
                    }
                }
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let victims = outcomes.iter().filter(|o| o.is_err()).count();
    assert_eq!(victims, 1, "exactly one deadlock victim, got {outcomes:?}");
    for o in &outcomes {
        if let Err(e) = o {
            assert!(matches!(e, DbError::Deadlock(_)), "victim error: {e}");
        }
    }
    // The survivor committed both updates; the victim rolled back both.
    let a1 = db.query("SELECT a FROM t1").unwrap().scalar().unwrap().as_int().unwrap();
    let a2 = db.query("SELECT a FROM t2").unwrap().scalar().unwrap().as_int().unwrap();
    assert_eq!((a1, a2), (1, 1));
}

#[test]
fn committed_updates_visible_to_later_transactions() {
    let db = db_with_counter();
    let mut writer = db.begin();
    writer.execute("UPDATE counters SET v = 42 WHERE id = 1").unwrap();
    writer.execute("INSERT INTO counters VALUES (2, 7)").unwrap();
    writer.commit().unwrap();
    let mut reader = db.begin();
    let rows = reader.query("SELECT id, v FROM counters ORDER BY id").unwrap();
    assert_eq!(
        rows.rows,
        vec![vec![Value::Int(1), Value::Int(42)], vec![Value::Int(2), Value::Int(7)]]
    );
    reader.commit().unwrap();
}

#[test]
fn rollback_undoes_inserts_updates_and_deletes() {
    let db = db_with_counter();
    db.execute("INSERT INTO counters VALUES (2, 20), (3, 30)").unwrap();
    let before = db.query("SELECT id, v FROM counters ORDER BY id").unwrap();
    let mut txn = db.begin();
    txn.execute("INSERT INTO counters VALUES (4, 40)").unwrap();
    txn.execute("UPDATE counters SET v = v + 100 WHERE id <= 2").unwrap();
    // Chained update of the same rows: rollback must walk RID remaps.
    txn.execute("UPDATE counters SET v = v * 2 WHERE id <= 2").unwrap();
    txn.execute("DELETE FROM counters WHERE id = 3").unwrap();
    txn.rollback().unwrap();
    let after = db.query("SELECT id, v FROM counters ORDER BY id").unwrap();
    assert_eq!(before.rows, after.rows);
}

#[test]
fn dropping_uncommitted_transaction_rolls_back() {
    let db = db_with_counter();
    {
        let mut txn = db.begin();
        txn.execute("UPDATE counters SET v = 999 WHERE id = 1").unwrap();
    } // dropped without commit
    assert_eq!(counter_value(&db), 0);
    // Locks were released: a fresh writer proceeds immediately.
    let mut txn = db.begin();
    txn.execute("UPDATE counters SET v = 5 WHERE id = 1").unwrap();
    txn.commit().unwrap();
    assert_eq!(counter_value(&db), 5);
}

#[test]
fn lock_waits_are_metered_per_transaction() {
    let db = Arc::new(db_with_counter());
    let barrier = Arc::new(Barrier::new(2));
    let waited = std::thread::scope(|scope| {
        let holder = {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut txn = db.begin();
                txn.execute("UPDATE counters SET v = 1 WHERE id = 1").unwrap();
                barrier.wait(); // lock held; let the waiter line up
                std::thread::sleep(Duration::from_millis(120));
                txn.commit().unwrap()
            })
        };
        let waiter = {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                let mut txn = db.begin();
                txn.execute("UPDATE counters SET v = 2 WHERE id = 1").unwrap();
                txn.commit().unwrap()
            })
        };
        let holder_stats = holder.join().unwrap();
        let waiter_stats = waiter.join().unwrap();
        assert_eq!(holder_stats.work.lock_waits(), 0);
        assert_eq!(waiter_stats.work.lock_waits(), 1);
        assert!(!waiter_stats.lock_wait.is_zero());
        waiter_stats.lock_wait
    });
    assert!(waited >= Duration::from_millis(50), "waiter blocked for {waited:?}");
    assert_eq!(counter_value(&db), 2);
}
