//! SQL conformance suite: many small, targeted behaviours of the engine,
//! each with a hand-computed expected answer.

use rdbms::types::Value;
use rdbms::{Database, DbError};

fn db() -> Database {
    Database::with_defaults()
}

fn setup(db: &Database) {
    db.execute(
        "CREATE TABLE emp (id INTEGER NOT NULL, dept VARCHAR(10), salary DECIMAL(10,2), \
         hired DATE, boss INTEGER, PRIMARY KEY (id))",
    )
    .unwrap();
    for (id, dept, salary, hired, boss) in [
        (1, "'ENG'", "1000.00", "DATE '1990-01-15'", "NULL"),
        (2, "'ENG'", "800.00", "DATE '1991-06-01'", "1"),
        (3, "'SALES'", "900.50", "DATE '1992-03-10'", "1"),
        (4, "'SALES'", "700.00", "DATE '1993-11-30'", "3"),
        (5, "NULL", "600.00", "DATE '1994-07-04'", "3"),
    ] {
        db.execute(&format!("INSERT INTO emp VALUES ({id}, {dept}, {salary}, {hired}, {boss})"))
            .unwrap();
    }
    db.execute("ANALYZE emp").unwrap();
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    db.query(sql).unwrap().rows.iter().map(|r| r[0].as_int().unwrap()).collect()
}

#[test]
fn where_null_comparisons_filter_out() {
    let d = db();
    setup(&d);
    // dept = 'ENG' excludes the NULL-dept row; so does dept <> 'ENG'.
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE dept = 'ENG' ORDER BY id"), vec![1, 2]);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE dept <> 'ENG' ORDER BY id"), vec![3, 4]);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE dept IS NULL"), vec![5]);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE dept IS NOT NULL ORDER BY id"), vec![1, 2, 3, 4]);
}

#[test]
fn group_by_groups_nulls_together() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept").unwrap();
    assert_eq!(r.rows.len(), 3, "ENG, SALES, and the NULL group");
    // NULLs sort first under total order.
    assert!(r.rows[0][0].is_null());
    assert_eq!(r.rows[0][1], Value::Int(1));
}

#[test]
fn count_ignores_nulls_count_star_does_not() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT COUNT(*), COUNT(dept), COUNT(boss) FROM emp").unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(5), Value::Int(4), Value::Int(4)]);
}

#[test]
fn avg_and_sum_skip_nulls() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT AVG(boss), SUM(boss) FROM emp").unwrap();
    // bosses: 1, 1, 3, 3 -> sum 8, avg 2
    assert_eq!(r.rows[0][1], Value::Int(8));
    assert_eq!(r.rows[0][0].as_decimal().unwrap().to_f64(), 2.0);
}

#[test]
fn min_max_on_strings_and_dates() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT MIN(dept), MAX(dept), MIN(hired), MAX(hired) FROM emp").unwrap();
    assert_eq!(r.rows[0][0], Value::str("ENG"));
    assert_eq!(r.rows[0][1], Value::str("SALES"));
    assert_eq!(r.rows[0][2], Value::date(1990, 1, 15));
    assert_eq!(r.rows[0][3], Value::date(1994, 7, 4));
}

#[test]
fn having_filters_on_aggregates() {
    let d = db();
    setup(&d);
    let r = d
        .query(
            "SELECT dept, SUM(salary) FROM emp WHERE dept IS NOT NULL \
             GROUP BY dept HAVING SUM(salary) > 1700 ORDER BY dept",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::str("ENG"));
}

#[test]
fn between_and_not_between() {
    let d = db();
    setup(&d);
    assert_eq!(
        ints(&d, "SELECT id FROM emp WHERE salary BETWEEN 700 AND 900 ORDER BY id"),
        vec![2, 4]
    );
    assert_eq!(
        ints(&d, "SELECT id FROM emp WHERE salary NOT BETWEEN 700 AND 900 ORDER BY id"),
        vec![1, 3, 5]
    );
}

#[test]
fn in_list_and_like() {
    let d = db();
    setup(&d);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE id IN (2, 4, 99) ORDER BY id"), vec![2, 4]);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE dept LIKE 'S%' ORDER BY id"), vec![3, 4]);
    assert_eq!(
        ints(&d, "SELECT id FROM emp WHERE dept NOT LIKE 'S%' ORDER BY id"),
        vec![1, 2],
        "NOT LIKE on NULL dept is UNKNOWN, row filtered"
    );
}

#[test]
fn case_without_else_yields_null() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT SUM(CASE WHEN dept = 'ENG' THEN salary END) FROM emp").unwrap();
    assert_eq!(r.rows[0][0].as_decimal().unwrap().to_f64(), 1800.0);
}

#[test]
fn self_join() {
    let d = db();
    setup(&d);
    let r = d
        .query(
            "SELECT e.id, b.id FROM emp e, emp b \
             WHERE e.boss = b.id ORDER BY e.id",
        )
        .unwrap();
    let pairs: Vec<(i64, i64)> =
        r.rows.iter().map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap())).collect();
    assert_eq!(pairs, vec![(2, 1), (3, 1), (4, 3), (5, 3)]);
}

#[test]
fn correlated_subquery_salary_above_dept_average() {
    let d = db();
    setup(&d);
    let r = ints(
        &d,
        "SELECT id FROM emp e WHERE salary > \
         (SELECT AVG(salary) FROM emp i WHERE i.dept = e.dept) ORDER BY id",
    );
    // ENG avg 900 -> id 1; SALES avg 800.25 -> id 3. NULL dept never matches.
    assert_eq!(r, vec![1, 3]);
}

#[test]
fn scalar_subquery_empty_is_null() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT (SELECT salary FROM emp WHERE id = 99) FROM emp WHERE id = 1").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn scalar_subquery_multiple_rows_errors() {
    let d = db();
    setup(&d);
    let err = d.query("SELECT id FROM emp WHERE salary = (SELECT salary FROM emp)");
    assert!(matches!(err, Err(DbError::Execution(_))));
}

#[test]
fn exists_and_not_exists() {
    let d = db();
    setup(&d);
    assert_eq!(
        ints(
            &d,
            "SELECT id FROM emp e WHERE EXISTS \
             (SELECT 1 FROM emp s WHERE s.boss = e.id) ORDER BY id"
        ),
        vec![1, 3],
        "employees who are bosses"
    );
    assert_eq!(
        ints(
            &d,
            "SELECT id FROM emp e WHERE NOT EXISTS \
             (SELECT 1 FROM emp s WHERE s.boss = e.id) ORDER BY id"
        ),
        vec![2, 4, 5]
    );
}

#[test]
fn distinct_counts() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT COUNT(DISTINCT dept), COUNT(DISTINCT boss) FROM emp").unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(2), Value::Int(2)]);
}

#[test]
fn order_by_desc_with_nulls_first_ascending() {
    let d = db();
    setup(&d);
    let r = d.query("SELECT dept FROM emp ORDER BY dept").unwrap();
    assert!(r.rows[0][0].is_null(), "NULL sorts first ascending");
    let r = d.query("SELECT dept FROM emp ORDER BY dept DESC").unwrap();
    assert!(r.rows[4][0].is_null(), "NULL sorts last descending");
}

#[test]
fn limit_and_limit_zero() {
    let d = db();
    setup(&d);
    assert_eq!(ints(&d, "SELECT id FROM emp ORDER BY id LIMIT 2"), vec![1, 2]);
    assert!(ints(&d, "SELECT id FROM emp LIMIT 0").is_empty());
}

#[test]
fn date_arithmetic_in_predicates() {
    let d = db();
    setup(&d);
    assert_eq!(
        ints(
            &d,
            "SELECT id FROM emp WHERE hired < DATE '1992-01-01' + INTERVAL '1' YEAR ORDER BY id"
        ),
        vec![1, 2, 3]
    );
    let r = d
        .query("SELECT EXTRACT(YEAR FROM hired), EXTRACT(MONTH FROM hired) FROM emp WHERE id = 4")
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Int(1993), Value::Int(11)]);
}

#[test]
fn integer_division_is_exact_decimal() {
    let d = db();
    let r = d.query("SELECT 1 / 4, 10 / 2").unwrap();
    assert_eq!(r.rows[0][0].as_decimal().unwrap().to_f64(), 0.25);
    assert_eq!(r.rows[0][1].as_decimal().unwrap().to_f64(), 5.0);
}

#[test]
fn division_by_zero_is_an_error() {
    let d = db();
    assert!(matches!(d.query("SELECT 1 / 0"), Err(DbError::Execution(_))));
}

#[test]
fn view_over_aggregate_is_queryable_and_joinable() {
    let d = db();
    setup(&d);
    d.execute(
        "CREATE VIEW dept_pay AS SELECT dept, SUM(salary) AS total FROM emp \
         WHERE dept IS NOT NULL GROUP BY dept",
    )
    .unwrap();
    let r = d
        .query(
            "SELECT e.id FROM emp e, dept_pay p \
             WHERE e.dept = p.dept AND p.total > 1700 ORDER BY e.id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2, "both ENG employees");
}

#[test]
fn derived_table_with_aggregate() {
    let d = db();
    setup(&d);
    let r = d
        .query(
            "SELECT MAX(total) FROM \
             (SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept) AS t",
        )
        .unwrap();
    assert_eq!(r.rows[0][0].as_decimal().unwrap().to_f64(), 1800.0);
}

#[test]
fn insert_duplicate_pkey_is_atomic() {
    let d = db();
    setup(&d);
    let err = d.execute("INSERT INTO emp VALUES (1, 'X', 1, DATE '2000-01-01', NULL)");
    assert!(matches!(err, Err(DbError::Constraint(_))));
    // The failed insert left nothing behind.
    assert_eq!(ints(&d, "SELECT COUNT(*) FROM emp"), vec![5]);
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE id = 1"), vec![1]);
}

#[test]
fn update_moves_index_entries() {
    let d = db();
    setup(&d);
    d.execute("UPDATE emp SET id = 100 WHERE id = 5").unwrap();
    assert!(ints(&d, "SELECT id FROM emp WHERE id = 5").is_empty());
    assert_eq!(ints(&d, "SELECT id FROM emp WHERE id = 100"), vec![100]);
}

#[test]
fn multi_key_order_by_mixed_directions() {
    let d = db();
    setup(&d);
    let r =
        d.query("SELECT dept, id FROM emp WHERE dept IS NOT NULL ORDER BY dept, id DESC").unwrap();
    let got: Vec<(String, i64)> =
        r.rows.iter().map(|row| (row[0].to_string(), row[1].as_int().unwrap())).collect();
    assert_eq!(
        got,
        vec![("ENG".into(), 2), ("ENG".into(), 1), ("SALES".into(), 4), ("SALES".into(), 3)]
    );
}

#[test]
fn char_padding_is_invisible_in_comparisons_and_output() {
    let d = db();
    d.execute("CREATE TABLE c (k CHAR(10) NOT NULL, PRIMARY KEY (k))").unwrap();
    d.execute("INSERT INTO c VALUES ('abc')").unwrap();
    let r = d.query("SELECT k FROM c WHERE k = 'abc'").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0].to_string(), "abc", "display trims the padding");
    // A duplicate differing only in blanks is still a duplicate.
    let err = d.execute("INSERT INTO c VALUES ('abc   ')");
    assert!(matches!(err, Err(DbError::Constraint(_))));
}

#[test]
fn aggregates_in_where_are_rejected() {
    let d = db();
    setup(&d);
    assert!(d.query("SELECT id FROM emp WHERE SUM(salary) > 10").is_err());
}

#[test]
fn unknown_function_is_an_analysis_error() {
    let d = db();
    setup(&d);
    assert!(matches!(d.query("SELECT FROBNICATE(dept) FROM emp"), Err(DbError::Analysis(_))));
}

#[test]
fn substr_and_string_functions() {
    let d = db();
    let r = d
        .query(
            "SELECT SUBSTR('PROMO BURNISHED', 1, 5), UPPER('abc'), LOWER('ABC'), LENGTH('abcd  ')",
        )
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![Value::str("PROMO"), Value::str("ABC"), Value::str("abc"), Value::Int(4)]
    );
}

#[test]
fn three_way_join_with_filters_on_each() {
    let d = db();
    d.execute("CREATE TABLE a (x INTEGER, tag VARCHAR(4))").unwrap();
    d.execute("CREATE TABLE b (x INTEGER, y INTEGER)").unwrap();
    d.execute("CREATE TABLE c (y INTEGER, name VARCHAR(4))").unwrap();
    d.execute("INSERT INTO a VALUES (1,'p'),(2,'q'),(3,'p')").unwrap();
    d.execute("INSERT INTO b VALUES (1,10),(2,20),(3,30),(3,10)").unwrap();
    d.execute("INSERT INTO c VALUES (10,'m'),(20,'n'),(30,'m')").unwrap();
    let r = d
        .query(
            "SELECT a.x, c.y FROM a, b, c \
             WHERE a.x = b.x AND b.y = c.y AND a.tag = 'p' AND c.name = 'm' \
             ORDER BY a.x, c.y",
        )
        .unwrap();
    let got: Vec<(i64, i64)> =
        r.rows.iter().map(|row| (row[0].as_int().unwrap(), row[1].as_int().unwrap())).collect();
    assert_eq!(got, vec![(1, 10), (3, 10), (3, 30)]);
}
