//! Multi-thread property tests for the hierarchical lock manager: real
//! contention on real threads (the throughput driver models locks in
//! virtual time; these tests check the engine's actual grant/wait/abort
//! machinery under races).

use rdbms::error::DbError;
use rdbms::lock::{KeyRange, LockManager, LockMode, RowLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn key(k: i64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

/// Row-level X locks on the same key are mutually exclusive, keys are
/// independent, and nothing leaks: after every thread releases, the
/// manager is quiescent.
#[test]
fn concurrent_row_writers_are_mutually_exclusive() {
    let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
    let keys = 4usize;
    let flags: Arc<Vec<AtomicBool>> = Arc::new((0..keys).map(|_| AtomicBool::new(false)).collect());
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let lm = Arc::clone(&lm);
        let flags = Arc::clone(&flags);
        handles.push(thread::spawn(move || {
            for i in 0..50u64 {
                let me = 1 + t; // one txn id per thread, reused per iteration
                let k = ((t + i) % keys as u64) as usize;
                lm.acquire_row(me, "T", RowLock::exclusive(KeyRange::point(&key(k as i64))))
                    .expect("row X grant");
                // Critical section: no other holder of this key.
                assert!(!flags[k].swap(true, Ordering::SeqCst), "two X holders on key {k}");
                thread::yield_now();
                flags[k].store(false, Ordering::SeqCst);
                lm.release_all(me);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(lm.is_quiescent(), "no phantom holders after release_all");
}

/// Escalation (row locks traded for a table lock past the threshold) must
/// not open a window where two writers hold overlapping claims. Escalating
/// writers that deadlock against each other retry, and the manager ends
/// quiescent.
#[test]
fn escalation_preserves_mutual_exclusion() {
    let lm = Arc::new(LockManager::configured(Duration::from_secs(10), 4, None));
    let in_section = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let lm = Arc::clone(&lm);
        let in_section = Arc::clone(&in_section);
        handles.push(thread::spawn(move || {
            let me = 1 + t;
            for round in 0..10i64 {
                // Insert a disjoint block of 8 keys: escalates to table X
                // at the 5th row lock.
                let base = (t as i64) * 1000 + round * 10;
                let mut aborted = false;
                for k in base..base + 8 {
                    match lm.acquire_row(me, "T", RowLock::insert(KeyRange::point(&key(k)))) {
                        Ok(_) => {}
                        Err(DbError::Deadlock(_)) => {
                            // Victim of an escalation race: roll back and
                            // retry the round.
                            lm.release_all(me);
                            aborted = true;
                            break;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                if aborted {
                    continue;
                }
                assert!(lm.holds_table_lock(me, "T"), "past threshold the lock is table-level");
                assert!(
                    !in_section.swap(true, Ordering::SeqCst),
                    "escalated X must exclude other writers"
                );
                thread::yield_now();
                in_section.store(false, Ordering::SeqCst);
                lm.release_all(me);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(lm.is_quiescent());
}

/// A probe reader (IS + shared existing-row locks) does not block RF1-style
/// fresh-key inserts — the regression the hierarchy exists for — while a
/// serializable scan (table S) still does.
#[test]
fn fresh_inserts_slip_past_probe_readers_but_not_scans() {
    let lm = LockManager::new(Duration::from_millis(100));
    // Txn 1 probes existing LINEITEM rows.
    lm.acquire_row(1, "LINEITEM", RowLock::shared_existing(KeyRange::all())).unwrap();
    // Txn 2 inserts a fresh key: granted immediately.
    lm.acquire_row(2, "LINEITEM", RowLock::insert(KeyRange::point(&key(999_999))))
        .expect("fresh insert must not wait behind a probe reader");
    lm.release_all(2);
    lm.release_all(1);

    // Txn 3 scans (serializable table S): the same insert now blocks.
    lm.acquire(3, "LINEITEM", LockMode::Shared).unwrap();
    let err = lm
        .acquire_row(4, "LINEITEM", RowLock::insert(KeyRange::point(&key(999_999))))
        .expect_err("table S must block the insert");
    assert!(matches!(err, DbError::Deadlock(_)), "blocked insert times out: {err}");
    lm.release_all(3);
    lm.release_all(4);
    assert!(lm.is_quiescent());
}

/// Shared-to-exclusive conversion under contention: many readers of one
/// key, each upgrading to X. Exactly one converts at a time; deadlock
/// victims (two simultaneous upgraders form a genuine cycle) roll back
/// and retry. No lost exclusions, no leaked locks.
#[test]
fn upgrade_storm_converges() {
    let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
    let in_section = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let lm = Arc::clone(&lm);
        let in_section = Arc::clone(&in_section);
        handles.push(thread::spawn(move || {
            let me = 1 + t;
            let mut completed = 0;
            while completed < 10 {
                let step = (|| {
                    lm.acquire_row(me, "T", RowLock::shared(KeyRange::point(&key(1))))?;
                    lm.acquire_row(me, "T", RowLock::exclusive(KeyRange::point(&key(1))))?;
                    Ok(())
                })();
                match step {
                    Ok(()) => {
                        assert!(
                            !in_section.swap(true, Ordering::SeqCst),
                            "upgraded X must be exclusive"
                        );
                        thread::yield_now();
                        in_section.store(false, Ordering::SeqCst);
                        lm.release_all(me);
                        completed += 1;
                    }
                    Err(DbError::Deadlock(_)) => lm.release_all(me),
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(lm.is_quiescent());
}
