//! Kill-and-recover tests for the write-ahead log (DESIGN.md §10).
//!
//! A session runs a mixed workload — DDL, autocommit statements, bulk-load
//! rows, committed / rolled-back / still-open transactions, a fuzzy
//! checkpoint — against a WAL-enabled database, then the log file content
//! is captured and "crashed" by truncating it at many byte offsets (every
//! record boundary plus offsets inside records, modelling torn writes).
//! Each truncated copy is recovered and the resulting database is compared
//! against an *independent* interpretation of the surviving log prefix:
//!
//! * every transaction whose Commit record survives is fully visible;
//! * every transaction without one (including autocommit statements cut
//!   before their implicit Commit) is fully rolled back;
//! * system records (bulk load, DDL) are committed-if-present.

use rdbms::wal::{scan_records, LogPayload, WalConfig, SYSTEM_TXN};
use rdbms::{Database, DbConfig, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rdbms-recovery-{name}-{}", std::process::id()));
    p
}

fn wal_db(path: &PathBuf) -> Database {
    let config = DbConfig { wal: Some(WalConfig::new(path)), ..DbConfig::default() };
    Database::open(config).unwrap()
}

fn recover_from(path: &PathBuf) -> (Database, rdbms::RecoveryReport) {
    let config = DbConfig { wal: Some(WalConfig::new(path)), ..DbConfig::default() };
    Database::recover(config).unwrap()
}

/// Rows of ACCOUNTS keyed by primary key, as (id, balance, note).
type State = BTreeMap<i64, Vec<Value>>;

fn observed_state(db: &Database) -> Option<State> {
    let r = db.query("SELECT id, balance, note FROM accounts ORDER BY id").ok()?;
    Some(r.rows.into_iter().map(|row| (row[0].as_int().unwrap(), row)).collect())
}

/// Independently interpret a log prefix: apply, in log order, only the
/// operations of the system transaction and of transactions whose Commit
/// record is inside the prefix. Rows are tracked by primary key, so the
/// interpretation shares no RID machinery with the recovery code it checks.
fn expected_state(bytes: &[u8]) -> (Option<State>, Vec<u64>) {
    let (records, _) = scan_records(bytes);
    let committed: Vec<u64> = {
        let mut c: Vec<u64> = records
            .iter()
            .filter(|r| r.txn != SYSTEM_TXN && matches!(r.payload, LogPayload::Commit))
            .map(|r| r.txn)
            .collect();
        c.sort_unstable();
        c
    };
    let mut table_exists = false;
    let mut state = State::new();
    let pk = |row: &[Value]| row[0].as_int().unwrap();
    for r in &records {
        let visible = r.txn == SYSTEM_TXN || committed.binary_search(&r.txn).is_ok();
        match &r.payload {
            LogPayload::Ddl { sql } if sql.contains("CREATE TABLE") => {
                table_exists = true;
            }
            _ if !visible => {}
            LogPayload::Insert { row, .. } => {
                state.insert(pk(row), row.clone());
            }
            LogPayload::Delete { row, .. } => {
                state.remove(&pk(row));
            }
            LogPayload::Update { old, new, .. } => {
                state.remove(&pk(old));
                state.insert(pk(new), new.clone());
            }
            _ => {}
        }
    }
    (table_exists.then_some(state), committed)
}

/// One representative session; returns the full log bytes. The still-open
/// transaction's records are in the file (an explicit `wal_flush` while it
/// is open) but its rollback is not — the capture happens "at the crash".
fn run_session(log: &PathBuf) -> Vec<u8> {
    let db = wal_db(log);
    db.execute(
        "CREATE TABLE accounts (id INTEGER NOT NULL, balance INTEGER, \
         note VARCHAR(20), PRIMARY KEY (id))",
    )
    .unwrap();
    db.execute("CREATE INDEX acc_bal ON accounts (balance)").unwrap();
    // Autocommit inserts: each an implicit transaction in the log.
    for i in 0..12 {
        db.execute(&format!("INSERT INTO accounts VALUES ({i}, {}, 'init')", i * 100)).unwrap();
    }
    // Bulk-load rows: system records, committed-if-present.
    for i in 100..103 {
        db.insert_row("accounts", &[Value::Int(i), Value::Int(7), Value::str("bulk")]).unwrap();
    }
    db.execute("ANALYZE accounts").unwrap();
    // A committed transaction touching all three DML kinds.
    let mut t = db.begin();
    t.execute("UPDATE accounts SET balance = 0 WHERE id = 3").unwrap();
    t.execute("INSERT INTO accounts VALUES (200, 555, 'txn')").unwrap();
    t.execute("DELETE FROM accounts WHERE id = 7").unwrap();
    t.commit().unwrap();
    // A fuzzy checkpoint mid-history.
    db.checkpoint().unwrap();
    // A transaction rolled back before the crash: CLRs + Abort in the log.
    let mut t = db.begin();
    t.execute("UPDATE accounts SET balance = 999 WHERE id = 5").unwrap();
    t.execute("INSERT INTO accounts VALUES (201, 1, 'gone')").unwrap();
    t.rollback().unwrap();
    // More autocommit work after the checkpoint.
    db.execute("UPDATE accounts SET note = 'post' WHERE id < 2").unwrap();
    db.execute("DELETE FROM accounts WHERE id = 11").unwrap();
    // A transaction still open at the crash — a loser.
    let mut t = db.begin();
    t.execute("INSERT INTO accounts VALUES (300, -5, 'open')").unwrap();
    t.execute("UPDATE accounts SET balance = -1 WHERE id = 10").unwrap();
    db.wal_flush().unwrap();
    // Capture the log *before* the open transaction is dropped (its drop
    // would append CLRs and an Abort — that is the post-crash world).
    let bytes = std::fs::read(log).unwrap();
    drop(t);
    bytes
}

#[test]
fn crash_at_any_offset_recovers_committed_and_rolls_back_losers() {
    let log = tmp("session");
    let bytes = run_session(&log);
    std::fs::remove_file(&log).ok();

    // Cut points: every record boundary, plus offsets inside the following
    // record (torn writes), plus inside the file header.
    let (records, end) = scan_records(&bytes);
    assert!(records.len() > 40, "workload should produce a rich log: {}", records.len());
    let mut cuts: Vec<usize> = vec![0, 3, 8];
    for r in &records {
        cuts.push(r.lsn as usize);
        cuts.push(r.lsn as usize + 5);
    }
    cuts.push(end as usize);
    cuts.retain(|&c| c <= bytes.len());
    cuts.sort_unstable();
    cuts.dedup();

    let cut_log = tmp("cut");
    for &cut in &cuts {
        std::fs::write(&cut_log, &bytes[..cut]).unwrap();
        let (db, report) = recover_from(&cut_log);
        let (expected, committed) = expected_state(&bytes[..cut]);
        assert_eq!(report.committed, committed, "cut={cut}");
        let observed = observed_state(&db);
        assert_eq!(
            observed, expected,
            "state mismatch at cut={cut} ({} records survive)",
            report.records_scanned
        );
        // Losers and winners are disjoint.
        for l in &report.losers {
            assert!(!report.committed.contains(l), "cut={cut}: loser {l} also committed");
        }
    }
    std::fs::remove_file(&cut_log).ok();
}

#[test]
fn recovery_is_idempotent_and_resumable() {
    let log = tmp("idempotent");
    let bytes = run_session(&log);
    std::fs::write(&log, &bytes).unwrap();

    let (db1, report1) = recover_from(&log);
    let state1 = observed_state(&db1).unwrap();
    assert!(!report1.losers.is_empty(), "the open transaction must be a loser");
    drop(db1);

    // Recovering the recovered log (now containing restart's own CLRs and
    // Abort) reproduces the same state: recovery of recovery is a no-op.
    let (db2, report2) = recover_from(&log);
    assert_eq!(observed_state(&db2).unwrap(), state1);
    assert!(report2.losers.is_empty(), "restart already aborted every loser");

    // The recovered database keeps logging: new work survives another crash.
    db2.execute("INSERT INTO accounts VALUES (400, 42, 'resumed')").unwrap();
    drop(db2);
    let (db3, _) = recover_from(&log);
    let r = db3.query("SELECT balance FROM accounts WHERE id = 400").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(42));
    std::fs::remove_file(&log).ok();
}

#[test]
fn checkpoint_bounds_analysis_and_reports_tables() {
    let log = tmp("ckpt");
    let db = wal_db(&log);
    db.execute(
        "CREATE TABLE accounts (id INTEGER NOT NULL, balance INTEGER, \
                note VARCHAR(20), PRIMARY KEY (id))",
    )
    .unwrap();
    db.execute("INSERT INTO accounts VALUES (1, 10, 'a')").unwrap();
    // Checkpoint with a transaction in flight: its id must be in the logged
    // active-transaction table and it must still roll back at restart.
    let mut t = db.begin();
    t.execute("UPDATE accounts SET balance = 77 WHERE id = 1").unwrap();
    let ckpt_lsn = db.checkpoint().unwrap();
    db.execute("INSERT INTO accounts VALUES (2, 20, 'b')").unwrap();
    db.wal_flush().unwrap();
    let bytes = std::fs::read(&log).unwrap();
    drop(t);
    drop(db);
    std::fs::write(&log, &bytes).unwrap();

    let (db, report) = recover_from(&log);
    assert_eq!(report.checkpoint_lsn, Some(ckpt_lsn));
    assert!(!report.dirty_pages.is_empty(), "update before checkpoint dirtied pages");
    assert_eq!(report.losers.len(), 1, "in-flight transaction at checkpoint is the loser");
    let r = db.query("SELECT id, balance FROM accounts ORDER BY id").unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)]],
        "loser's update rolled back, both committed inserts present"
    );
    std::fs::remove_file(&log).ok();
}

#[test]
fn dropped_txn_with_failing_rollback_still_logs_abort() {
    let log = tmp("drop-abort");
    let db = wal_db(&log);
    db.execute(
        "CREATE TABLE accounts (id INTEGER NOT NULL, balance INTEGER, \
                note VARCHAR(20), PRIMARY KEY (id))",
    )
    .unwrap();
    let before = db.meter().snapshot().rollback_errors();
    {
        let mut t = db.begin();
        t.execute("INSERT INTO accounts VALUES (1, 5, 'mine')").unwrap();
        // Sabotage the undo: an autocommit DELETE removes the row underneath
        // the open transaction (autocommit takes no locks), so the drop-time
        // rollback's delete of the already-dead slot fails.
        db.execute("DELETE FROM accounts WHERE id = 1").unwrap();
        drop(t);
    }
    assert!(db.meter().snapshot().rollback_errors() > before, "the failed undo must be observable");
    // Regression: even though the rollback errored, the transaction's Abort
    // record must reach the log *file* without any explicit flush — restart
    // must not treat the transaction as a loser with live effects.
    let records = rdbms::wal::read_log(&log).unwrap();
    let txn_id = records
        .iter()
        .find(|r| matches!(r.payload, LogPayload::Insert { .. }) && r.txn != SYSTEM_TXN)
        .map(|r| r.txn)
        .expect("the insert was logged");
    assert!(
        records.iter().any(|r| r.txn == txn_id && matches!(r.payload, LogPayload::Abort)),
        "abort record missing from the on-disk log"
    );
    drop(db);
    let (db, report) = recover_from(&log);
    assert!(report.losers.is_empty(), "aborted transaction is not a loser");
    // The committed autocommit DELETE stands; the aborted insert is gone.
    let r = db.query("SELECT COUNT(*) FROM accounts").unwrap();
    assert_eq!(r.scalar().unwrap(), Value::Int(0));
    std::fs::remove_file(&log).ok();
}
