//! Property-based tests for the engine's core data structures and
//! invariants.

use proptest::prelude::*;
use rdbms::storage::codec::{decode_row, encode_key, encode_row};
use rdbms::types::{Date, Decimal, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

// ---------------------------------------------------------------------------
// Value generators
// ---------------------------------------------------------------------------

fn arb_decimal() -> impl Strategy<Value = Decimal> {
    (-1_000_000_000_000i128..1_000_000_000_000i128, 0u8..7u8).prop_map(|(m, s)| Decimal::new(m, s))
}

fn arb_date() -> impl Strategy<Value = Date> {
    (-100_000i32..100_000i32).prop_map(Date::from_days)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        arb_decimal().prop_map(Value::Decimal),
        "[ -~]{0,40}".prop_map(Value::Str),
        arb_date().prop_map(Value::Date),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Key-safe values (the documented key domain: numerics within the
/// scale-6 i128 envelope, strings, dates, bools).
fn arb_key_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000_000i64..1_000_000_000i64).prop_map(Value::Int),
        (-10_000_000_000i128..10_000_000_000i128, 0u8..5u8)
            .prop_map(|(m, s)| Value::Decimal(Decimal::new(m, s))),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        arb_date().prop_map(Value::Date),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // -- row codec ---------------------------------------------------------

    #[test]
    fn row_codec_round_trips(row in prop::collection::vec(arb_value(), 0..24)) {
        let bytes = encode_row(&row);
        let back = decode_row(&bytes).unwrap();
        prop_assert_eq!(row.len(), back.len());
        for (a, b) in row.iter().zip(&back) {
            match (a, b) {
                (Value::Null, Value::Null) => {}
                _ => prop_assert!(a == b, "mismatch: {:?} vs {:?}", a, b),
            }
        }
    }

    #[test]
    fn truncated_rows_never_panic(row in prop::collection::vec(arb_value(), 1..8),
                                  cut in 0usize..64) {
        let bytes = encode_row(&row);
        let cut = cut.min(bytes.len());
        // Must either decode or error — never panic.
        let _ = decode_row(&bytes[..cut]);
    }

    // -- order-preserving key encoding --------------------------------------

    #[test]
    fn key_encoding_preserves_total_order(a in arb_key_value(), b in arb_key_value()) {
        let ka = encode_key(std::slice::from_ref(&a));
        let kb = encode_key(std::slice::from_ref(&b));
        prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b),
            "key order mismatch for {:?} vs {:?}", a, b);
    }

    #[test]
    fn composite_key_order_is_lexicographic(
        a in prop::collection::vec(arb_key_value(), 1..4),
        b in prop::collection::vec(arb_key_value(), 1..4),
    ) {
        // Compare element-wise like the executor's sort would.
        let expected = {
            let mut ord = std::cmp::Ordering::Equal;
            for (x, y) in a.iter().zip(b.iter()) {
                ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    break;
                }
            }
            if ord == std::cmp::Ordering::Equal {
                a.len().cmp(&b.len())
            } else {
                ord
            }
        };
        let ka = encode_key(&a);
        let kb = encode_key(&b);
        prop_assert_eq!(ka.cmp(&kb), expected);
    }

    // -- decimal arithmetic --------------------------------------------------

    #[test]
    fn decimal_add_commutes(a in arb_decimal(), b in arb_decimal()) {
        prop_assert_eq!(a.add(b), b.add(a));
    }

    #[test]
    fn decimal_add_sub_inverse(a in arb_decimal(), b in arb_decimal()) {
        prop_assert_eq!(a.add(b).sub(b), a);
    }

    #[test]
    fn decimal_mul_one_is_identity(a in arb_decimal()) {
        prop_assert_eq!(a.mul(Decimal::from_int(1)), a);
    }

    #[test]
    fn decimal_order_matches_f64(a in arb_decimal(), b in arb_decimal()) {
        // f64 is only approximate; check when comfortably apart.
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-3 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn decimal_display_parse_round_trip(a in arb_decimal()) {
        let s = a.to_string();
        let back = Decimal::parse(&s).unwrap();
        prop_assert_eq!(a, back);
    }

    // -- dates ----------------------------------------------------------------

    #[test]
    fn date_ymd_round_trip(d in arb_date()) {
        let (y, m, day) = d.ymd();
        let back = Date::from_ymd(y, m, day).unwrap();
        prop_assert_eq!(d, back);
    }

    #[test]
    fn date_add_days_inverse(d in arb_date(), n in -5000i32..5000) {
        prop_assert_eq!(d.add_days(n).add_days(-n), d);
    }

    #[test]
    fn date_add_days_is_monotone(d in arb_date(), n in 1i32..5000) {
        prop_assert!(d.add_days(n) > d);
    }

    // -- LIKE matching ---------------------------------------------------------

    #[test]
    fn like_without_wildcards_is_equality(s in "[a-z]{0,12}", t in "[a-z]{0,12}") {
        prop_assert_eq!(rdbms::exec::expr::like_match(&s, &t), s == t);
    }

    #[test]
    fn like_contains(s in "[a-z]{0,16}", needle in "[a-z]{1,4}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(
            rdbms::exec::expr::like_match(&s, &pattern),
            s.contains(&needle)
        );
    }

    #[test]
    fn like_prefix_suffix(s in "[a-z]{0,16}", affix in "[a-z]{1,4}") {
        prop_assert_eq!(
            rdbms::exec::expr::like_match(&s, &format!("{affix}%")),
            s.starts_with(&affix)
        );
        prop_assert_eq!(
            rdbms::exec::expr::like_match(&s, &format!("%{affix}")),
            s.ends_with(&affix)
        );
    }
}

// ---------------------------------------------------------------------------
// B+-tree vs model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64),
    Delete(i64),
    Range(i64, i64),
}

fn arb_tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (-500i64..500).prop_map(TreeOp::Insert),
            (-500i64..500).prop_map(TreeOp::Delete),
            ((-500i64..500), (-500i64..500)).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_model(ops in arb_tree_ops()) {
        use rdbms::clock::CostMeter;
        use rdbms::index::BTree;
        use rdbms::storage::{Pager, PagerConfig, Rid};

        let pager = Pager::new(PagerConfig { pool_pages: 64 }, CostMeter::new());
        let mut tree = BTree::new(pager, false).unwrap();
        let mut model: BTreeMap<i64, Rid> = BTreeMap::new();
        let key_of = |k: i64| encode_key(&[Value::Int(k)]);

        for op in &ops {
            match op {
                TreeOp::Insert(k) => {
                    let rid = Rid::new((*k + 1000) as u32, 0);
                    if !model.contains_key(k) {
                        tree.insert(&key_of(*k), rid).unwrap();
                        model.insert(*k, rid);
                    }
                }
                TreeOp::Delete(k) => {
                    if let Some(rid) = model.remove(k) {
                        let found = tree.delete(&key_of(*k), rid).unwrap();
                        prop_assert!(found, "model had {} but tree delete missed", k);
                    }
                }
                TreeOp::Range(lo, hi) => {
                    let klo = key_of(*lo);
                    let khi = key_of(*hi);
                    let got: Vec<Rid> = tree
                        .range_scan(Bound::Included(&klo), Bound::Included(&khi))
                        .unwrap()
                        .into_iter()
                        .map(|(_, r)| r)
                        .collect();
                    let expected: Vec<Rid> =
                        model.range(*lo..=*hi).map(|(_, r)| *r).collect();
                    prop_assert_eq!(&got, &expected, "range [{}, {}]", lo, hi);
                }
            }
        }
        // Final full scan agrees.
        let all: Vec<Rid> = tree.scan_all().unwrap().into_iter().map(|(_, r)| r).collect();
        let expected: Vec<Rid> = model.values().copied().collect();
        prop_assert_eq!(all, expected);
        prop_assert_eq!(tree.entry_count(), model.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// SQL-level properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ORDER BY returns exactly the sorted multiset; GROUP BY sums equal a
    /// manual recomputation; index scans agree with sequential scans.
    #[test]
    fn sql_sort_group_and_index_agree(
        rows in prop::collection::vec((0i64..50, -100i64..100), 1..120)
    ) {
        let db = rdbms::Database::with_defaults();
        db.execute("CREATE TABLE t (g INTEGER, v INTEGER)").unwrap();
        let values: Vec<String> =
            rows.iter().map(|(g, v)| format!("({g}, {v})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();

        // ORDER BY.
        let sorted = db.query("SELECT g, v FROM t ORDER BY g, v").unwrap();
        let mut expected = rows.clone();
        expected.sort();
        let got: Vec<(i64, i64)> = sorted
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(&got, &expected);

        // GROUP BY sums.
        let grouped = db
            .query("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        let mut sums: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for (g, v) in &rows {
            let e = sums.entry(*g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(grouped.rows.len(), sums.len());
        for row in &grouped.rows {
            let g = row[0].as_int().unwrap();
            let (sum, count) = sums[&g];
            prop_assert_eq!(row[1].as_int().unwrap(), sum);
            prop_assert_eq!(row[2].as_int().unwrap(), count);
        }

        // Index scan equals sequential scan.
        let probe = rows[0].0;
        let seq = db
            .query(&format!("SELECT v FROM t WHERE g = {probe} ORDER BY v"))
            .unwrap();
        db.execute("CREATE INDEX t_g ON t (g)").unwrap();
        db.execute("ANALYZE t").unwrap();
        let via_index = db
            .query(&format!("SELECT v FROM t WHERE g = {probe} ORDER BY v"))
            .unwrap();
        prop_assert_eq!(seq.rows, via_index.rows);
    }
}
