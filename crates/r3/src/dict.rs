//! The SAP R/3 data dictionary: logical tables and their mapping onto
//! physical RDBMS tables.
//!
//! Three kinds of logical tables (paper §2.2):
//!
//! * **Transparent** — mapped 1:1 onto an RDBMS table; visible to Native
//!   SQL and to the RDBMS optimizer.
//! * **Pool** — several logical tables bundled into one physical container
//!   table; each logical row becomes one container row of
//!   `(TABNAME, VARKEY, VARDATA)` where VARDATA is a dictionary-encoded
//!   string of the non-key fields.
//! * **Cluster** — logically related rows (same key prefix) bundled into a
//!   *single* physical row whose VARDATA holds all of them. Compact — the
//!   paper's KONV tripled in size when converted to transparent.
//!
//! Pool and cluster tables are *encapsulated*: they can only be read
//! through Open SQL (the dictionary is needed to decode them), never
//! through Native SQL, and nothing about them can be pushed to the RDBMS
//! beyond their key prefix.

use rdbms::error::{DbError, DbResult};
use rdbms::schema::Column;
use rdbms::types::{DataType, Date, Decimal, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Field separator in VARDATA encodings.
const FIELD_SEP: char = '\u{1}';
/// Row separator in cluster VARDATA encodings.
const ROW_SEP: char = '\u{2}';
/// NULL marker.
const NULL_MARK: &str = "\u{3}";

/// Logical table kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableKind {
    Transparent,
    /// Bundled into the named pool container table.
    Pool {
        container: String,
    },
    /// Bundled into the named cluster container; rows sharing the first
    /// `cluster_key_len` key columns form one physical row.
    Cluster {
        container: String,
        cluster_key_len: usize,
    },
}

impl TableKind {
    pub fn is_encapsulated(&self) -> bool {
        !matches!(self, TableKind::Transparent)
    }
}

/// A logical SAP table.
#[derive(Debug, Clone)]
pub struct LogicalTable {
    pub name: String,
    pub kind: TableKind,
    /// All logical columns; the first `key_len` are the key (MANDT first).
    pub columns: Vec<Column>,
    pub key_len: usize,
}

impl LogicalTable {
    pub fn column_index(&self, name: &str) -> DbResult<usize> {
        let upper = name.to_ascii_uppercase();
        self.columns
            .iter()
            .position(|c| c.name == upper)
            .ok_or_else(|| DbError::catalog(format!("{}: no field {name}", self.name)))
    }

    pub fn key_columns(&self) -> &[Column] {
        &self.columns[..self.key_len]
    }

    pub fn data_columns(&self) -> &[Column] {
        &self.columns[self.key_len..]
    }
}

/// The dictionary.
pub struct DataDict {
    tables: HashMap<String, Arc<LogicalTable>>,
}

impl DataDict {
    pub fn new() -> Self {
        DataDict { tables: HashMap::new() }
    }

    pub fn register(&mut self, table: LogicalTable) {
        self.tables.insert(table.name.clone(), Arc::new(table));
    }

    pub fn table(&self, name: &str) -> DbResult<Arc<LogicalTable>> {
        self.tables
            .get(&name.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DbError::catalog(format!("dictionary: no table '{name}'")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }

    /// Logical tables stored in a given container.
    pub fn tables_in_container(&self, container: &str) -> Vec<Arc<LogicalTable>> {
        self.tables
            .values()
            .filter(|t| match &t.kind {
                TableKind::Pool { container: c } | TableKind::Cluster { container: c, .. } => {
                    c == container
                }
                TableKind::Transparent => false,
            })
            .cloned()
            .collect()
    }
}

impl Default for DataDict {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// VARDATA field codec
// ---------------------------------------------------------------------------

/// Encode one value as a VARDATA field (compact text form — this is what
/// makes cluster storage smaller than transparent storage).
pub fn encode_field(v: &Value) -> String {
    match v {
        Value::Null => NULL_MARK.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Decimal(d) => format!("d{d}"),
        Value::Str(s) => format!("s{}", s.trim_end()),
        Value::Date(d) => format!("t{}", d.days()),
        Value::Bool(b) => format!("b{}", *b as u8),
    }
}

/// Decode one VARDATA field.
pub fn decode_field(s: &str) -> DbResult<Value> {
    if s == NULL_MARK {
        return Ok(Value::Null);
    }
    if let Some(rest) = s.strip_prefix('d') {
        return Ok(Value::Decimal(Decimal::parse(rest)?));
    }
    if let Some(rest) = s.strip_prefix('s') {
        return Ok(Value::Str(rest.to_string()));
    }
    if let Some(rest) = s.strip_prefix('t') {
        let days: i32 =
            rest.parse().map_err(|_| DbError::storage(format!("bad date field '{s}'")))?;
        return Ok(Value::Date(Date::from_days(days)));
    }
    if let Some(rest) = s.strip_prefix('b') {
        return Ok(Value::Bool(rest == "1"));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| DbError::storage(format!("bad VARDATA field '{s}'")))
}

/// Encode the data (non-key) fields of one logical row.
pub fn encode_row_data(values: &[Value]) -> String {
    values.iter().map(encode_field).collect::<Vec<_>>().join(&FIELD_SEP.to_string())
}

/// Decode data fields, coercing to the declared column types.
pub fn decode_row_data(s: &str, columns: &[Column]) -> DbResult<Vec<Value>> {
    if columns.is_empty() && s.is_empty() {
        return Ok(Vec::new());
    }
    let parts: Vec<&str> = s.split(FIELD_SEP).collect();
    if parts.len() != columns.len() {
        return Err(DbError::storage(format!(
            "VARDATA has {} fields, dictionary says {}",
            parts.len(),
            columns.len()
        )));
    }
    parts
        .iter()
        .zip(columns)
        .map(|(p, c)| {
            let v = decode_field(p)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                v.coerce_to(&c.ty)
            }
        })
        .collect()
}

/// Encode several logical rows (cluster bundling): each row contributes its
/// *non-cluster-key* fields.
pub fn encode_cluster_rows(rows: &[Vec<Value>]) -> String {
    rows.iter().map(|r| encode_row_data(r)).collect::<Vec<_>>().join(&ROW_SEP.to_string())
}

/// Decode a cluster VARDATA blob into rows of the given columns.
pub fn decode_cluster_rows(s: &str, columns: &[Column]) -> DbResult<Vec<Vec<Value>>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(ROW_SEP).map(|r| decode_row_data(r, columns)).collect()
}

/// The physical DDL of a pool container table.
pub fn pool_container_ddl(name: &str) -> String {
    format!(
        "CREATE TABLE {name} (
            MANDT CHAR(3) NOT NULL,
            TABNAME CHAR(10) NOT NULL,
            VARKEY CHAR(64) NOT NULL,
            VARDATA VARCHAR(4000),
            PRIMARY KEY (MANDT, TABNAME, VARKEY))"
    )
}

/// The physical DDL of a cluster container table. The cluster key columns
/// are provided by the caller (e.g. KNUMV for KOCLU).
pub fn cluster_container_ddl(name: &str, key_cols: &[(&str, DataType)]) -> String {
    let mut cols = String::from("MANDT CHAR(3) NOT NULL");
    let mut pk = String::from("MANDT");
    for (cname, ty) in key_cols {
        cols.push_str(&format!(", {cname} {ty} NOT NULL"));
        pk.push_str(&format!(", {cname}"));
    }
    format!(
        "CREATE TABLE {name} ({cols}, PAGENO INTEGER NOT NULL, VARDATA VARCHAR(60000), \
         PRIMARY KEY ({pk}, PAGENO))"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_codec_round_trip() {
        let vals = [
            Value::Null,
            Value::Int(42),
            Value::Int(-7),
            Value::Decimal(Decimal::parse("3.14").unwrap()),
            Value::str("hello world"),
            Value::date(1995, 6, 17),
            Value::Bool(true),
        ];
        for v in &vals {
            let enc = encode_field(v);
            let dec = decode_field(&enc).unwrap();
            match (v, &dec) {
                (Value::Null, Value::Null) => {}
                _ => assert_eq!(*v, dec, "round trip of {v:?}"),
            }
        }
    }

    #[test]
    fn row_data_codec() {
        let cols = vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::VarChar(20)),
            Column::new("c", DataType::Decimal { precision: 10, scale: 2 }),
        ];
        let row = vec![Value::Int(1), Value::str("x y z"), Value::decimal(12345, 2)];
        let enc = encode_row_data(&row);
        let dec = decode_row_data(&enc, &cols).unwrap();
        assert_eq!(dec, row);
        assert!(decode_row_data("only-one-field", &cols).is_err());
    }

    #[test]
    fn cluster_codec_bundles_rows() {
        let cols = vec![
            Column::new("kschl", DataType::Char(4)),
            Column::new("kbetr", DataType::Decimal { precision: 10, scale: 2 }),
        ];
        let rows = vec![
            vec![Value::str("DISC"), Value::decimal(500, 2)],
            vec![Value::str("TAX"), Value::decimal(200, 2)],
        ];
        let enc = encode_cluster_rows(&rows);
        let dec = decode_cluster_rows(&enc, &cols).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0][0], Value::str("DISC"));
        assert_eq!(decode_cluster_rows("", &cols).unwrap(), Vec::<Vec<Value>>::new());
    }

    #[test]
    fn cluster_is_more_compact_than_fields() {
        // The whole point of cluster tables: shared key prefix amortized.
        let rows: Vec<Vec<Value>> =
            (0..10).map(|i| vec![Value::str("DISC"), Value::Int(i)]).collect();
        let enc = encode_cluster_rows(&rows);
        // Transparent storage would repeat a 16-char key + overhead per row.
        let transparent_estimate = rows.len() * (16 + 3 + 6 + 10);
        assert!(enc.len() < transparent_estimate);
    }

    #[test]
    fn dictionary_lookup() {
        let mut dict = DataDict::new();
        dict.register(LogicalTable {
            name: "KONV".into(),
            kind: TableKind::Cluster { container: "KOCLU".into(), cluster_key_len: 2 },
            columns: vec![
                Column::new("MANDT", DataType::Char(3)),
                Column::new("KNUMV", DataType::Char(16)),
                Column::new("KSCHL", DataType::Char(4)),
            ],
            key_len: 2,
        });
        let t = dict.table("konv").unwrap();
        assert!(t.kind.is_encapsulated());
        assert_eq!(t.column_index("kschl").unwrap(), 2);
        assert!(t.column_index("nope").is_err());
        assert!(dict.table("MARA").is_err());
        assert_eq!(dict.tables_in_container("KOCLU").len(), 1);
    }

    #[test]
    fn container_ddl_parses() {
        rdbms::sql::parse_statement(&pool_container_ddl("KAPOL")).unwrap();
        rdbms::sql::parse_statement(&cluster_container_ddl(
            "KOCLU",
            &[("KNUMV", DataType::Char(16))],
        ))
        .unwrap();
    }
}
