//! Native SQL reports, Release 3.0 form: every query pushed completely
//! into the RDBMS as one `EXEC SQL` statement over the SAP schema —
//! possible because after the upgrade "all involved tables (in particular,
//! KONV) are transparent" (§3.4.4).
//!
//! These texts show what the paper means by query inflation: the TPC-D
//! single-table Q1 is a 5-way join here (VBAP, VBEP, VBAK, KONV twice);
//! Q8's 8-way join becomes 9 relations. Nation/region names resolve
//! through T005T/T005U, discounts and taxes through per-mille KONV rates.
//!
//! For queries that do not touch the KONV conditions, the same texts serve
//! as the Release 2.2 Native reports.

use crate::schema::MANDT;
use crate::system::R3System;
use rdbms::error::{DbError, DbResult};
use rdbms::schema::Row;
use rdbms::types::{Date, Decimal};
use tpcd::QueryParams;

fn mandts(aliases: &[&str]) -> String {
    aliases.iter().map(|a| format!("{a}.MANDT = '{MANDT}'")).collect::<Vec<_>>().join(" AND ")
}

fn dlit(d: Date) -> String {
    format!("DATE '{d}'")
}

fn date_of(s: &str) -> Date {
    Date::parse(s).expect("valid query parameter date")
}

/// Per-mille discount bounds for Q6 (0.06 +- 0.01 -> 50..70).
fn q6_permille_bounds(p: &QueryParams) -> (i64, i64) {
    let center = Decimal::parse(&p.q6_discount).expect("valid discount");
    let c = center.mul(Decimal::from_int(1000)).trunc_i64();
    (c - 10, c + 10)
}

/// The discount/tax join fragment: KD/KT against order `a` and item `v`.
fn konv_join(a: &str, v: &str, with_tax: bool) -> String {
    let mut s = format!("KD.KNUMV = {a}.KNUMV AND KD.KPOSN = {v}.POSNR AND KD.KSCHL = 'DISC'");
    if with_tax {
        s.push_str(&format!(
            " AND KT.KNUMV = {a}.KNUMV AND KT.KPOSN = {v}.POSNR AND KT.KSCHL = 'TAX'"
        ));
    }
    s
}

/// SQL statements of query `n` (the last statement yields the rows).
pub fn sql(n: usize, p: &QueryParams) -> Vec<String> {
    match n {
        1 => {
            let cutoff = date_of("1998-12-01").add_days(-(p.q1_delta as i32));
            vec![format!(
                "SELECT V.RFLAG, V.LSTAT, SUM(V.KWMENG) AS SUM_QTY, SUM(V.NETWR) AS SUM_BASE, \
                   SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS SUM_DISC_PRICE, \
                   SUM(V.NETWR * (1 - KD.KBETR / 1000) * (1 + KT.KBETR / 1000)) AS SUM_CHARGE, \
                   AVG(V.KWMENG) AS AVG_QTY, AVG(V.NETWR) AS AVG_PRICE, \
                   AVG(KD.KBETR / 1000) AS AVG_DISC, COUNT(*) AS COUNT_ORDER \
                 FROM VBAP V, VBEP E, VBAK A, KONV KD, KONV KT \
                 WHERE {} AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR \
                   AND A.VBELN = V.VBELN AND {} \
                   AND E.EDATU <= {} \
                 GROUP BY V.RFLAG, V.LSTAT ORDER BY V.RFLAG, V.LSTAT",
                mandts(&["V", "E", "A", "KD", "KT"]),
                konv_join("A", "V", true),
                dlit(cutoff),
            )]
        }
        2 => vec![format!(
            "SELECT S.SALDO, S.NAME1, T.LANDX, M.MATNR, M.MFRNR, S.STRAS, S.TELF1 \
             FROM MARA M, LFA1 S, EINA I, EINE P, T005 N, T005T T, T005U U \
             WHERE {} AND I.MATNR = M.MATNR AND I.LIFNR = S.LIFNR AND P.INFNR = I.INFNR \
               AND M.GROES = {} AND M.MTART LIKE '%{}' \
               AND S.LAND1 = N.LAND1 AND T.LAND1 = N.LAND1 AND T.SPRAS = 'E' \
               AND U.REGIO = N.REGIO AND U.SPRAS = 'E' AND U.BEZEI = '{}' \
               AND P.NETPR = (SELECT MIN(P2.NETPR) \
                    FROM EINA I2, EINE P2, LFA1 S2, T005 N2, T005U U2 \
                    WHERE {} AND I2.MATNR = M.MATNR AND P2.INFNR = I2.INFNR \
                      AND S2.LIFNR = I2.LIFNR AND S2.LAND1 = N2.LAND1 \
                      AND U2.REGIO = N2.REGIO AND U2.SPRAS = 'E' AND U2.BEZEI = '{}') \
             ORDER BY S.SALDO DESC, T.LANDX, S.NAME1, M.MATNR LIMIT 100",
            mandts(&["M", "S", "I", "P", "N", "T", "U"]),
            p.q2_size,
            p.q2_type,
            p.q2_region,
            mandts(&["I2", "P2", "S2", "N2", "U2"]),
            p.q2_region,
        )],
        3 => {
            let d = date_of(&p.q3_date);
            vec![format!(
                "SELECT V.VBELN, SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS REVENUE, \
                   A.AUDAT, A.SPRIO \
                 FROM KNA1 C, VBAK A, VBAP V, VBEP E, KONV KD \
                 WHERE {} AND C.KDGRP = '{}' AND C.KUNNR = A.KUNNR AND V.VBELN = A.VBELN \
                   AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR AND {} \
                   AND A.AUDAT < {} AND E.EDATU > {} \
                 GROUP BY V.VBELN, A.AUDAT, A.SPRIO \
                 ORDER BY REVENUE DESC, A.AUDAT LIMIT 10",
                mandts(&["C", "A", "V", "E", "KD"]),
                p.q3_segment,
                konv_join("A", "V", false),
                dlit(d),
                dlit(d),
            )]
        }
        4 => {
            let d = date_of(&p.q4_date);
            vec![format!(
                "SELECT A.PRIOK, COUNT(*) AS ORDER_COUNT FROM VBAK A \
                 WHERE A.MANDT = '{MANDT}' AND A.AUDAT >= {} AND A.AUDAT < {} \
                   AND EXISTS (SELECT * FROM VBEP E WHERE E.MANDT = '{MANDT}' \
                        AND E.VBELN = A.VBELN AND E.WADAT < E.LDDAT) \
                 GROUP BY A.PRIOK ORDER BY A.PRIOK",
                dlit(d),
                dlit(d.add_months(3)),
            )]
        }
        5 => {
            let d = date_of(&p.q5_date);
            vec![format!(
                "SELECT T.LANDX, SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS REVENUE \
                 FROM KNA1 C, VBAK A, VBAP V, LFA1 S, T005 N, T005T T, T005U U, KONV KD \
                 WHERE {} AND C.KUNNR = A.KUNNR AND V.VBELN = A.VBELN \
                   AND V.LIFNR = S.LIFNR AND C.LAND1 = S.LAND1 AND S.LAND1 = N.LAND1 \
                   AND T.LAND1 = N.LAND1 AND T.SPRAS = 'E' \
                   AND U.REGIO = N.REGIO AND U.SPRAS = 'E' AND U.BEZEI = '{}' \
                   AND {} \
                   AND A.AUDAT >= {} AND A.AUDAT < {} \
                 GROUP BY T.LANDX ORDER BY REVENUE DESC",
                mandts(&["C", "A", "V", "S", "N", "T", "U", "KD"]),
                p.q5_region,
                konv_join("A", "V", false),
                dlit(d),
                dlit(d.add_years(1)),
            )]
        }
        6 => {
            let d = date_of(&p.q6_date);
            let (lo, hi) = q6_permille_bounds(p);
            vec![format!(
                "SELECT SUM(V.NETWR * (KD.KBETR / 1000)) AS REVENUE \
                 FROM VBAP V, VBEP E, VBAK A, KONV KD \
                 WHERE {} AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR \
                   AND A.VBELN = V.VBELN AND {} \
                   AND E.EDATU >= {} AND E.EDATU < {} \
                   AND KD.KBETR BETWEEN {lo} AND {hi} AND V.KWMENG < {}",
                mandts(&["V", "E", "A", "KD"]),
                konv_join("A", "V", false),
                dlit(d),
                dlit(d.add_years(1)),
                p.q6_quantity,
            )]
        }
        7 => vec![format!(
            "SELECT T1.LANDX AS SUPP_NATION, T2.LANDX AS CUST_NATION, \
               EXTRACT(YEAR FROM E.EDATU) AS L_YEAR, \
               SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS REVENUE \
             FROM LFA1 S, VBAP V, VBEP E, VBAK A, KNA1 C, T005T T1, T005T T2, KONV KD \
             WHERE {} AND S.LIFNR = V.LIFNR AND A.VBELN = V.VBELN \
               AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR AND C.KUNNR = A.KUNNR \
               AND T1.LAND1 = S.LAND1 AND T1.SPRAS = 'E' \
               AND T2.LAND1 = C.LAND1 AND T2.SPRAS = 'E' \
               AND ((T1.LANDX = '{}' AND T2.LANDX = '{}') \
                 OR (T1.LANDX = '{}' AND T2.LANDX = '{}')) \
               AND E.EDATU BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
               AND {} \
             GROUP BY T1.LANDX, T2.LANDX, EXTRACT(YEAR FROM E.EDATU) \
             ORDER BY 1, 2, 3",
            mandts(&["S", "V", "E", "A", "C", "T1", "T2", "KD"]),
            p.q7_nation1,
            p.q7_nation2,
            p.q7_nation2,
            p.q7_nation1,
            konv_join("A", "V", false),
        )],
        8 => vec![format!(
            "SELECT EXTRACT(YEAR FROM A.AUDAT) AS O_YEAR, \
               SUM(CASE WHEN T2.LANDX = '{}' THEN V.NETWR * (1 - KD.KBETR / 1000) \
                   ELSE 0 END) / SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS MKT_SHARE \
             FROM MARA M, LFA1 S, VBAP V, VBAK A, KNA1 C, T005 N1, T005U U1, T005T T2, KONV KD \
             WHERE {} AND M.MATNR = V.MATNR AND S.LIFNR = V.LIFNR AND A.VBELN = V.VBELN \
               AND C.KUNNR = A.KUNNR AND C.LAND1 = N1.LAND1 \
               AND U1.REGIO = N1.REGIO AND U1.SPRAS = 'E' AND U1.BEZEI = '{}' \
               AND T2.LAND1 = S.LAND1 AND T2.SPRAS = 'E' \
               AND A.AUDAT BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' \
               AND M.MTART = '{}' AND {} \
             GROUP BY EXTRACT(YEAR FROM A.AUDAT) ORDER BY O_YEAR",
            p.q8_nation,
            mandts(&["M", "S", "V", "A", "C", "N1", "U1", "T2", "KD"]),
            p.q8_region,
            p.q8_type,
            konv_join("A", "V", false),
        )],
        9 => vec![format!(
            "SELECT T.LANDX AS NATION, EXTRACT(YEAR FROM A.AUDAT) AS O_YEAR, \
               SUM(V.NETWR * (1 - KD.KBETR / 1000) - P.NETPR * V.KWMENG) AS SUM_PROFIT \
             FROM MAKT MK, LFA1 S, VBAP V, VBAK A, EINA I, EINE P, T005T T, KONV KD \
             WHERE {} AND S.LIFNR = V.LIFNR AND I.LIFNR = V.LIFNR AND I.MATNR = V.MATNR \
               AND P.INFNR = I.INFNR AND MK.MATNR = V.MATNR AND MK.SPRAS = 'E' \
               AND A.VBELN = V.VBELN AND T.LAND1 = S.LAND1 AND T.SPRAS = 'E' \
               AND MK.MAKTX LIKE '%{}%' AND {} \
             GROUP BY T.LANDX, EXTRACT(YEAR FROM A.AUDAT) \
             ORDER BY NATION, O_YEAR DESC",
            mandts(&["MK", "S", "V", "A", "I", "P", "T", "KD"]),
            p.q9_color,
            konv_join("A", "V", false),
        )],
        10 => {
            let d = date_of(&p.q10_date);
            vec![format!(
                "SELECT C.KUNNR, C.NAME1, SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS REVENUE, \
                   C.SALDO, T.LANDX, C.STRAS, C.TELF1 \
                 FROM KNA1 C, VBAK A, VBAP V, T005T T, KONV KD \
                 WHERE {} AND C.KUNNR = A.KUNNR AND V.VBELN = A.VBELN \
                   AND A.AUDAT >= {} AND A.AUDAT < {} AND V.RFLAG = 'R' \
                   AND T.LAND1 = C.LAND1 AND T.SPRAS = 'E' AND {} \
                 GROUP BY C.KUNNR, C.NAME1, C.SALDO, C.TELF1, T.LANDX, C.STRAS \
                 ORDER BY REVENUE DESC LIMIT 20",
                mandts(&["C", "A", "V", "T", "KD"]),
                dlit(d),
                dlit(d.add_months(3)),
                konv_join("A", "V", false),
            )]
        }
        11 => vec![format!(
            "SELECT I.MATNR, SUM(P.NETPR * P.BSTMA) AS PART_VALUE \
             FROM EINA I, EINE P, LFA1 S, T005T T \
             WHERE {} AND P.INFNR = I.INFNR AND S.LIFNR = I.LIFNR \
               AND T.LAND1 = S.LAND1 AND T.SPRAS = 'E' AND T.LANDX = '{}' \
             GROUP BY I.MATNR \
             HAVING SUM(P.NETPR * P.BSTMA) > \
               (SELECT SUM(P2.NETPR * P2.BSTMA) * {} \
                FROM EINA I2, EINE P2, LFA1 S2, T005T T2 \
                WHERE {} AND P2.INFNR = I2.INFNR AND S2.LIFNR = I2.LIFNR \
                  AND T2.LAND1 = S2.LAND1 AND T2.SPRAS = 'E' AND T2.LANDX = '{}') \
             ORDER BY PART_VALUE DESC",
            mandts(&["I", "P", "S", "T"]),
            p.q11_nation,
            p.q11_fraction,
            mandts(&["I2", "P2", "S2", "T2"]),
            p.q11_nation,
        )],
        12 => {
            let d = date_of(&p.q12_date);
            vec![format!(
                "SELECT E.VSART, \
                   SUM(CASE WHEN A.PRIOK = '1-URGENT' OR A.PRIOK = '2-HIGH' \
                       THEN 1 ELSE 0 END) AS HIGH_LINE_COUNT, \
                   SUM(CASE WHEN A.PRIOK <> '1-URGENT' AND A.PRIOK <> '2-HIGH' \
                       THEN 1 ELSE 0 END) AS LOW_LINE_COUNT \
                 FROM VBAK A, VBAP V, VBEP E \
                 WHERE {} AND A.VBELN = V.VBELN AND E.VBELN = V.VBELN \
                   AND E.POSNR = V.POSNR AND E.VSART IN ('{}', '{}') \
                   AND E.WADAT < E.LDDAT AND E.EDATU < E.WADAT \
                   AND E.LDDAT >= {} AND E.LDDAT < {} \
                 GROUP BY E.VSART ORDER BY E.VSART",
                mandts(&["A", "V", "E"]),
                p.q12_mode1,
                p.q12_mode2,
                dlit(d),
                dlit(d.add_years(1)),
            )]
        }
        13 => vec![format!(
            "SELECT A.PRIOK, COUNT(*) AS ORDER_COUNT, SUM(A.NETWR) AS TOTAL \
             FROM VBAK A WHERE A.MANDT = '{MANDT}' AND A.KUNNR = '{:016}' \
               AND A.AUDAT >= {} \
             GROUP BY A.PRIOK ORDER BY A.PRIOK",
            p.q13_custkey,
            dlit(date_of(&p.q13_date)),
        )],
        14 => {
            let d = date_of(&p.q14_date);
            vec![format!(
                "SELECT 100.00 * SUM(CASE WHEN M.MTART LIKE 'PROMO%' \
                     THEN V.NETWR * (1 - KD.KBETR / 1000) ELSE 0 END) \
                   / SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS PROMO_REVENUE \
                 FROM VBAP V, VBEP E, VBAK A, MARA M, KONV KD \
                 WHERE {} AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR \
                   AND A.VBELN = V.VBELN AND M.MATNR = V.MATNR AND {} \
                   AND E.EDATU >= {} AND E.EDATU < {}",
                mandts(&["V", "E", "A", "M", "KD"]),
                konv_join("A", "V", false),
                dlit(d),
                dlit(d.add_months(1)),
            )]
        }
        15 => {
            let d = date_of(&p.q15_date);
            vec![
                format!(
                    "CREATE VIEW SAP_REVENUE AS \
                     SELECT V.LIFNR AS SUPPLIER_NO, \
                       SUM(V.NETWR * (1 - KD.KBETR / 1000)) AS TOTAL_REVENUE \
                     FROM VBAP V, VBEP E, VBAK A, KONV KD \
                     WHERE {} AND E.VBELN = V.VBELN AND E.POSNR = V.POSNR \
                       AND A.VBELN = V.VBELN AND {} \
                       AND E.EDATU >= {} AND E.EDATU < {} \
                     GROUP BY V.LIFNR",
                    mandts(&["V", "E", "A", "KD"]),
                    konv_join("A", "V", false),
                    dlit(d),
                    dlit(d.add_months(3)),
                ),
                format!(
                    "SELECT S.LIFNR, S.NAME1, S.STRAS, S.TELF1, TOTAL_REVENUE \
                     FROM LFA1 S, SAP_REVENUE \
                     WHERE S.MANDT = '{MANDT}' AND S.LIFNR = SUPPLIER_NO \
                       AND TOTAL_REVENUE = (SELECT MAX(TOTAL_REVENUE) FROM SAP_REVENUE) \
                     ORDER BY S.LIFNR"
                ),
                "DROP VIEW SAP_REVENUE".to_string(),
            ]
        }
        16 => vec![format!(
            "SELECT M.MATKL, M.MTART, M.GROES, COUNT(DISTINCT I.LIFNR) AS SUPPLIER_CNT \
             FROM EINA I, MARA M \
             WHERE {} AND M.MATNR = I.MATNR \
               AND M.MATKL <> '{}' AND M.MTART NOT LIKE '{}%' \
               AND M.GROES IN ({}, {}, {}, {}, {}, {}, {}, {}) \
               AND I.LIFNR NOT IN (SELECT X.TDNAME FROM STXL X \
                    WHERE X.MANDT = '{MANDT}' AND X.TDOBJECT = 'LFA1' \
                      AND X.TDLINE LIKE '%Customer%Complaints%') \
             GROUP BY M.MATKL, M.MTART, M.GROES \
             ORDER BY SUPPLIER_CNT DESC, M.MATKL, M.MTART, M.GROES",
            mandts(&["I", "M"]),
            p.q16_brand,
            p.q16_type,
            p.q16_sizes[0],
            p.q16_sizes[1],
            p.q16_sizes[2],
            p.q16_sizes[3],
            p.q16_sizes[4],
            p.q16_sizes[5],
            p.q16_sizes[6],
            p.q16_sizes[7],
        )],
        17 => vec![format!(
            "SELECT SUM(V.NETWR) / 7.0 AS AVG_YEARLY \
             FROM VBAP V, MARA M \
             WHERE {} AND M.MATNR = V.MATNR AND M.MATKL = '{}' AND M.MAGRV = '{}' \
               AND V.KWMENG < (SELECT 0.2 * AVG(V2.KWMENG) FROM VBAP V2 \
                    WHERE V2.MANDT = '{MANDT}' AND V2.MATNR = M.MATNR)",
            mandts(&["V", "M"]),
            p.q17_brand,
            p.q17_container,
        )],
        other => panic!("TPC-D has queries 1..=17, asked for {other}"),
    }
}

/// Run the Native SQL report for query `n` (full push-down).
pub fn run(sys: &R3System, n: usize, p: &QueryParams) -> DbResult<Vec<Row>> {
    let mut last: Option<Vec<Row>> = None;
    for stmt in sql(n, p) {
        if let rdbms::ExecOutcome::Rows(r) = sys.native_sql(&stmt)? {
            last = Some(r.rows)
        }
    }
    last.ok_or_else(|| DbError::execution(format!("native report Q{n} produced no rows")))
}
