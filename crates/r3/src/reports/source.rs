//! Release/interface-aware row sources for the TPC-D report programs.
//!
//! A report needs "logical TPC-D rows" (a line item with its discount, its
//! order's date, its customer's nation, ...). How those rows are obtained
//! differs per configuration — and that difference *is* the paper's result:
//!
//! * **Open SQL, Release 3.0** — one pushed-down join (the new join
//!   construct), shipped to the application server in a single cursor;
//! * **Open SQL, Release 2.2** — a driver SELECT over the primary table and
//!   nested (cursor-cached) SELECT SINGLEs per row for every other table:
//!   the paper's §2.3 nested-loop program, with the interface crossed for
//!   every tuple;
//! * **Native SQL, Release 2.2** — one `EXEC SQL` join over everything
//!   *except* the encapsulated KONV cluster, whose conditions are fetched
//!   through nested Open SQL reads per document;
//! * **Native SQL, Release 3.0** — one `EXEC SQL` join over everything
//!   (only used by detail-level fetches; whole-query push-down lives in
//!   [`super::native30`]).
//!
//! Repeated master-data lookups are memoized in application-server internal
//! tables, the standard ABAP practice the paper notes in §2.3
//! ("materialize the inner relation ... and avoid repeated calls").

#![allow(clippy::type_complexity)] // row sources return wide domain tuples by design

use crate::opensql::{literal, Cond, SelectSpec, TableExpr};
use crate::schema::{key16, parse_key, MANDT};
use crate::system::R3System;
use crate::Release;
use rdbms::clock::Counter;
use rdbms::error::DbResult;
use rdbms::schema::Row;
use rdbms::types::{Date, Decimal, Value};
use rdbms::QueryResult;
use std::collections::HashMap;

use super::SapInterface;

/// A denormalized "logical TPC-D line item" row as a report sees it.
#[derive(Debug, Clone)]
pub struct Detail {
    pub orderkey: i64,
    pub partkey: i64,
    pub suppkey: i64,
    pub line: i64,
    pub qty: Decimal,
    pub extprice: Decimal,
    /// Discount / tax as fractions (KBETR / 1000).
    pub disc: Decimal,
    pub tax: Decimal,
    pub rf: String,
    pub ls: String,
    pub ship: Date,
    pub commitd: Date,
    pub receipt: Date,
    pub mode: String,
    pub instr: String,
    // order fields
    pub custkey: i64,
    pub orderdate: Date,
    pub opriority: String,
    pub shippriority: i64,
    pub o_total: Decimal,
    // customer fields
    pub c_nation: i64,
    pub c_segment: String,
    pub c_name: String,
    pub c_acctbal: Decimal,
    pub c_address: String,
    pub c_phone: String,
    // part fields
    pub p_brand: String,
    pub p_type: String,
    pub p_size: i64,
    pub p_container: String,
    pub p_name: String,
    // supplier fields
    pub s_nation: i64,
}

impl Default for Detail {
    fn default() -> Self {
        Detail {
            orderkey: 0,
            partkey: 0,
            suppkey: 0,
            line: 0,
            qty: Decimal::zero(),
            extprice: Decimal::zero(),
            disc: Decimal::zero(),
            tax: Decimal::zero(),
            rf: String::new(),
            ls: String::new(),
            ship: Date::from_days(0),
            commitd: Date::from_days(0),
            receipt: Date::from_days(0),
            mode: String::new(),
            instr: String::new(),
            custkey: 0,
            orderdate: Date::from_days(0),
            opriority: String::new(),
            shippriority: 0,
            o_total: Decimal::zero(),
            c_nation: -1,
            c_segment: String::new(),
            c_name: String::new(),
            c_acctbal: Decimal::zero(),
            c_address: String::new(),
            c_phone: String::new(),
            p_brand: String::new(),
            p_type: String::new(),
            p_size: 0,
            p_container: String::new(),
            p_name: String::new(),
            s_nation: -1,
        }
    }
}

/// What to fetch and which predicates can be handed to the database.
/// Condition field names are the unqualified SAP column names of the
/// table they belong to.
#[derive(Debug, Clone, Default)]
pub struct DetailSpec {
    pub vbap_conds: Vec<Cond>,
    pub with_dates: bool,
    pub vbep_conds: Vec<Cond>,
    pub with_order: bool,
    pub vbak_conds: Vec<Cond>,
    pub with_customer: bool,
    pub kna1_conds: Vec<Cond>,
    pub with_part: bool,
    pub mara_conds: Vec<Cond>,
    /// LIKE pattern on the part name (MAKT.MAKTX); implies joining MAKT.
    pub part_name_like: Option<String>,
    pub with_supplier: bool,
    pub with_konv: bool,
}

impl DetailSpec {
    fn needs_vbak(&self) -> bool {
        self.with_order || self.with_customer || self.with_konv || !self.vbak_conds.is_empty()
    }

    fn needs_vbep(&self) -> bool {
        self.with_dates || !self.vbep_conds.is_empty()
    }

    fn needs_makt(&self) -> bool {
        self.part_name_like.is_some()
    }
}

/// The source façade.
pub struct Src<'a> {
    pub sys: &'a R3System,
    pub iface: SapInterface,
}

impl<'a> Src<'a> {
    pub fn new(sys: &'a R3System, iface: SapInterface) -> Self {
        Src { sys, iface }
    }

    fn is22(&self) -> bool {
        self.sys.release == Release::R22
    }

    fn meter_app(&self, n: u64) {
        self.sys.meter().add(Counter::AppTuples, n);
    }

    // ------------------------------------------------------------------
    // KONV document reads (the nested SELECT of §2.3 / Table 4 analysis)
    // ------------------------------------------------------------------

    /// Fetch the pricing conditions of one document: KPOSN -> (disc, tax)
    /// fractions. One interface crossing per document; cluster decode under
    /// Release 2.2.
    pub fn konv_document(&self, orderkey: i64) -> DbResult<HashMap<i64, (Decimal, Decimal)>> {
        let r = self.sys.open_select(
            &SelectSpec::from_table("KONV")
                .fields(&["KPOSN", "KSCHL", "KBETR"])
                .cond(Cond::eq("KNUMV", key16(orderkey))),
        )?;
        let mut out: HashMap<i64, (Decimal, Decimal)> = HashMap::new();
        let thousand = Decimal::from_int(1000);
        for row in &r.rows {
            self.meter_app(1);
            let kposn = parse_key(&row[0]);
            let rate = row[2].as_decimal()?.div(thousand)?;
            let entry = out.entry(kposn).or_insert((Decimal::zero(), Decimal::zero()));
            match row[1].as_str()?.trim_end() {
                "DISC" => entry.0 = rate,
                "TAX" => entry.1 = rate,
                _ => {}
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // The line-item detail fetch
    // ------------------------------------------------------------------

    pub fn detail(&self, spec: &DetailSpec) -> DbResult<Vec<Detail>> {
        match (self.iface, self.is22()) {
            (SapInterface::Open, false) => self.detail_open30(spec),
            (SapInterface::Open, true) => self.detail_open22(spec),
            (SapInterface::Native, _) => self.detail_native(spec),
        }
    }

    /// Open SQL 3.0: one pushed-down join.
    fn detail_open30(&self, spec: &DetailSpec) -> DbResult<Vec<Detail>> {
        let mut from = TableExpr::table_as("VBAP", "V");
        let mut fields: Vec<String> = [
            "V.VBELN", "V.POSNR", "V.MATNR", "V.LIFNR", "V.KWMENG", "V.NETWR", "V.RFLAG", "V.LSTAT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if spec.needs_vbep() {
            from = from.join_as("VBEP", "E", &[("V.VBELN", "E.VBELN"), ("V.POSNR", "E.POSNR")]);
            fields.extend(
                ["E.EDATU", "E.WADAT", "E.LDDAT", "E.VSART", "E.LIFSP"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.needs_vbak() {
            from = from.join_as("VBAK", "A", &[("V.VBELN", "A.VBELN")]);
            fields.extend(
                ["A.KUNNR", "A.AUDAT", "A.PRIOK", "A.SPRIO", "A.NETWR"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.with_customer {
            from = from.join_as("KNA1", "C", &[("A.KUNNR", "C.KUNNR")]);
            fields.extend(
                ["C.LAND1", "C.KDGRP", "C.NAME1", "C.SALDO", "C.STRAS", "C.TELF1"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.with_part {
            from = from.join_as("MARA", "M", &[("V.MATNR", "M.MATNR")]);
            fields
                .extend(["M.MATKL", "M.MTART", "M.GROES", "M.MAGRV"].iter().map(|s| s.to_string()));
        }
        if spec.needs_makt() {
            from = from.join_as("MAKT", "MK", &[("V.MATNR", "MK.MATNR")]);
            fields.push("MK.MAKTX".to_string());
        }
        if spec.with_supplier {
            from = from.join_as("LFA1", "S", &[("V.LIFNR", "S.LIFNR")]);
            fields.push("S.LAND1".to_string());
        }
        if spec.with_konv {
            from = from
                .join_as("KONV", "KD", &[("A.KNUMV", "KD.KNUMV"), ("V.POSNR", "KD.KPOSN")])
                .join_as("KONV", "KT", &[("A.KNUMV", "KT.KNUMV"), ("V.POSNR", "KT.KPOSN")]);
            fields.push("KD.KBETR".to_string());
            fields.push("KT.KBETR".to_string());
        }
        let field_refs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
        let mut select = SelectSpec::from_expr(from).fields(&field_refs);
        for c in &spec.vbap_conds {
            select = select.cond(Cond::new(&format!("V.{}", c.field), c.op, c.value.clone()));
        }
        for c in &spec.vbep_conds {
            select = select.cond(Cond::new(&format!("E.{}", c.field), c.op, c.value.clone()));
        }
        for c in &spec.vbak_conds {
            select = select.cond(Cond::new(&format!("A.{}", c.field), c.op, c.value.clone()));
        }
        for c in &spec.kna1_conds {
            select = select.cond(Cond::new(&format!("C.{}", c.field), c.op, c.value.clone()));
        }
        for c in &spec.mara_conds {
            select = select.cond(Cond::new(&format!("M.{}", c.field), c.op, c.value.clone()));
        }
        if let Some(pat) = &spec.part_name_like {
            select =
                select.cond(Cond::new("MK.MAKTX", crate::opensql::CmpOp::Like, Value::str(pat)));
        }
        if spec.needs_makt() {
            select = select.cond(Cond::eq("MK.SPRAS", Value::str("E")));
        }
        if spec.with_konv {
            select = select.cond(Cond::eq("KD.KSCHL", Value::str("DISC")));
            select = select.cond(Cond::eq("KT.KSCHL", Value::str("TAX")));
        }
        let r = self.sys.open_select(&select)?;
        self.parse_flat(&r, spec)
    }

    /// Native SQL (3.0: full join incl. KONV; 2.2: join sans KONV + nested
    /// KONV document reads).
    fn detail_native(&self, spec: &DetailSpec) -> DbResult<Vec<Detail>> {
        let konv_in_sql = spec.with_konv && !self.is22();
        let mut from = vec!["VBAP V".to_string()];
        let mut fields: Vec<String> = [
            "V.VBELN", "V.POSNR", "V.MATNR", "V.LIFNR", "V.KWMENG", "V.NETWR", "V.RFLAG", "V.LSTAT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut joins: Vec<String> = Vec::new();
        if spec.needs_vbep() {
            from.push("VBEP E".to_string());
            joins.push("E.VBELN = V.VBELN AND E.POSNR = V.POSNR".to_string());
            fields.extend(
                ["E.EDATU", "E.WADAT", "E.LDDAT", "E.VSART", "E.LIFSP"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.needs_vbak() {
            from.push("VBAK A".to_string());
            joins.push("A.VBELN = V.VBELN".to_string());
            fields.extend(
                ["A.KUNNR", "A.AUDAT", "A.PRIOK", "A.SPRIO", "A.NETWR"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.with_customer {
            from.push("KNA1 C".to_string());
            joins.push("C.KUNNR = A.KUNNR".to_string());
            fields.extend(
                ["C.LAND1", "C.KDGRP", "C.NAME1", "C.SALDO", "C.STRAS", "C.TELF1"]
                    .iter()
                    .map(|s| s.to_string()),
            );
        }
        if spec.with_part {
            from.push("MARA M".to_string());
            joins.push("M.MATNR = V.MATNR".to_string());
            fields
                .extend(["M.MATKL", "M.MTART", "M.GROES", "M.MAGRV"].iter().map(|s| s.to_string()));
        }
        if spec.needs_makt() {
            from.push("MAKT MK".to_string());
            joins.push("MK.MATNR = V.MATNR AND MK.SPRAS = 'E'".to_string());
            fields.push("MK.MAKTX".to_string());
        }
        if spec.with_supplier {
            from.push("LFA1 S".to_string());
            joins.push("S.LIFNR = V.LIFNR".to_string());
            fields.push("S.LAND1".to_string());
        }
        if konv_in_sql {
            from.push("KONV KD".to_string());
            from.push("KONV KT".to_string());
            joins.push(
                "KD.KNUMV = A.KNUMV AND KD.KPOSN = V.POSNR AND KD.KSCHL = 'DISC'".to_string(),
            );
            joins
                .push("KT.KNUMV = A.KNUMV AND KT.KPOSN = V.POSNR AND KT.KSCHL = 'TAX'".to_string());
            fields.push("KD.KBETR".to_string());
            fields.push("KT.KBETR".to_string());
        }
        let mut sql = format!("SELECT {} FROM {}", fields.join(", "), from.join(", "));
        // Client predicates — Native SQL must write them itself (§4.1).
        let aliases: Vec<&str> = from.iter().map(|f| f.rsplit(' ').next().unwrap()).collect();
        let mandts: Vec<String> =
            aliases.iter().map(|a| format!("{a}.MANDT = '{MANDT}'")).collect();
        sql.push_str(&format!(" WHERE {}", mandts.join(" AND ")));
        for j in &joins {
            sql.push_str(&format!(" AND {j}"));
        }
        for (alias, conds) in [
            ("V", &spec.vbap_conds),
            ("E", &spec.vbep_conds),
            ("A", &spec.vbak_conds),
            ("C", &spec.kna1_conds),
            ("M", &spec.mara_conds),
        ] {
            for c in conds.iter() {
                sql.push_str(&format!(
                    " AND {alias}.{} {} {}",
                    c.field,
                    cmp_sql(c.op),
                    literal(&c.value)
                ));
            }
        }
        if let Some(pat) = &spec.part_name_like {
            sql.push_str(&format!(" AND MK.MAKTX LIKE '{pat}'"));
        }
        let r = self.sys.native_query(&sql)?;
        let mut details = self.parse_flat_common(&r, spec, konv_in_sql)?;
        if spec.with_konv && !konv_in_sql {
            // Release 2.2: nested Open SQL reads of the cluster per document.
            self.attach_konv(&mut details)?;
        }
        Ok(details)
    }

    /// Open SQL 2.2: driver select over VBAP plus nested SELECT SINGLEs per
    /// row, with master data memoized in internal tables.
    fn detail_open22(&self, spec: &DetailSpec) -> DbResult<Vec<Detail>> {
        let mut driver = SelectSpec::from_table("VBAP")
            .fields(&["VBELN", "POSNR", "MATNR", "LIFNR", "KWMENG", "NETWR", "RFLAG", "LSTAT"]);
        for c in &spec.vbap_conds {
            driver = driver.cond(c.clone());
        }
        let rows = self.sys.open_select(&driver)?;
        let mut out: Vec<Detail> = Vec::new();
        // Application-server memo tables.
        let mut vbak_memo: HashMap<i64, Option<Row>> = HashMap::new();
        let mut kna1_memo: HashMap<i64, Option<Row>> = HashMap::new();
        let mut mara_memo: HashMap<i64, Option<Row>> = HashMap::new();
        let mut makt_memo: HashMap<i64, Option<String>> = HashMap::new();
        let mut lfa1_memo: HashMap<i64, Option<i64>> = HashMap::new();
        let mut konv_memo: HashMap<i64, HashMap<i64, (Decimal, Decimal)>> = HashMap::new();

        'row: for row in &rows.rows {
            self.meter_app(1);
            let mut d = Detail {
                orderkey: parse_key(&row[0]),
                line: parse_key(&row[1]),
                partkey: parse_key(&row[2]),
                suppkey: parse_key(&row[3]),
                qty: row[4].as_decimal()?,
                extprice: row[5].as_decimal()?,
                rf: row[6].to_string(),
                ls: row[7].to_string(),
                ..Detail::default()
            };
            if spec.needs_vbep() {
                // Nested SELECT (cursor-cached): one crossing per line item.
                let e = self.sys.open_select(
                    &SelectSpec::from_table("VBEP")
                        .fields(&["EDATU", "WADAT", "LDDAT", "VSART", "LIFSP"])
                        .cond(Cond::eq("VBELN", key16(d.orderkey)))
                        .cond(Cond::eq("POSNR", row[1].clone()))
                        .single(),
                )?;
                let Some(erow) = e.rows.first() else { continue };
                if !conds_pass(&e, erow, &spec.vbep_conds) {
                    continue;
                }
                d.ship = erow[0].as_date()?;
                d.commitd = erow[1].as_date()?;
                d.receipt = erow[2].as_date()?;
                d.mode = erow[3].to_string();
                d.instr = erow[4].to_string();
            }
            if spec.needs_vbak() {
                let entry = match vbak_memo.get(&d.orderkey) {
                    Some(v) => {
                        self.meter_app(1);
                        v.clone()
                    }
                    None => {
                        let a = self.sys.open_select(
                            &SelectSpec::from_table("VBAK")
                                .fields(&["KUNNR", "AUDAT", "PRIOK", "SPRIO", "NETWR"])
                                .cond(Cond::eq("VBELN", key16(d.orderkey)))
                                .single(),
                        )?;
                        let v = match a.rows.first() {
                            Some(arow) if conds_pass(&a, arow, &spec.vbak_conds) => {
                                Some(arow.clone())
                            }
                            _ => None,
                        };
                        vbak_memo.insert(d.orderkey, v.clone());
                        v
                    }
                };
                let Some(arow) = entry else { continue };
                d.custkey = parse_key(&arow[0]);
                d.orderdate = arow[1].as_date()?;
                d.opriority = arow[2].to_string();
                d.shippriority = arow[3].as_int()?;
                d.o_total = arow[4].as_decimal()?;
            }
            if spec.with_customer {
                let entry = match kna1_memo.get(&d.custkey) {
                    Some(v) => {
                        self.meter_app(1);
                        v.clone()
                    }
                    None => {
                        let c = self.sys.open_select(
                            &SelectSpec::from_table("KNA1")
                                .fields(&["LAND1", "KDGRP", "NAME1", "SALDO", "STRAS", "TELF1"])
                                .cond(Cond::eq("KUNNR", key16(d.custkey)))
                                .single(),
                        )?;
                        let v = match c.rows.first() {
                            Some(crow) if conds_pass(&c, crow, &spec.kna1_conds) => {
                                Some(crow.clone())
                            }
                            _ => None,
                        };
                        kna1_memo.insert(d.custkey, v.clone());
                        v
                    }
                };
                let Some(crow) = entry else { continue };
                d.c_nation = parse_key(&crow[0]);
                d.c_segment = crow[1].to_string();
                d.c_name = crow[2].to_string();
                d.c_acctbal = crow[3].as_decimal()?;
                d.c_address = crow[4].to_string();
                d.c_phone = crow[5].to_string();
            }
            if spec.with_part {
                let entry = match mara_memo.get(&d.partkey) {
                    Some(v) => {
                        self.meter_app(1);
                        v.clone()
                    }
                    None => {
                        let m = self.sys.open_select(
                            &SelectSpec::from_table("MARA")
                                .fields(&["MATKL", "MTART", "GROES", "MAGRV"])
                                .cond(Cond::eq("MATNR", key16(d.partkey)))
                                .single(),
                        )?;
                        let v = match m.rows.first() {
                            Some(mrow) if conds_pass(&m, mrow, &spec.mara_conds) => {
                                Some(mrow.clone())
                            }
                            _ => None,
                        };
                        mara_memo.insert(d.partkey, v.clone());
                        v
                    }
                };
                let Some(mrow) = entry else { continue };
                d.p_brand = mrow[0].to_string();
                d.p_type = mrow[1].to_string();
                d.p_size = mrow[2].as_int()?;
                d.p_container = mrow[3].to_string();
            }
            if spec.needs_makt() {
                let entry = match makt_memo.get(&d.partkey) {
                    Some(v) => {
                        self.meter_app(1);
                        v.clone()
                    }
                    None => {
                        let m = self.sys.open_select(
                            &SelectSpec::from_table("MAKT")
                                .fields(&["MAKTX"])
                                .cond(Cond::eq("MATNR", key16(d.partkey)))
                                .cond(Cond::eq("SPRAS", Value::str("E")))
                                .single(),
                        )?;
                        let pattern = spec.part_name_like.as_deref().unwrap_or("%");
                        let v = m.rows.first().and_then(|r| {
                            let name = r[0].to_string();
                            if rdbms::exec::expr::like_match(&name, pattern) {
                                Some(name)
                            } else {
                                None
                            }
                        });
                        makt_memo.insert(d.partkey, v.clone());
                        v
                    }
                };
                let Some(name) = entry else { continue 'row };
                d.p_name = name;
            }
            if spec.with_supplier {
                let entry = match lfa1_memo.get(&d.suppkey) {
                    Some(v) => {
                        self.meter_app(1);
                        *v
                    }
                    None => {
                        let s = self.sys.open_select(
                            &SelectSpec::from_table("LFA1")
                                .fields(&["LAND1"])
                                .cond(Cond::eq("LIFNR", key16(d.suppkey)))
                                .single(),
                        )?;
                        let v = s.rows.first().map(|r| parse_key(&r[0]));
                        lfa1_memo.insert(d.suppkey, v);
                        v
                    }
                };
                let Some(nation) = entry else { continue };
                d.s_nation = nation;
            }
            if spec.with_konv {
                if let std::collections::hash_map::Entry::Vacant(e) = konv_memo.entry(d.orderkey) {
                    let doc = self.konv_document(d.orderkey)?;
                    e.insert(doc);
                }
                self.meter_app(1);
                if let Some((disc, tax)) = konv_memo[&d.orderkey].get(&d.line) {
                    d.disc = *disc;
                    d.tax = *tax;
                }
            }
            out.push(d);
        }
        Ok(out)
    }

    fn parse_flat(&self, r: &QueryResult, spec: &DetailSpec) -> DbResult<Vec<Detail>> {
        self.parse_flat_common(r, spec, spec.with_konv)
    }

    /// Parse the flat (joined) result of the open30/native paths. Column
    /// order matches the construction order of the field lists.
    fn parse_flat_common(
        &self,
        r: &QueryResult,
        spec: &DetailSpec,
        konv_in_result: bool,
    ) -> DbResult<Vec<Detail>> {
        let thousand = Decimal::from_int(1000);
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            let mut i = 0usize;
            let mut next = || {
                let v = row[i].clone();
                i += 1;
                v
            };
            let mut d = Detail {
                orderkey: parse_key(&next()),
                line: parse_key(&next()),
                partkey: parse_key(&next()),
                suppkey: parse_key(&next()),
                qty: next().as_decimal()?,
                extprice: next().as_decimal()?,
                rf: next().to_string(),
                ls: next().to_string(),
                ..Detail::default()
            };
            if spec.needs_vbep() {
                d.ship = next().as_date()?;
                d.commitd = next().as_date()?;
                d.receipt = next().as_date()?;
                d.mode = next().to_string();
                d.instr = next().to_string();
            }
            if spec.needs_vbak() {
                d.custkey = parse_key(&next());
                d.orderdate = next().as_date()?;
                d.opriority = next().to_string();
                d.shippriority = next().as_int()?;
                d.o_total = next().as_decimal()?;
            }
            if spec.with_customer {
                d.c_nation = parse_key(&next());
                d.c_segment = next().to_string();
                d.c_name = next().to_string();
                d.c_acctbal = next().as_decimal()?;
                d.c_address = next().to_string();
                d.c_phone = next().to_string();
            }
            if spec.with_part {
                d.p_brand = next().to_string();
                d.p_type = next().to_string();
                d.p_size = next().as_int()?;
                d.p_container = next().to_string();
            }
            if spec.needs_makt() {
                d.p_name = next().to_string();
            }
            if spec.with_supplier {
                d.s_nation = parse_key(&next());
            }
            if konv_in_result {
                d.disc = next().as_decimal()?.div(thousand)?;
                d.tax = next().as_decimal()?.div(thousand)?;
            }
            out.push(d);
        }
        Ok(out)
    }

    /// Attach discount/tax via nested per-document KONV reads (2.2 Native).
    fn attach_konv(&self, details: &mut [Detail]) -> DbResult<()> {
        let mut memo: HashMap<i64, HashMap<i64, (Decimal, Decimal)>> = HashMap::new();
        for d in details.iter_mut() {
            if let std::collections::hash_map::Entry::Vacant(e) = memo.entry(d.orderkey) {
                let doc = self.konv_document(d.orderkey)?;
                e.insert(doc);
            }
            self.meter_app(1);
            if let Some((disc, tax)) = memo[&d.orderkey].get(&d.line) {
                d.disc = *disc;
                d.tax = *tax;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Order-level fetch (Q4, Q13)
    // ------------------------------------------------------------------

    /// Orders with pushed VBAK predicates:
    /// (orderkey, custkey, orderdate, priority, totalprice).
    pub fn orders(&self, vbak_conds: &[Cond]) -> DbResult<Vec<(i64, i64, Date, String, Decimal)>> {
        let fields = ["VBELN", "KUNNR", "AUDAT", "PRIOK", "NETWR"];
        let r = match self.iface {
            SapInterface::Open => {
                let mut s = SelectSpec::from_table("VBAK").fields(&fields);
                for c in vbak_conds {
                    s = s.cond(c.clone());
                }
                self.sys.open_select(&s)?
            }
            SapInterface::Native => {
                let mut sql =
                    format!("SELECT {} FROM VBAK WHERE MANDT = '{MANDT}'", fields.join(", "));
                for c in vbak_conds {
                    sql.push_str(&format!(
                        " AND {} {} {}",
                        c.field,
                        cmp_sql(c.op),
                        literal(&c.value)
                    ));
                }
                self.sys.native_query(&sql)?
            }
        };
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            out.push((
                parse_key(&row[0]),
                parse_key(&row[1]),
                row[2].as_date()?,
                row[3].to_string(),
                row[4].as_decimal()?,
            ));
        }
        Ok(out)
    }

    /// Schedule lines of one order: (posnr, commitdate, receiptdate).
    pub fn order_schedule(&self, orderkey: i64) -> DbResult<Vec<(i64, Date, Date)>> {
        let r = self.sys.open_select(
            &SelectSpec::from_table("VBEP")
                .fields(&["POSNR", "WADAT", "LDDAT"])
                .cond(Cond::eq("VBELN", key16(orderkey))),
        )?;
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            out.push((parse_key(&row[0]), row[1].as_date()?, row[2].as_date()?));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Purchasing (PARTSUPP) fetch (Q2, Q11, Q16)
    // ------------------------------------------------------------------

    /// Purchasing info records: (partkey, suppkey, cost, availqty,
    /// supplier_nation). `supplier_nation` is -1 unless `with_supplier`.
    pub fn partsupps(
        &self,
        with_supplier: bool,
        lfa1_conds: &[Cond],
    ) -> DbResult<Vec<(i64, i64, Decimal, i64, i64)>> {
        match (self.iface, self.is22()) {
            (SapInterface::Open, false) => {
                let mut from = TableExpr::table_as("EINA", "I").join_as(
                    "EINE",
                    "P",
                    &[("I.INFNR", "P.INFNR")],
                );
                let mut fields = vec!["I.MATNR", "I.LIFNR", "P.NETPR", "P.BSTMA"];
                if with_supplier {
                    from = from.join_as("LFA1", "S", &[("I.LIFNR", "S.LIFNR")]);
                    fields.push("S.LAND1");
                }
                let mut s = SelectSpec::from_expr(from).fields(&fields);
                for c in lfa1_conds {
                    s = s.cond(Cond::new(&format!("S.{}", c.field), c.op, c.value.clone()));
                }
                let r = self.sys.open_select(&s)?;
                self.parse_partsupp(&r, with_supplier)
            }
            (SapInterface::Native, _) => {
                let mut fields = vec!["I.MATNR", "I.LIFNR", "P.NETPR", "P.BSTMA"];
                let mut from = vec!["EINA I", "EINE P"];
                if with_supplier {
                    fields.push("S.LAND1");
                    from.push("LFA1 S");
                }
                let mut sql = format!(
                    "SELECT {} FROM {} WHERE I.MANDT = '{MANDT}' AND P.MANDT = '{MANDT}' \
                     AND P.INFNR = I.INFNR",
                    fields.join(", "),
                    from.join(", ")
                );
                if with_supplier {
                    sql.push_str(&format!(" AND S.MANDT = '{MANDT}' AND S.LIFNR = I.LIFNR"));
                    for c in lfa1_conds {
                        sql.push_str(&format!(
                            " AND S.{} {} {}",
                            c.field,
                            cmp_sql(c.op),
                            literal(&c.value)
                        ));
                    }
                }
                let r = self.sys.native_query(&sql)?;
                self.parse_partsupp(&r, with_supplier)
            }
            (SapInterface::Open, true) => {
                // Nested loops: EINA driver, EINE per row, LFA1 memoized.
                let driver = self.sys.open_select(
                    &SelectSpec::from_table("EINA").fields(&["INFNR", "MATNR", "LIFNR"]),
                )?;
                let mut lfa1_memo: HashMap<i64, Option<i64>> = HashMap::new();
                let mut out = Vec::new();
                for row in &driver.rows {
                    self.meter_app(1);
                    let infnr = row[0].clone();
                    let partkey = parse_key(&row[1]);
                    let suppkey = parse_key(&row[2]);
                    let e = self.sys.open_select(
                        &SelectSpec::from_table("EINE")
                            .fields(&["NETPR", "BSTMA"])
                            .cond(Cond::eq("INFNR", infnr))
                            .single(),
                    )?;
                    let Some(erow) = e.rows.first() else { continue };
                    let mut nation = -1i64;
                    if with_supplier {
                        let entry = match lfa1_memo.get(&suppkey) {
                            Some(v) => {
                                self.meter_app(1);
                                *v
                            }
                            None => {
                                let s = self.sys.open_select(
                                    &SelectSpec::from_table("LFA1")
                                        .fields(&["LAND1"])
                                        .cond(Cond::eq("LIFNR", key16(suppkey)))
                                        .single(),
                                )?;
                                let v = match s.rows.first() {
                                    Some(srow) if conds_pass(&s, srow, lfa1_conds) => {
                                        Some(parse_key(&srow[0]))
                                    }
                                    _ => None,
                                };
                                lfa1_memo.insert(suppkey, v);
                                v
                            }
                        };
                        match entry {
                            Some(n) => nation = n,
                            None => continue,
                        }
                    }
                    out.push((partkey, suppkey, erow[0].as_decimal()?, erow[1].as_int()?, nation));
                }
                Ok(out)
            }
        }
    }

    fn parse_partsupp(
        &self,
        r: &QueryResult,
        with_supplier: bool,
    ) -> DbResult<Vec<(i64, i64, Decimal, i64, i64)>> {
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            out.push((
                parse_key(&row[0]),
                parse_key(&row[1]),
                row[2].as_decimal()?,
                row[3].as_int()?,
                if with_supplier { parse_key(&row[4]) } else { -1 },
            ));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Master data (small tables; reports buffer these in internal tables)
    // ------------------------------------------------------------------

    /// (nationkey, name, regionkey).
    pub fn nations(&self) -> DbResult<Vec<(i64, String, i64)>> {
        let t005 =
            self.sys.open_select(&SelectSpec::from_table("T005").fields(&["LAND1", "REGIO"]))?;
        let t005t = self.sys.open_select(
            &SelectSpec::from_table("T005T")
                .fields(&["LAND1", "LANDX"])
                .cond(Cond::eq("SPRAS", Value::str("E"))),
        )?;
        let names: HashMap<i64, String> =
            t005t.rows.iter().map(|r| (parse_key(&r[0]), r[1].to_string())).collect();
        let mut out = Vec::new();
        for row in &t005.rows {
            self.meter_app(1);
            let key = parse_key(&row[0]);
            out.push((key, names.get(&key).cloned().unwrap_or_default(), parse_key(&row[1])));
        }
        Ok(out)
    }

    /// (regionkey, name).
    pub fn regions(&self) -> DbResult<Vec<(i64, String)>> {
        let r = self.sys.open_select(
            &SelectSpec::from_table("T005U")
                .fields(&["REGIO", "BEZEI"])
                .cond(Cond::eq("SPRAS", Value::str("E"))),
        )?;
        Ok(r.rows.iter().map(|row| (parse_key(&row[0]), row[1].to_string())).collect())
    }

    /// Suppliers: (suppkey, name, address, nationkey, phone, acctbal).
    pub fn suppliers(
        &self,
        lfa1_conds: &[Cond],
    ) -> DbResult<Vec<(i64, String, String, i64, String, Decimal)>> {
        let mut s = SelectSpec::from_table("LFA1")
            .fields(&["LIFNR", "NAME1", "STRAS", "LAND1", "TELF1", "SALDO"]);
        for c in lfa1_conds {
            s = s.cond(c.clone());
        }
        let r = self.sys.open_select(&s)?;
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            out.push((
                parse_key(&row[0]),
                row[1].to_string(),
                row[2].to_string(),
                parse_key(&row[3]),
                row[4].to_string(),
                row[5].as_decimal()?,
            ));
        }
        Ok(out)
    }

    /// Parts with optional MARA predicates and name (from MAKT):
    /// (partkey, brand, type, size, container, name, mfgr).
    #[allow(clippy::type_complexity)]
    pub fn parts(
        &self,
        mara_conds: &[Cond],
        with_name: bool,
    ) -> DbResult<Vec<(i64, String, String, i64, String, String, String)>> {
        let mut s = SelectSpec::from_table("MARA")
            .fields(&["MATNR", "MATKL", "MTART", "GROES", "MAGRV", "MFRNR"]);
        for c in mara_conds {
            s = s.cond(c.clone());
        }
        let r = self.sys.open_select(&s)?;
        let mut names: HashMap<i64, String> = HashMap::new();
        if with_name {
            let m = self.sys.open_select(
                &SelectSpec::from_table("MAKT")
                    .fields(&["MATNR", "MAKTX"])
                    .cond(Cond::eq("SPRAS", Value::str("E"))),
            )?;
            names = m.rows.iter().map(|row| (parse_key(&row[0]), row[1].to_string())).collect();
        }
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            let key = parse_key(&row[0]);
            out.push((
                key,
                row[1].to_string(),
                row[2].to_string(),
                row[3].as_int()?,
                row[4].to_string(),
                names.get(&key).cloned().unwrap_or_default(),
                row[5].to_string(),
            ));
        }
        Ok(out)
    }

    /// Line items of a single part (Q17's nested access path).
    pub fn lineitems_of_part(&self, partkey: i64) -> DbResult<Vec<(Decimal, Decimal)>> {
        let r = self.sys.open_select(
            &SelectSpec::from_table("VBAP")
                .fields(&["KWMENG", "NETWR"])
                .cond(Cond::eq("MATNR", key16(partkey))),
        )?;
        let mut out = Vec::with_capacity(r.rows.len());
        for row in &r.rows {
            self.meter_app(1);
            out.push((row[0].as_decimal()?, row[1].as_decimal()?));
        }
        Ok(out)
    }
}

/// Evaluate conjunctive conditions against a fetched row (application-side
/// residual filtering in nested-loop programs).
pub fn conds_pass(result: &QueryResult, row: &Row, conds: &[Cond]) -> bool {
    for c in conds {
        let Ok(idx) = result.schema.resolve(None, &c.field) else {
            return false;
        };
        if !c.op.eval_pub(&row[idx], &c.value) {
            return false;
        }
    }
    true
}

fn cmp_sql(op: crate::opensql::CmpOp) -> &'static str {
    use crate::opensql::CmpOp::*;
    match op {
        Eq => "=",
        Ne => "<>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Like => "LIKE",
    }
}
