//! The TPC-D reports, as run against SAP R/3.
//!
//! Every query of the benchmark exists in four variants, exactly as in the
//! paper's Tables 4 and 5:
//!
//! | variant    | how it runs |
//! |------------|-------------|
//! | Native 3.0 | the whole query (joins, grouping, complex aggregation, nested subqueries) as one `EXEC SQL` statement over the SAP schema — possible because KONV is transparent ([`native30`]) |
//! | Native 2.2 | the same, except KONV is a cluster table Native SQL cannot touch: queries involving discount/tax split into a pushed-down part plus nested Open SQL KONV reads combined in the application server ([`programs`] with the 2.2 source) |
//! | Open 3.0   | joins pushed down through the new Open SQL join construct; complex aggregations, which Open SQL cannot express, computed in the application server with EXTRACT/SORT; nested subqueries manually unnested ([`programs`]) |
//! | Open 2.2   | single-table Open SQL selects driving application-server nested-loop joins, all grouping/aggregation app-side ([`programs`]) |
//!
//! The release comes from the [`crate::R3System`]; the caller chooses the
//! interface.

pub mod native30;
pub mod programs;
pub mod source;

use crate::system::R3System;
use crate::Release;
use rdbms::clock::MeterSnapshot;
use rdbms::error::DbResult;
use rdbms::schema::Row;
use serde::{Deserialize, Serialize};
use tpcd::QueryParams;

/// Which database interface the report uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SapInterface {
    Native,
    Open,
}

impl std::fmt::Display for SapInterface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SapInterface::Native => write!(f, "Native SQL"),
            SapInterface::Open => write!(f, "Open SQL"),
        }
    }
}

/// Outcome of one report run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportResult {
    pub query: usize,
    pub rows: usize,
    pub seconds: f64,
    pub work: MeterSnapshot,
}

/// Does query `n` involve the KONV pricing conditions (discount/tax)?
/// These are the queries that cannot run as pure Native SQL in Release 2.2.
pub fn touches_konv(n: usize) -> bool {
    matches!(n, 1 | 3 | 5 | 6 | 7 | 8 | 9 | 10 | 14 | 15)
}

/// Run TPC-D query `n` through the given interface against the system's
/// release, returning the answer rows.
pub fn run_query_rows(
    sys: &R3System,
    iface: SapInterface,
    n: usize,
    p: &QueryParams,
) -> DbResult<Vec<Row>> {
    match (iface, sys.release) {
        (SapInterface::Native, Release::R30) => native30::run(sys, n, p),
        (SapInterface::Native, Release::R22) => {
            if touches_konv(n) {
                programs::run(sys, iface, n, p)
            } else {
                // No encapsulated table involved: the 2.2 Native report is
                // the same full push-down as the 3.0 one.
                native30::run(sys, n, p)
            }
        }
        (SapInterface::Open, _) => programs::run(sys, iface, n, p),
    }
}

/// Run and meter one report.
pub fn run_report(
    sys: &R3System,
    iface: SapInterface,
    n: usize,
    p: &QueryParams,
) -> DbResult<ReportResult> {
    let before = sys.snapshot();
    let rows = run_query_rows(sys, iface, n, p)?;
    let work = sys.snapshot().since(&before);
    Ok(ReportResult { query: n, rows: rows.len(), seconds: sys.calibration().seconds(&work), work })
}

/// Run the full SAP-side power test: Q1..Q17 through `iface`, then UF1 and
/// UF2 through batch input (the paper's Tables 4/5 columns).
pub fn run_sap_power_test(
    sys: &R3System,
    iface: SapInterface,
    gen: &tpcd::DbGen,
    p: &QueryParams,
) -> DbResult<Vec<(String, f64, MeterSnapshot)>> {
    let cal = sys.calibration();
    let mut out = Vec::new();
    for n in 1..=17 {
        let r = run_report(sys, iface, n, p)?;
        out.push((format!("Q{n}"), r.seconds, r.work));
    }
    let before = sys.snapshot();
    crate::batch_input::batch_uf1(sys, gen, 1)?;
    let work = sys.snapshot().since(&before);
    out.push(("UF1".to_string(), cal.seconds(&work), work));
    let before = sys.snapshot();
    crate::batch_input::batch_uf2(sys, gen, 1)?;
    let work = sys.snapshot().since(&before);
    out.push(("UF2".to_string(), cal.seconds(&work), work));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn konv_query_classification() {
        // Queries touching discount/tax pricing conditions (cannot run as
        // pure Native SQL on 2.2).
        let konv: Vec<usize> = (1..=17).filter(|&n| touches_konv(n)).collect();
        assert_eq!(konv, vec![1, 3, 5, 6, 7, 8, 9, 10, 14, 15]);
    }

    #[test]
    fn interface_display() {
        assert_eq!(SapInterface::Native.to_string(), "Native SQL");
        assert_eq!(SapInterface::Open.to_string(), "Open SQL");
    }
}
