//! The ABAP report programs for TPC-D queries — used for Open SQL (both
//! releases) and for Native SQL under Release 2.2 when the query needs the
//! encapsulated KONV cluster.
//!
//! Each program fetches its rows through [`super::source::Src`] — which
//! pushes as much as the configuration allows — and then finishes the work
//! in the application server: nested-loop combination, EXTRACT/SORT/LOOP
//! grouping with its spill cost, complex aggregate arithmetic, manual
//! unnesting of the TPC-D subqueries (the paper's §3.4.4: "in Open SQL, we
//! explicitly unnested the sub-queries").

use super::source::{DetailSpec, Src};
use super::SapInterface;
use crate::opensql::{CmpOp, Cond, SelectSpec};
use crate::report::{app_aggregate, app_aggregate_scalar, app_sort, AppAgg};
use crate::schema::key16;
use crate::system::R3System;
use rdbms::clock::Counter;
use rdbms::error::{DbError, DbResult};
use rdbms::exec::expr::BExpr;
use rdbms::schema::Row;
use rdbms::sql::ast::{AggFunc, BinOp};
use rdbms::types::{Date, Decimal, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use tpcd::QueryParams;

// ---------------------------------------------------------------------------
// Small expression builders for application-side aggregation
// ---------------------------------------------------------------------------

fn col(i: usize) -> BExpr {
    BExpr::Column(i)
}

fn num(i: i64) -> BExpr {
    BExpr::Literal(Value::Int(i))
}

fn bin(l: BExpr, op: BinOp, r: BExpr) -> BExpr {
    BExpr::Binary { left: l.boxed(), op, right: r.boxed() }
}

/// `ext * (1 - disc)` over row columns.
fn revenue(ext: usize, disc: usize) -> BExpr {
    bin(col(ext), BinOp::Mul, bin(num(1), BinOp::Sub, col(disc)))
}

/// `ext * (1 - disc) * (1 + tax)`.
fn charge(ext: usize, disc: usize, tax: usize) -> BExpr {
    bin(revenue(ext, disc), BinOp::Mul, bin(num(1), BinOp::Add, col(tax)))
}

fn date_of(s: &str) -> Date {
    Date::parse(s).expect("valid parameter date")
}

fn dval(d: Date) -> Value {
    Value::Date(d)
}

// ---------------------------------------------------------------------------

/// Run the report program for query `n`.
pub fn run(sys: &R3System, iface: SapInterface, n: usize, p: &QueryParams) -> DbResult<Vec<Row>> {
    let src = Src::new(sys, iface);
    match n {
        1 => q1(&src, p),
        2 => q2(&src, p),
        3 => q3(&src, p),
        4 => q4(&src, p),
        5 => q5(&src, p),
        6 => q6(&src, p),
        7 => q7(&src, p),
        8 => q8(&src, p),
        9 => q9(&src, p),
        10 => q10(&src, p),
        11 => q11(&src, p),
        12 => q12(&src, p),
        13 => q13(&src, p),
        14 => q14(&src, p),
        15 => q15(&src, p),
        16 => q16(&src, p),
        17 => q17(&src, p),
        other => Err(DbError::analysis(format!("no report for Q{other}"))),
    }
}

fn q1(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let cutoff = date_of("1998-12-01").add_days(-(p.q1_delta as i32));
    let det = src.detail(&DetailSpec {
        with_dates: true,
        vbep_conds: vec![Cond::new("EDATU", CmpOp::Le, dval(cutoff))],
        with_konv: true,
        ..Default::default()
    })?;
    // [rf, ls, qty, ext, disc, tax]
    let rows: Vec<Row> = det
        .iter()
        .map(|d| {
            vec![
                Value::str(&d.rf),
                Value::str(&d.ls),
                Value::Decimal(d.qty),
                Value::Decimal(d.extprice),
                Value::Decimal(d.disc),
                Value::Decimal(d.tax),
            ]
        })
        .collect();
    app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0, 1],
            aggs: vec![
                (AggFunc::Sum, col(2)),
                (AggFunc::Sum, col(3)),
                (AggFunc::Sum, revenue(3, 4)),
                (AggFunc::Sum, charge(3, 4, 5)),
                (AggFunc::Avg, col(2)),
                (AggFunc::Avg, col(3)),
                (AggFunc::Avg, col(4)),
                (AggFunc::Count, col(2)),
            ],
            having: None,
        },
    )
}

fn q2(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    // Manual unnesting of the MIN-cost subquery (§3.4.4).
    let regions = src.regions()?;
    let region_key = regions
        .iter()
        .find(|(_, name)| name == &p.q2_region)
        .map(|(k, _)| *k)
        .ok_or_else(|| DbError::execution(format!("no region {}", p.q2_region)))?;
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let in_region: HashSet<i64> =
        nations.iter().filter(|(_, _, r)| *r == region_key).map(|(k, _, _)| *k).collect();
    // Suppliers of the region, with their output fields.
    let suppliers = src.suppliers(&[])?;
    let supp: HashMap<i64, _> = suppliers
        .iter()
        .filter(|(_, _, _, nation, _, _)| in_region.contains(nation))
        .map(|s| (s.0, s))
        .collect();
    // All purchasing records; min cost per part among region suppliers.
    let ps = src.partsupps(false, &[])?;
    let mut min_cost: HashMap<i64, Decimal> = HashMap::new();
    for (pk, sk, cost, _, _) in &ps {
        src.sys.meter().bump(Counter::AppTuples);
        if supp.contains_key(sk) {
            let e = min_cost.entry(*pk).or_insert(*cost);
            if *cost < *e {
                *e = *cost;
            }
        }
    }
    // Candidate parts (size and type predicates pushed).
    let parts = src.parts(
        &[
            Cond::eq("GROES", Value::Int(p.q2_size)),
            Cond::new("MTART", CmpOp::Like, Value::Str(format!("%{}", p.q2_type))),
        ],
        false,
    )?;
    let mut out: Vec<Row> = Vec::new();
    for part in &parts {
        let Some(min) = min_cost.get(&part.0) else { continue };
        for (pk, sk, cost, _, _) in &ps {
            if *pk != part.0 || cost != min {
                continue;
            }
            src.sys.meter().bump(Counter::AppTuples);
            let Some((_, name, addr, nation, phone, acctbal)) = supp.get(sk) else {
                continue;
            };
            out.push(vec![
                Value::Decimal(*acctbal),
                Value::str(name),
                Value::str(*nation_name.get(nation).unwrap_or(&"")),
                Value::Int(part.0),
                Value::str(&part.6), // mfgr
                Value::str(addr),
                Value::str(phone),
            ]);
        }
    }
    app_sort(src.sys.meter(), &mut out, &[(0, true), (2, false), (1, false), (3, false)]);
    out.truncate(100);
    Ok(out)
}

fn q3(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q3_date);
    let det = src.detail(&DetailSpec {
        with_customer: true,
        kna1_conds: vec![Cond::eq("KDGRP", Value::str(&p.q3_segment))],
        with_order: true,
        vbak_conds: vec![Cond::new("AUDAT", CmpOp::Lt, dval(d))],
        with_dates: true,
        vbep_conds: vec![Cond::new("EDATU", CmpOp::Gt, dval(d))],
        with_konv: true,
        ..Default::default()
    })?;
    let rows: Vec<Row> = det
        .iter()
        .map(|x| {
            vec![
                Value::Int(x.orderkey),
                Value::Date(x.orderdate),
                Value::Int(x.shippriority),
                Value::Decimal(x.extprice),
                Value::Decimal(x.disc),
            ]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0, 1, 2],
            aggs: vec![(AggFunc::Sum, revenue(3, 4))],
            having: None,
        },
    )?;
    // [okey, odate, sprio, rev] -> [okey, rev, odate, sprio]
    let mut out: Vec<Row> = grouped
        .into_iter()
        .map(|r| vec![r[0].clone(), r[3].clone(), r[1].clone(), r[2].clone()])
        .collect();
    app_sort(src.sys.meter(), &mut out, &[(1, true), (2, false)]);
    out.truncate(10);
    Ok(out)
}

fn q4(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q4_date);
    let orders = src.orders(&[
        Cond::new("AUDAT", CmpOp::Ge, dval(d)),
        Cond::new("AUDAT", CmpOp::Lt, dval(d.add_months(3))),
    ])?;
    let mut counts: BTreeMap<String, i64> = BTreeMap::new();
    for (orderkey, _, _, priority, _) in &orders {
        // Nested SELECT per order: does any line have commit < receipt?
        let schedule = src.order_schedule(*orderkey)?;
        src.sys.meter().bump(Counter::AppTuples);
        if schedule.iter().any(|(_, commit, receipt)| commit < receipt) {
            *counts.entry(priority.trim_end().to_string()).or_insert(0) += 1;
        }
    }
    Ok(counts.into_iter().map(|(prio, n)| vec![Value::Str(prio), Value::Int(n)]).collect())
}

fn q5(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q5_date);
    let det = src.detail(&DetailSpec {
        with_customer: true,
        with_supplier: true,
        with_order: true,
        vbak_conds: vec![
            Cond::new("AUDAT", CmpOp::Ge, dval(d)),
            Cond::new("AUDAT", CmpOp::Lt, dval(d.add_years(1))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let regions = src.regions()?;
    let rkey = regions.iter().find(|(_, n)| n == &p.q5_region).map(|(k, _)| *k).unwrap_or(-1);
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let nation_region: HashMap<i64, i64> = nations.iter().map(|(k, _, r)| (*k, *r)).collect();
    let rows: Vec<Row> = det
        .iter()
        .filter(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            x.c_nation == x.s_nation && nation_region.get(&x.s_nation) == Some(&rkey)
        })
        .map(|x| {
            vec![
                Value::str(*nation_name.get(&x.s_nation).unwrap_or(&"")),
                Value::Decimal(x.extprice),
                Value::Decimal(x.disc),
            ]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg { group_cols: vec![0], aggs: vec![(AggFunc::Sum, revenue(1, 2))], having: None },
    )?;
    let mut out = grouped;
    app_sort(src.sys.meter(), &mut out, &[(1, true)]);
    Ok(out)
}

fn q6(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q6_date);
    let det = src.detail(&DetailSpec {
        vbap_conds: vec![Cond::new("KWMENG", CmpOp::Lt, Value::Int(p.q6_quantity))],
        with_dates: true,
        vbep_conds: vec![
            Cond::new("EDATU", CmpOp::Ge, dval(d)),
            Cond::new("EDATU", CmpOp::Lt, dval(d.add_years(1))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let center = Decimal::parse(&p.q6_discount).expect("valid discount");
    let hundredth = Decimal::parse("0.01").expect("valid");
    let lo = center.sub(hundredth);
    let hi = center.add(hundredth);
    let rows: Vec<Row> = det
        .iter()
        .filter(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            x.disc >= lo && x.disc <= hi
        })
        .map(|x| vec![Value::Decimal(x.extprice), Value::Decimal(x.disc)])
        .collect();
    let total = app_aggregate_scalar(
        src.sys.meter(),
        &rows,
        &[(AggFunc::Sum, bin(col(0), BinOp::Mul, col(1)))],
    )?;
    Ok(vec![total])
}

fn q7(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let det = src.detail(&DetailSpec {
        with_customer: true,
        with_supplier: true,
        with_order: true,
        with_dates: true,
        vbep_conds: vec![
            Cond::new("EDATU", CmpOp::Ge, dval(date_of("1995-01-01"))),
            Cond::new("EDATU", CmpOp::Le, dval(date_of("1996-12-31"))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let n1 = p.q7_nation1.as_str();
    let n2 = p.q7_nation2.as_str();
    let rows: Vec<Row> = det
        .iter()
        .filter_map(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            let sn = *nation_name.get(&x.s_nation)?;
            let cn = *nation_name.get(&x.c_nation)?;
            if (sn == n1 && cn == n2) || (sn == n2 && cn == n1) {
                Some(vec![
                    Value::str(sn),
                    Value::str(cn),
                    Value::Int(x.ship.year() as i64),
                    Value::Decimal(x.extprice),
                    Value::Decimal(x.disc),
                ])
            } else {
                None
            }
        })
        .collect();
    app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0, 1, 2],
            aggs: vec![(AggFunc::Sum, revenue(3, 4))],
            having: None,
        },
    )
}

fn q8(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let det = src.detail(&DetailSpec {
        with_part: true,
        mara_conds: vec![Cond::eq("MTART", Value::str(&p.q8_type))],
        with_customer: true,
        with_supplier: true,
        with_order: true,
        vbak_conds: vec![
            Cond::new("AUDAT", CmpOp::Ge, dval(date_of("1995-01-01"))),
            Cond::new("AUDAT", CmpOp::Le, dval(date_of("1996-12-31"))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let regions = src.regions()?;
    let rkey = regions.iter().find(|(_, n)| n == &p.q8_region).map(|(k, _)| *k).unwrap_or(-1);
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let nation_region: HashMap<i64, i64> = nations.iter().map(|(k, _, r)| (*k, *r)).collect();
    let one = Decimal::from_int(1);
    // [year, volume, brazil_volume]
    let rows: Vec<Row> = det
        .iter()
        .filter(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            nation_region.get(&x.c_nation) == Some(&rkey)
        })
        .map(|x| {
            let vol = x.extprice.mul(one.sub(x.disc));
            let brazil = if nation_name.get(&x.s_nation) == Some(&p.q8_nation.as_str()) {
                vol
            } else {
                Decimal::zero()
            };
            vec![Value::Int(x.orderdate.year() as i64), Value::Decimal(vol), Value::Decimal(brazil)]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0],
            aggs: vec![(AggFunc::Sum, col(2)), (AggFunc::Sum, col(1))],
            having: None,
        },
    )?;
    grouped
        .into_iter()
        .map(|r| {
            let share = r[1].as_decimal()?.div(r[2].as_decimal()?)?;
            Ok(vec![r[0].clone(), Value::Decimal(share)])
        })
        .collect()
}

fn q9(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let det = src.detail(&DetailSpec {
        part_name_like: Some(format!("%{}%", p.q9_color)),
        with_supplier: true,
        with_order: true,
        with_konv: true,
        ..Default::default()
    })?;
    let ps = src.partsupps(false, &[])?;
    let cost: HashMap<(i64, i64), Decimal> =
        ps.iter().map(|(pk, sk, c, _, _)| ((*pk, *sk), *c)).collect();
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let one = Decimal::from_int(1);
    let rows: Vec<Row> = det
        .iter()
        .map(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            let supply = cost.get(&(x.partkey, x.suppkey)).copied().unwrap_or(Decimal::zero());
            let amount = x.extprice.mul(one.sub(x.disc)).sub(supply.mul(x.qty));
            vec![
                Value::str(*nation_name.get(&x.s_nation).unwrap_or(&"")),
                Value::Int(x.orderdate.year() as i64),
                Value::Decimal(amount),
            ]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg { group_cols: vec![0, 1], aggs: vec![(AggFunc::Sum, col(2))], having: None },
    )?;
    let mut out = grouped;
    app_sort(src.sys.meter(), &mut out, &[(0, false), (1, true)]);
    Ok(out)
}

fn q10(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q10_date);
    let det = src.detail(&DetailSpec {
        vbap_conds: vec![Cond::eq("RFLAG", Value::str("R"))],
        with_customer: true,
        with_order: true,
        vbak_conds: vec![
            Cond::new("AUDAT", CmpOp::Ge, dval(d)),
            Cond::new("AUDAT", CmpOp::Lt, dval(d.add_months(3))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let nations = src.nations()?;
    let nation_name: HashMap<i64, &str> =
        nations.iter().map(|(k, n, _)| (*k, n.as_str())).collect();
    let rows: Vec<Row> = det
        .iter()
        .map(|x| {
            vec![
                Value::Int(x.custkey),
                Value::str(&x.c_name),
                Value::Decimal(x.c_acctbal),
                Value::str(&x.c_phone),
                Value::str(*nation_name.get(&x.c_nation).unwrap_or(&"")),
                Value::str(&x.c_address),
                Value::Decimal(x.extprice),
                Value::Decimal(x.disc),
            ]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0, 1, 2, 3, 4, 5],
            aggs: vec![(AggFunc::Sum, revenue(6, 7))],
            having: None,
        },
    )?;
    // -> [custkey, name, revenue, acctbal, nation, address, phone]
    let mut out: Vec<Row> = grouped
        .into_iter()
        .map(|r| {
            vec![
                r[0].clone(),
                r[1].clone(),
                r[6].clone(),
                r[2].clone(),
                r[4].clone(),
                r[5].clone(),
                r[3].clone(),
            ]
        })
        .collect();
    app_sort(src.sys.meter(), &mut out, &[(2, true)]);
    out.truncate(20);
    Ok(out)
}

fn q11(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let nations = src.nations()?;
    let nation_key = nations
        .iter()
        .find(|(_, n, _)| n == &p.q11_nation)
        .map(|(k, _, _)| *k)
        .ok_or_else(|| DbError::execution(format!("no nation {}", p.q11_nation)))?;
    let ps = src.partsupps(true, &[Cond::eq("LAND1", key16(nation_key))])?;
    let rows: Vec<Row> = ps
        .iter()
        .map(|(pk, _, cost, qty, _)| {
            vec![Value::Int(*pk), Value::Decimal(cost.mul(Decimal::from_int(*qty)))]
        })
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg { group_cols: vec![0], aggs: vec![(AggFunc::Sum, col(1))], having: None },
    )?;
    // Manual unnesting of the HAVING subquery: one pass for the total.
    let mut total = Decimal::zero();
    for r in &grouped {
        src.sys.meter().bump(Counter::AppTuples);
        total = total.add(r[1].as_decimal()?);
    }
    let fraction = Decimal::parse(&p.q11_fraction).expect("valid fraction");
    let threshold = total.mul(fraction);
    let mut out: Vec<Row> = grouped
        .into_iter()
        .filter(|r| r[1].as_decimal().map(|v| v > threshold).unwrap_or(false))
        .collect();
    app_sort(src.sys.meter(), &mut out, &[(1, true)]);
    Ok(out)
}

fn q12(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q12_date);
    let det = src.detail(&DetailSpec {
        with_order: true,
        with_dates: true,
        vbep_conds: vec![
            Cond::new("LDDAT", CmpOp::Ge, dval(d)),
            Cond::new("LDDAT", CmpOp::Lt, dval(d.add_years(1))),
        ],
        ..Default::default()
    })?;
    let m1 = p.q12_mode1.as_str();
    let m2 = p.q12_mode2.as_str();
    let rows: Vec<Row> = det
        .iter()
        .filter(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            let mode = x.mode.trim_end();
            (mode == m1 || mode == m2) && x.commitd < x.receipt && x.ship < x.commitd
        })
        .map(|x| {
            let prio = x.opriority.trim_end();
            let high = (prio == "1-URGENT" || prio == "2-HIGH") as i64;
            vec![Value::str(x.mode.trim_end()), Value::Int(high), Value::Int(1 - high)]
        })
        .collect();
    app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0],
            aggs: vec![(AggFunc::Sum, col(1)), (AggFunc::Sum, col(2))],
            having: None,
        },
    )
}

fn q13(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let orders = src.orders(&[
        Cond::eq("KUNNR", key16(p.q13_custkey)),
        Cond::new("AUDAT", CmpOp::Ge, dval(date_of(&p.q13_date))),
    ])?;
    let rows: Vec<Row> = orders
        .iter()
        .map(|(_, _, _, prio, total)| vec![Value::str(prio.trim_end()), Value::Decimal(*total)])
        .collect();
    app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg {
            group_cols: vec![0],
            aggs: vec![(AggFunc::Count, col(1)), (AggFunc::Sum, col(1))],
            having: None,
        },
    )
}

fn q14(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q14_date);
    let det = src.detail(&DetailSpec {
        with_part: true,
        with_dates: true,
        vbep_conds: vec![
            Cond::new("EDATU", CmpOp::Ge, dval(d)),
            Cond::new("EDATU", CmpOp::Lt, dval(d.add_months(1))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let one = Decimal::from_int(1);
    let rows: Vec<Row> = det
        .iter()
        .map(|x| {
            src.sys.meter().bump(Counter::AppTuples);
            let vol = x.extprice.mul(one.sub(x.disc));
            let promo =
                if x.p_type.trim_end().starts_with("PROMO") { vol } else { Decimal::zero() };
            vec![Value::Decimal(vol), Value::Decimal(promo)]
        })
        .collect();
    let sums = app_aggregate_scalar(
        src.sys.meter(),
        &rows,
        &[(AggFunc::Sum, col(1)), (AggFunc::Sum, col(0))],
    )?;
    let promo = match &sums[0] {
        Value::Null => Decimal::zero(),
        v => v.as_decimal()?,
    };
    let total = match &sums[1] {
        Value::Null => return Ok(vec![vec![Value::Null]]),
        v => v.as_decimal()?,
    };
    let pct = promo.mul(Decimal::from_int(100)).div(total)?;
    Ok(vec![vec![Value::Decimal(pct)]])
}

fn q15(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    let d = date_of(&p.q15_date);
    let det = src.detail(&DetailSpec {
        with_dates: true,
        vbep_conds: vec![
            Cond::new("EDATU", CmpOp::Ge, dval(d)),
            Cond::new("EDATU", CmpOp::Lt, dval(d.add_months(3))),
        ],
        with_konv: true,
        ..Default::default()
    })?;
    let rows: Vec<Row> = det
        .iter()
        .map(|x| vec![Value::Int(x.suppkey), Value::Decimal(x.extprice), Value::Decimal(x.disc)])
        .collect();
    let grouped = app_aggregate(
        src.sys.meter(),
        &rows,
        &AppAgg { group_cols: vec![0], aggs: vec![(AggFunc::Sum, revenue(1, 2))], having: None },
    )?;
    // Manual unnesting of MAX(total_revenue).
    let mut max: Option<Decimal> = None;
    for r in &grouped {
        src.sys.meter().bump(Counter::AppTuples);
        let v = r[1].as_decimal()?;
        if max.map(|m| v > m).unwrap_or(true) {
            max = Some(v);
        }
    }
    let Some(max) = max else { return Ok(Vec::new()) };
    let suppliers = src.suppliers(&[])?;
    let by_key: HashMap<i64, _> = suppliers.iter().map(|s| (s.0, s)).collect();
    let mut out: Vec<Row> = Vec::new();
    for r in &grouped {
        if r[1].as_decimal()? == max {
            let k = r[0].as_int()?;
            if let Some((_, name, addr, _, phone, _)) = by_key.get(&k) {
                out.push(vec![
                    Value::Int(k),
                    Value::str(name),
                    Value::str(addr),
                    Value::str(phone),
                    r[1].clone(),
                ]);
            }
        }
    }
    app_sort(src.sys.meter(), &mut out, &[(0, false)]);
    Ok(out)
}

fn q16(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    // Manual unnesting of the NOT IN subquery: build the complaints set.
    let complaints_result = src.sys.open_select(
        &SelectSpec::from_table("STXL")
            .fields(&["TDNAME"])
            .cond(Cond::eq("TDOBJECT", Value::str("LFA1")))
            .cond(Cond::new("TDLINE", CmpOp::Like, Value::str("%Customer%Complaints%"))),
    )?;
    let complaints: HashSet<i64> =
        complaints_result.rows.iter().map(|r| crate::schema::parse_key(&r[0])).collect();
    let parts = src.parts(&[], false)?;
    let sizes: HashSet<i64> = p.q16_sizes.iter().copied().collect();
    let keep: HashMap<i64, _> = parts
        .iter()
        .filter(|part| {
            src.sys.meter().bump(Counter::AppTuples);
            part.1.trim_end() != p.q16_brand
                && !part.2.trim_end().starts_with(&p.q16_type)
                && sizes.contains(&part.3)
        })
        .map(|part| (part.0, part))
        .collect();
    let ps = src.partsupps(false, &[])?;
    let mut groups: BTreeMap<(String, String, i64), HashSet<i64>> = BTreeMap::new();
    for (pk, sk, _, _, _) in &ps {
        src.sys.meter().bump(Counter::AppTuples);
        let Some(part) = keep.get(pk) else { continue };
        if complaints.contains(sk) {
            continue;
        }
        groups
            .entry((part.1.trim_end().to_string(), part.2.trim_end().to_string(), part.3))
            .or_default()
            .insert(*sk);
    }
    let mut out: Vec<Row> = groups
        .into_iter()
        .map(|((brand, typ, size), supps)| {
            vec![
                Value::Str(brand),
                Value::Str(typ),
                Value::Int(size),
                Value::Int(supps.len() as i64),
            ]
        })
        .collect();
    app_sort(src.sys.meter(), &mut out, &[(3, true), (0, false), (1, false), (2, false)]);
    Ok(out)
}

fn q17(src: &Src, p: &QueryParams) -> DbResult<Vec<Row>> {
    // Manual unnesting of the correlated AVG subquery: fetch the qualifying
    // parts' line items (join pushed in 3.0; VBAP-driven nested loops in
    // 2.2), group per part in the application server, then apply the
    // 0.2*avg(quantity) filter in a second pass.
    let det = src.detail(&DetailSpec {
        with_part: true,
        mara_conds: vec![
            Cond::eq("MATKL", Value::str(&p.q17_brand)),
            Cond::eq("MAGRV", Value::str(&p.q17_container)),
        ],
        ..Default::default()
    })?;
    let mut per_part: HashMap<i64, (Decimal, i64)> = HashMap::new();
    for x in &det {
        src.sys.meter().bump(Counter::AppTuples);
        let e = per_part.entry(x.partkey).or_insert((Decimal::zero(), 0));
        e.0 = e.0.add(x.qty);
        e.1 += 1;
    }
    let fifth = Decimal::parse("0.2").expect("valid");
    let mut total = Decimal::zero();
    let mut any = false;
    for x in &det {
        src.sys.meter().bump(Counter::AppTuples);
        let (sum_qty, n) = per_part[&x.partkey];
        let threshold = fifth.mul(sum_qty.div(Decimal::from_int(n))?);
        if x.qty < threshold {
            total = total.add(x.extprice);
            any = true;
        }
    }
    // SQL semantics: SUM over an empty input is NULL, not zero.
    if !any {
        return Ok(vec![vec![Value::Null]]);
    }
    let avg_yearly = total.div(Decimal::from_int(7))?;
    Ok(vec![vec![Value::Decimal(avg_yearly)]])
}
