//! The Native SQL interface (`EXEC SQL ... ENDEXEC`, paper §2.3).
//!
//! Native SQL passes statements straight to the back-end RDBMS:
//!
//! * constants are visible, so the optimizer can estimate selectivities
//!   (§4.1: the Native report got the good plan);
//! * vendor-specific features are usable (the engine's `VENDOR_CONTAINS`
//!   string function — using it makes a report non-portable, the paper's
//!   §3.4.4 footnote);
//! * **encapsulated (pool/cluster) tables are unreachable** — they are not
//!   registered under their logical names in the RDBMS schema, and this
//!   layer rejects statements referencing them;
//! * nothing injects the client predicate: a report that forgets
//!   `MANDT = '301'` silently reads every client's data (the paper's
//!   safety argument for Open SQL).

use crate::dict::TableKind;
use crate::system::R3System;
use rdbms::error::{DbError, DbResult};
use rdbms::sql::ast::{Expr, SelectStmt, Statement, TableRef};
use rdbms::sql::parse_statement;
use rdbms::{ExecOutcome, QueryResult};

impl R3System {
    /// Execute a Native SQL statement.
    pub fn native_sql(&self, sql: &str) -> DbResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        let mut tables = Vec::new();
        collect_statement_tables(&stmt, &mut tables);
        for t in &tables {
            if let Ok(lt) = self.dict.table(t) {
                if lt.kind.is_encapsulated() {
                    let kind = match &lt.kind {
                        TableKind::Pool { .. } => "pool",
                        TableKind::Cluster { .. } => "cluster",
                        TableKind::Transparent => unreachable!(),
                    };
                    return Err(DbError::analysis(format!(
                        "Native SQL cannot access {kind} table {t} \
                         (encapsulated; requires the SAP data dictionary)"
                    )));
                }
            }
        }
        self.db_execute_direct(sql)
    }

    /// Native SQL SELECT returning rows.
    pub fn native_query(&self, sql: &str) -> DbResult<QueryResult> {
        self.native_sql(sql)?.rows()
    }
}

/// Collect all base-table names referenced by a statement, including
/// subqueries in FROM and in expressions.
pub fn collect_statement_tables(stmt: &Statement, out: &mut Vec<String>) {
    match stmt {
        Statement::Select(q) => collect_select_tables(q, out),
        Statement::Insert { table, .. }
        | Statement::Delete { table, .. }
        | Statement::Update { table, .. } => out.push(table.clone()),
        Statement::CreateView { query, .. } => collect_select_tables(query, out),
        _ => {}
    }
}

fn collect_select_tables(q: &SelectStmt, out: &mut Vec<String>) {
    for tref in &q.from {
        collect_tableref(tref, out);
    }
    let mut exprs: Vec<&Expr> = Vec::new();
    for item in &q.projections {
        if let rdbms::sql::ast::SelectItem::Expr { expr, .. } = item {
            exprs.push(expr);
        }
    }
    if let Some(w) = &q.where_clause {
        exprs.push(w);
    }
    if let Some(h) = &q.having {
        exprs.push(h);
    }
    for e in exprs {
        collect_expr_tables(e, out);
    }
}

fn collect_tableref(tref: &TableRef, out: &mut Vec<String>) {
    match tref {
        TableRef::Named { name, .. } => out.push(name.clone()),
        TableRef::Join { left, right, .. } => {
            collect_tableref(left, out);
            collect_tableref(right, out);
        }
        TableRef::Subquery { query, .. } => collect_select_tables(query, out),
    }
}

fn collect_expr_tables(e: &Expr, out: &mut Vec<String>) {
    // Walk subquery-bearing nodes; Expr::visit does not descend into them.
    match e {
        Expr::ScalarSubquery(q) => collect_select_tables(q, out),
        Expr::Exists { query, .. } => collect_select_tables(query, out),
        Expr::InSubquery { expr, query, .. } => {
            collect_expr_tables(expr, out);
            collect_select_tables(query, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_expr_tables(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_expr_tables(left, out);
            collect_expr_tables(right, out);
        }
        Expr::Between { expr, low, high, .. } => {
            collect_expr_tables(expr, out);
            collect_expr_tables(low, out);
            collect_expr_tables(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_tables(expr, out);
            for x in list {
                collect_expr_tables(x, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_expr_tables(expr, out);
            collect_expr_tables(pattern, out);
        }
        Expr::Case { branches, else_expr } => {
            for (c, r) in branches {
                collect_expr_tables(c, out);
                collect_expr_tables(r, out);
            }
            if let Some(x) = else_expr {
                collect_expr_tables(x, out);
            }
        }
        Expr::Agg { arg: Some(a), .. } => collect_expr_tables(a, out),
        Expr::Extract { expr, .. } | Expr::IntervalAdd { expr, .. } => {
            collect_expr_tables(expr, out)
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_expr_tables(a, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Release;
    use tpcd::DbGen;

    fn sys(release: Release) -> R3System {
        let sys = R3System::install_default(release).unwrap();
        sys.load_tpcd(&DbGen::new(0.001)).unwrap();
        sys
    }

    #[test]
    fn native_sql_reads_transparent_tables() {
        let s = sys(Release::R22);
        let r = s.native_query("SELECT COUNT(*) FROM VBAP WHERE MANDT = '301'").unwrap();
        assert!(r.scalar().unwrap().as_int().unwrap() > 0);
        // Crossings metered.
        assert!(s.snapshot().ipc_crossings() >= 1);
    }

    #[test]
    fn native_sql_rejects_encapsulated_tables() {
        let s = sys(Release::R22);
        let err = s.native_query("SELECT * FROM KONV WHERE MANDT = '301'");
        assert!(err.is_err(), "cluster KONV must be unreachable in 2.2");
        let err = s.native_query("SELECT * FROM VBAP WHERE VBELN IN (SELECT KNUMV FROM A004)");
        assert!(err.is_err(), "pool table in subquery must be caught");
    }

    #[test]
    fn konv_reachable_after_30_conversion() {
        let s = sys(Release::R30);
        let r = s
            .native_query("SELECT COUNT(*) FROM KONV WHERE MANDT = '301' AND KSCHL = 'DISC'")
            .unwrap();
        assert!(r.scalar().unwrap().as_int().unwrap() > 0);
    }

    #[test]
    fn vendor_function_usable_from_native_sql() {
        let s = sys(Release::R30);
        let r = s
            .native_query(
                "SELECT COUNT(*) FROM MAKT WHERE MANDT = '301' \
                 AND VENDOR_CONTAINS(MAKTX, 'green') = TRUE",
            )
            .unwrap();
        assert!(r.scalar().unwrap().as_int().unwrap() > 0, "some parts are green");
    }

    #[test]
    fn forgetting_mandt_reads_everything() {
        // The paper's safety point: Native SQL without the client predicate
        // is answered happily by the RDBMS.
        let s = sys(Release::R22);
        let r = s.native_query("SELECT COUNT(*) FROM KNA1").unwrap();
        assert!(r.scalar().unwrap().as_int().unwrap() > 0);
    }
}
