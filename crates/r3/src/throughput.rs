//! SAP-side workload adapters for the TPC-D throughput test.
//!
//! The generic driver lives in `tpcd::throughput`; these adapters run each
//! stream unit through the R/3 application server instead of the raw
//! engine: queries via Native or Open SQL reports, update functions via
//! the batch-input facility (one batch-input transaction per order — the
//! application-level LUW that stands in for an engine transaction, with
//! its per-record consistency checking).

use crate::reports::{self, SapInterface};
use crate::{R3System, Release};
use rdbms::clock::{Calibration, Counter, MeterSnapshot};
use rdbms::error::DbResult;
use std::collections::BTreeSet;
use tpcd::queries::QueryParams;
use tpcd::throughput::{query_read_set, StreamWorkload};
use tpcd::DbGen;

/// One of the paper's SAP configurations (release × interface) as a
/// throughput-test workload.
pub struct SapWorkload<'a> {
    pub sys: &'a R3System,
    pub iface: SapInterface,
    pub gen: &'a DbGen,
}

impl SapWorkload<'_> {
    /// Physical table behind the KONV pricing conditions: a cluster
    /// container in 2.2, a transparent table from 3.0 on.
    fn konv_physical(&self) -> &'static str {
        match self.sys.release {
            Release::R22 => "KOCLU",
            Release::R30 => "KONV",
        }
    }
}

impl StreamWorkload for SapWorkload<'_> {
    fn name(&self) -> String {
        format!("SAP R/3 {} {}", self.sys.release, self.iface)
    }

    fn run_query(&self, n: usize, params: &QueryParams) -> DbResult<u64> {
        Ok(reports::run_query_rows(self.sys, self.iface, n, params)?.len() as u64)
    }

    fn run_uf1(&self, stream: u64) -> DbResult<u64> {
        crate::batch_input::batch_uf1(self.sys, self.gen, stream)
    }

    fn run_uf2(&self, stream: u64) -> DbResult<u64> {
        crate::batch_input::batch_uf2(self.sys, self.gen, stream)
    }

    fn snapshot(&self) -> MeterSnapshot {
        self.sys.snapshot()
    }

    fn calibration(&self) -> Calibration {
        self.sys.calibration()
    }

    fn note_lock_wait(&self) {
        self.sys.meter().bump(Counter::LockWaits);
    }

    fn query_tables(&self, n: usize, params: &QueryParams) -> BTreeSet<String> {
        // The logical footprint of the reference SQL, plus the physical
        // KONV representation for pricing-condition queries.
        let mut tables = query_read_set(&self.sys.db, n, params);
        if reports::touches_konv(n) {
            tables.insert(self.konv_physical().to_string());
        }
        tables
    }

    fn update_tables(&self) -> BTreeSet<String> {
        // Batch input writes the order, its lineitems, and their pricing
        // conditions.
        ["ORDERS", "LINEITEM", self.konv_physical()].iter().map(|t| t.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcd::throughput::{run_throughput_test, ThroughputConfig};

    #[test]
    fn sap_throughput_runs_deterministically_on_both_interfaces() {
        for iface in [SapInterface::Native, SapInterface::Open] {
            let run = |_| {
                let sys = R3System::install_default(Release::R30).unwrap();
                let gen = DbGen::new(0.001);
                sys.load_tpcd(&gen).unwrap();
                let params = QueryParams::for_scale(gen.sf);
                let workload = SapWorkload { sys: &sys, iface, gen: &gen };
                let config = ThroughputConfig { query_streams: 2, seed: 11 };
                run_throughput_test(&workload, &params, gen.sf, &config).unwrap()
            };
            let a = run(0);
            let b = run(1);
            assert_eq!(a.streams.len(), 3);
            assert!(a.elapsed_seconds > 0.0);
            assert_eq!(a.elapsed_seconds.to_bits(), b.elapsed_seconds.to_bits(), "{iface}");
            assert_eq!(a.qthd.to_bits(), b.qthd.to_bits());
        }
    }
}
