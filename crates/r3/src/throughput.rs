//! SAP-side workload adapters for the TPC-D throughput test.
//!
//! The generic driver lives in `tpcd::throughput`; these adapters run each
//! stream unit through the R/3 application server instead of the raw
//! engine: queries via Native or Open SQL reports, update functions via
//! the batch-input facility (one batch-input transaction per order — the
//! application-level LUW that stands in for an engine transaction, with
//! its per-record consistency checking).
//!
//! ## Lock claims
//!
//! R/3 reads the database through committed-read prepared cursors: the
//! database interface holds no shared locks to end-of-transaction —
//! cross-record consistency is the enqueue service's job, not the
//! RDBMS's (§2.3 of the paper). A report's footprint therefore maps to
//! existing-row probe claims: it serializes against RF2's deletes of
//! existing orders but lets RF1's fresh-key inserts slip past. The one
//! coarse claim left is the 2.2 KONV cluster: the encapsulated KOCLU
//! container cannot be locked at row granularity, so batch input takes
//! table X on it — exactly the cluster-table concurrency penalty the
//! 3.0 transparent KONV removes.

use crate::reports::{self, SapInterface};
use crate::{R3System, Release};
use rdbms::clock::{Calibration, Counter, MeterSnapshot};
use rdbms::error::DbResult;
use tpcd::queries::QueryParams;
use tpcd::throughput::{
    query_read_set, update_stream_claims, update_stream_span, ClaimKind, LockClaim, StreamWorkload,
};
use tpcd::DbGen;

/// One of the paper's SAP configurations (release × interface) as a
/// throughput-test workload.
pub struct SapWorkload<'a> {
    pub sys: &'a R3System,
    pub iface: SapInterface,
    pub gen: &'a DbGen,
}

impl SapWorkload<'_> {
    /// Physical table behind the KONV pricing conditions: a cluster
    /// container in 2.2, a transparent table from 3.0 on.
    fn konv_physical(&self) -> &'static str {
        match self.sys.release {
            Release::R22 => "KOCLU",
            Release::R30 => "KONV",
        }
    }

    /// Batch input writes the order, its lineitems, and their pricing
    /// conditions: key-range X on the stream's orderkey block, plus the
    /// physical KONV claim — row-granular on the 3.0 transparent table,
    /// the coarse container lock on the 2.2 cluster.
    fn update_locks(&self, stream: u64, fresh: bool) -> Vec<LockClaim> {
        let mut claims = update_stream_claims(self.gen, stream, fresh);
        let kind = match self.sys.release {
            Release::R22 => ClaimKind::TableX,
            Release::R30 => {
                let (lo, hi) = update_stream_span(self.gen, stream);
                ClaimKind::RowX { lo, hi, fresh }
            }
        };
        claims.push(LockClaim { table: self.konv_physical().to_string(), kind });
        claims
    }
}

impl StreamWorkload for SapWorkload<'_> {
    fn name(&self) -> String {
        format!("SAP R/3 {} {}", self.sys.release, self.iface)
    }

    fn run_query(&self, n: usize, params: &QueryParams) -> DbResult<u64> {
        Ok(reports::run_query_rows(self.sys, self.iface, n, params)?.len() as u64)
    }

    fn run_uf1(&self, stream: u64) -> DbResult<u64> {
        crate::batch_input::batch_uf1(self.sys, self.gen, stream)
    }

    fn run_uf2(&self, stream: u64) -> DbResult<u64> {
        crate::batch_input::batch_uf2(self.sys, self.gen, stream)
    }

    fn snapshot(&self) -> MeterSnapshot {
        self.sys.snapshot()
    }

    fn calibration(&self) -> Calibration {
        self.sys.calibration()
    }

    fn note_lock_wait(&self) {
        self.sys.meter().bump(Counter::LockWaits);
    }

    fn note_deadlock_retry(&self) {
        self.sys.meter().bump(Counter::DeadlockRetries);
    }

    fn query_locks(&self, n: usize, params: &QueryParams) -> Vec<LockClaim> {
        // The logical footprint of the reference SQL as committed-read
        // cursor probes, plus the physical KONV representation for
        // pricing-condition queries.
        let mut claims: Vec<LockClaim> = query_read_set(&self.sys.db, n, params)
            .into_iter()
            .map(|table| LockClaim { table, kind: ClaimKind::ProbeS })
            .collect();
        if reports::touches_konv(n) {
            claims.push(LockClaim {
                table: self.konv_physical().to_string(),
                kind: ClaimKind::ProbeS,
            });
        }
        claims
    }

    fn uf1_locks(&self, stream: u64) -> Vec<LockClaim> {
        self.update_locks(stream, true)
    }

    fn uf2_locks(&self, stream: u64) -> Vec<LockClaim> {
        self.update_locks(stream, false)
    }

    /// Batch input issues COMMIT WORK once per order document, not once
    /// per refresh function.
    fn uf_commits(&self, stream: u64) -> u64 {
        self.gen.update_stream(stream).0.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcd::throughput::{run_throughput_test, LockModel, ThroughputConfig};

    #[test]
    fn sap_throughput_runs_deterministically_on_both_interfaces() {
        for iface in [SapInterface::Native, SapInterface::Open] {
            let run = |_| {
                let sys = R3System::install_default(Release::R30).unwrap();
                let gen = DbGen::new(0.001);
                sys.load_tpcd(&gen).unwrap();
                let params = QueryParams::for_scale(gen.sf);
                let workload = SapWorkload { sys: &sys, iface, gen: &gen };
                let config = ThroughputConfig { query_streams: 2, seed: 11, ..Default::default() };
                run_throughput_test(&workload, &params, gen.sf, &config).unwrap()
            };
            let a = run(0);
            let b = run(1);
            assert_eq!(a.streams.len(), 3);
            assert!(a.elapsed_seconds > 0.0);
            assert_eq!(a.elapsed_seconds.to_bits(), b.elapsed_seconds.to_bits(), "{iface}");
            assert_eq!(a.qthd.to_bits(), b.qthd.to_bits());
        }
    }

    #[test]
    fn hierarchical_locking_frees_the_sap_update_stream() {
        let run = |model: LockModel| {
            let sys = R3System::install_default(Release::R30).unwrap();
            let gen = DbGen::new(0.001);
            sys.load_tpcd(&gen).unwrap();
            let params = QueryParams::for_scale(gen.sf);
            let workload = SapWorkload { sys: &sys, iface: SapInterface::Open, gen: &gen };
            let config = ThroughputConfig {
                query_streams: 2,
                seed: 11,
                lock_model: model,
                ..Default::default()
            };
            run_throughput_test(&workload, &params, gen.sf, &config).unwrap()
        };
        let table = run(LockModel::Table);
        let hier = run(LockModel::Hierarchical);
        let table_upd = table.stream("UPD").unwrap();
        let hier_upd = hier.stream("UPD").unwrap();
        assert!(table_upd.lock_wait_seconds > 0.0, "baseline UFs queue behind query reads");
        for u in &hier_upd.units {
            if u.unit.starts_with("UF1") {
                assert_eq!(u.lock_wait, 0.0, "RF1 slips past R/3's cursor reads: {u:?}");
            }
        }
        assert!(
            hier_upd.lock_wait_seconds < table_upd.lock_wait_seconds,
            "update-stream lock wait must drop: {} vs {}",
            hier_upd.lock_wait_seconds,
            table_upd.lock_wait_seconds
        );
        assert!(hier.qthd >= table.qthd);
    }

    #[test]
    fn r22_cluster_keeps_coarse_konv_claims() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.001);
        let workload = SapWorkload { sys: &sys, iface: SapInterface::Open, gen: &gen };
        let uf1 = workload.uf1_locks(1);
        let koclu = uf1.iter().find(|c| c.table == "KOCLU").expect("KOCLU claim");
        assert_eq!(koclu.kind, ClaimKind::TableX, "2.2 cluster cannot be row-locked");

        let sys30 = R3System::install_default(Release::R30).unwrap();
        let workload30 = SapWorkload { sys: &sys30, iface: SapInterface::Open, gen: &gen };
        let uf1 = workload30.uf1_locks(1);
        let konv = uf1.iter().find(|c| c.table == "KONV").expect("KONV claim");
        assert!(
            matches!(konv.kind, ClaimKind::RowX { fresh: true, .. }),
            "3.0 transparent KONV is row-granular: {konv:?}"
        );
        // A pricing-condition query probe does not block the 3.0 insert
        // but does collide with the 2.2 container lock.
        assert!(!ClaimKind::ProbeS.conflicts_with(&konv.kind));
        assert!(ClaimKind::ProbeS.conflicts_with(&koclu.kind));
    }
}
