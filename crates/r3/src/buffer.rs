//! The application-server table buffer (paper §2.3, §4.3).
//!
//! SAP R/3 can buffer table records in the application server so that
//! repeated "small" queries (single-record reads by full key) never cross
//! into the RDBMS. The buffer is an LRU keyed by (table, key-string) with a
//! configurable byte capacity; probes and hits are metered so the Table 8
//! experiment can report hit ratios.
//!
//! Coherency caveat from the paper: "SAP R/3 does not fully guarantee cache
//! coherency in a distributed environment as updates are only propagated
//! periodically" — our single-node simulator invalidates buffered entries
//! on local writes, which is the best case.

use parking_lot::Mutex;
use rdbms::clock::{CostMeter, Counter};
use rdbms::schema::Row;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

struct Entry {
    row: Option<Row>, // None caches a miss ("no such record")
    bytes: usize,
    stamp: u64,
}

struct BufferInner {
    entries: HashMap<(String, String), Entry>,
    lru: VecDeque<((String, String), u64)>,
    next_stamp: u64,
    used_bytes: usize,
    capacity_bytes: usize,
    buffered_tables: HashSet<String>,
}

/// The table buffer.
pub struct TableBuffer {
    inner: Mutex<BufferInner>,
    meter: Arc<CostMeter>,
}

fn row_bytes(row: &Option<Row>) -> usize {
    // Buffered records are stored in a compact form: CHAR fields are kept
    // trimmed (SAP's generic buffer stores variable-length rows), so a
    // padded business row buffers much smaller than it is stored.
    48 + row
        .as_ref()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    rdbms::types::Value::Str(s) => s.trim_end().len() + 2,
                    other => other.storage_size(),
                })
                .sum::<usize>()
        })
        .unwrap_or(0)
}

impl TableBuffer {
    pub fn new(meter: Arc<CostMeter>) -> Self {
        TableBuffer {
            inner: Mutex::new(BufferInner {
                entries: HashMap::new(),
                lru: VecDeque::new(),
                next_stamp: 0,
                used_bytes: 0,
                capacity_bytes: 0,
                buffered_tables: HashSet::new(),
            }),
            meter,
        }
    }

    /// Enable buffering for a table (SE11 "buffering switched on").
    pub fn enable(&self, table: &str) {
        self.inner.lock().buffered_tables.insert(table.to_ascii_uppercase());
    }

    pub fn disable(&self, table: &str) {
        let mut g = self.inner.lock();
        g.buffered_tables.remove(&table.to_ascii_uppercase());
        // Drop its entries.
        let keys: Vec<_> =
            g.entries.keys().filter(|(t, _)| t == &table.to_ascii_uppercase()).cloned().collect();
        for k in keys {
            if let Some(e) = g.entries.remove(&k) {
                g.used_bytes -= e.bytes;
            }
        }
    }

    pub fn set_capacity_bytes(&self, bytes: usize) {
        let mut g = self.inner.lock();
        g.capacity_bytes = bytes;
        Self::evict_to_fit(&mut g);
    }

    pub fn is_buffered(&self, table: &str) -> bool {
        let g = self.inner.lock();
        g.capacity_bytes > 0 && g.buffered_tables.contains(&table.to_ascii_uppercase())
    }

    /// Probe the buffer. `Some(inner)` is a hit (inner `None` = cached
    /// negative); `None` means the caller must go to the database.
    pub fn get(&self, table: &str, key: &str) -> Option<Option<Row>> {
        let mut g = self.inner.lock();
        self.meter.bump(Counter::CacheProbes);
        let map_key = (table.to_ascii_uppercase(), key.to_string());
        if !g.entries.contains_key(&map_key) {
            return None;
        }
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        let row = {
            let e = g.entries.get_mut(&map_key).expect("present");
            e.stamp = stamp;
            e.row.clone()
        };
        g.lru.push_back((map_key, stamp));
        self.meter.bump(Counter::CacheHits);
        Some(row)
    }

    /// Install a fetched record (or a negative result).
    pub fn put(&self, table: &str, key: &str, row: Option<Row>) {
        let mut g = self.inner.lock();
        if g.capacity_bytes == 0 {
            return;
        }
        let map_key = (table.to_ascii_uppercase(), key.to_string());
        let bytes = row_bytes(&row);
        if bytes > g.capacity_bytes {
            return;
        }
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        if let Some(old) = g.entries.insert(map_key.clone(), Entry { row, bytes, stamp }) {
            g.used_bytes -= old.bytes;
        }
        g.used_bytes += bytes;
        g.lru.push_back((map_key, stamp));
        Self::evict_to_fit(&mut g);
        // Cache maintenance costs a little work too (the paper's 2 MB cache
        // was *slower* than no cache: management overhead ate the gains).
        self.meter.bump(Counter::CacheProbes);
    }

    /// Invalidate one record (local write).
    pub fn invalidate(&self, table: &str, key: &str) {
        let mut g = self.inner.lock();
        let map_key = (table.to_ascii_uppercase(), key.to_string());
        if let Some(e) = g.entries.remove(&map_key) {
            g.used_bytes -= e.bytes;
        }
    }

    fn evict_to_fit(g: &mut BufferInner) {
        while g.used_bytes > g.capacity_bytes {
            let Some((key, stamp)) = g.lru.pop_front() else { break };
            let current = matches!(g.entries.get(&key), Some(e) if e.stamp == stamp);
            if current {
                let e = g.entries.remove(&key).expect("checked");
                g.used_bytes -= e.bytes;
            }
        }
    }

    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    pub fn entry_count(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Drop everything (between experiments).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.entries.clear();
        g.lru.clear();
        g.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbms::types::Value;

    fn buffer(cap: usize) -> TableBuffer {
        let b = TableBuffer::new(CostMeter::new());
        b.set_capacity_bytes(cap);
        b.enable("MARA");
        b
    }

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::str("data")]
    }

    #[test]
    fn hit_and_miss() {
        let b = buffer(10_000);
        assert!(b.get("MARA", "k1").is_none());
        b.put("MARA", "k1", Some(row(1)));
        assert_eq!(b.get("MARA", "k1"), Some(Some(row(1))));
        assert_eq!(b.meter.get(Counter::CacheHits), 1);
        assert!(b.meter.get(Counter::CacheProbes) >= 2);
    }

    #[test]
    fn negative_caching() {
        let b = buffer(10_000);
        b.put("MARA", "missing", None);
        assert_eq!(b.get("MARA", "missing"), Some(None));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let b = buffer(400);
        for i in 0..20 {
            b.put("MARA", &format!("k{i}"), Some(row(i)));
        }
        assert!(b.used_bytes() <= 400);
        assert!(b.entry_count() < 20, "older entries evicted");
        // The most recent entry should still be there.
        assert!(b.get("MARA", "k19").is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let b = TableBuffer::new(CostMeter::new());
        b.enable("MARA");
        assert!(!b.is_buffered("MARA"));
        b.put("MARA", "k", Some(row(1)));
        assert!(b.get("MARA", "k").is_none());
    }

    #[test]
    fn invalidate_and_disable() {
        let b = buffer(10_000);
        b.put("MARA", "k", Some(row(1)));
        b.invalidate("MARA", "k");
        assert!(b.get("MARA", "k").is_none());
        b.put("MARA", "k2", Some(row(2)));
        b.disable("MARA");
        assert_eq!(b.entry_count(), 0);
        assert_eq!(b.used_bytes(), 0);
    }
}
