//! The SAP business schema used for TPC-D — the 17 tables of the paper's
//! Table 1 — and the mapping of TPC-D records onto them.
//!
//! Reproduced faithfully from the paper's description:
//!
//! * every table carries the client column `MANDT` (the business client,
//!   "TPC-D Inc" = '301' in our installation, as in the paper's §4.1),
//! * key attributes are 16-byte strings rather than 4-byte integers,
//! * the TPC-D relations are vertically partitioned (LINEITEM spreads over
//!   VBAP + VBEP + KONV + STXL; PART over MARA + MAKT + A004 + KONP + AUSP;
//!   ...),
//! * the SAP tables carry many business fields that TPC-D has no use for,
//!   filled with defaults at load time — together these produce the ~10x
//!   data inflation of the paper's Table 2,
//! * `A004` is a pool table and `KONV` is a cluster table by default
//!   (Release 2.2); Release 3.0 converts KONV to transparent, tripling it.

use crate::dict::{cluster_container_ddl, pool_container_ddl, DataDict, LogicalTable, TableKind};
use crate::Release;
use rdbms::schema::Column;
use rdbms::types::{DataType, Value};
use tpcd::records::{Customer, LineItem, Nation, Order, Part, PartSupp, Region, Supplier};

/// The TPC-D Inc business client.
pub const MANDT: &str = "301";

/// 16-character zero-padded key string (SAP-style CHAR(16) keys).
pub fn key16(n: i64) -> Value {
    Value::Str(format!("{n:016}"))
}

/// 6-character item/position number.
pub fn key6(n: i64) -> Value {
    Value::Str(format!("{n:06}"))
}

/// Parse a CHAR(16)/CHAR(6) key back to an integer.
pub fn parse_key(v: &Value) -> i64 {
    match v {
        Value::Str(s) => s.trim().trim_start_matches('0').parse().unwrap_or(0),
        Value::Int(i) => *i,
        _ => 0,
    }
}

fn c(name: &str, n: u16) -> Column {
    Column::new(name, DataType::Char(n))
}

fn vc(name: &str, n: u16) -> Column {
    Column::new(name, DataType::VarChar(n))
}

fn dec(name: &str) -> Column {
    Column::new(name, DataType::Decimal { precision: 15, scale: 2 })
}

fn date(name: &str) -> Column {
    Column::new(name, DataType::Date)
}

fn int(name: &str) -> Column {
    Column::new(name, DataType::Int)
}

/// Generic defaulted business fields ("the SAP tables contain many fields
/// which are not accounted for in the TPC-D benchmark; these fields were
/// implicitly given default values" — §3.4.1).
fn filler_cols(prefix: &str, count: usize, width: u16) -> Vec<Column> {
    (0..count).map(|i| c(&format!("{prefix}{i:02}"), width)).collect()
}

fn filler_vals(count: usize, width: u16) -> Vec<Value> {
    // Default values are non-empty (SAP initializes to type defaults; we
    // use a short constant so CHAR padding dominates, like real defaults).
    (0..count).map(|_| Value::Str(format!("{:<w$}", "X", w = width as usize))).collect()
}

/// Names of the 17 SAP tables used by the TPC-D data (paper Table 1).
pub const SAP_TABLES: [&str; 17] = [
    "T005", "T005T", "T005U", "MARA", "MAKT", "A004", "KONP", "LFA1", "EINA", "EINE", "AUSP",
    "KNA1", "VBAK", "VBAP", "VBEP", "KONV", "STXL",
];

/// Width/count of defaulted filler fields per table (tuned so the loaded
/// SAP database lands near the paper's ~10x inflation).
const MARA_FILL: (usize, u16) = (55, 12);
const LFA1_FILL: (usize, u16) = (42, 12);
const KNA1_FILL: (usize, u16) = (46, 12);
const VBAK_FILL: (usize, u16) = (50, 12);
const VBAP_FILL: (usize, u16) = (62, 12);
const VBEP_FILL: (usize, u16) = (38, 12);
const EINA_FILL: (usize, u16) = (26, 12);
const EINE_FILL: (usize, u16) = (30, 12);
const KONV_FILL: (usize, u16) = (10, 8);

/// Build the logical dictionary for a release. In R22, A004 is a pool
/// table and KONV is a cluster table; in R30 KONV has been converted to a
/// transparent table (the paper's upgrade step).
pub fn build_dict(release: Release) -> DataDict {
    let mut d = DataDict::new();
    let mandt = c("MANDT", 3).not_null();

    // -- country/region (NATION, REGION) ---------------------------------
    d.register(LogicalTable {
        name: "T005".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("LAND1", 16).not_null(), // nationkey
            c("REGIO", 16),            // regionkey
            c("LANDK", 3),
            c("SPRAS", 2),
            c("WAERS", 5),
            c("KALSM", 6),
            c("XEGLD", 1),
            c("INTCA", 2),
        ],
        key_len: 2,
    });
    d.register(LogicalTable {
        name: "T005T".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("SPRAS", 2).not_null(),
            c("LAND1", 16).not_null(),
            c("LANDX", 25), // nation name
            c("NATIO", 25),
        ],
        key_len: 3,
    });
    d.register(LogicalTable {
        name: "T005U".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("SPRAS", 2).not_null(),
            c("REGIO", 16).not_null(),
            c("BEZEI", 25), // region name
        ],
        key_len: 3,
    });

    // -- material master (PART) ------------------------------------------
    let mut mara_cols = vec![
        mandt.clone(),
        c("MATNR", 16).not_null(), // partkey
        c("MTART", 25),            // p_type
        c("MATKL", 10),            // p_brand
        int("GROES"),              // p_size
        c("MAGRV", 10),            // p_container
        c("MFRNR", 25),            // p_mfgr
        c("MBRSH", 1),
        c("MEINS", 3),
        c("SPART", 2),
    ];
    mara_cols.extend(filler_cols("MPAD", MARA_FILL.0, MARA_FILL.1));
    d.register(LogicalTable {
        name: "MARA".into(),
        kind: TableKind::Transparent,
        columns: mara_cols,
        key_len: 2,
    });
    d.register(LogicalTable {
        name: "MAKT".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("MATNR", 16).not_null(),
            c("SPRAS", 2).not_null(),
            vc("MAKTX", 70), // p_name
        ],
        key_len: 3,
    });
    // A004: price-condition access record — a POOL table by default.
    d.register(LogicalTable {
        name: "A004".into(),
        kind: TableKind::Pool { container: "KAPOL".into() },
        columns: vec![
            mandt.clone(),
            c("KAPPL", 2).not_null(),
            c("KSCHL", 4).not_null(),
            c("MATNR", 16).not_null(),
            c("KNUMH", 16), // condition record -> KONP
            date("DATAB"),
            date("DATBI"),
        ],
        key_len: 4,
    });
    d.register(LogicalTable {
        name: "KONP".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("KNUMH", 16).not_null(),
            c("KOPOS", 2).not_null(),
            c("KSCHL", 4),
            dec("KBETR"), // p_retailprice
            c("KONWA", 5),
            c("KMEIN", 3),
        ],
        key_len: 3,
    });
    // AUSP: classification values (part properties).
    d.register(LogicalTable {
        name: "AUSP".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("OBJEK", 16).not_null(),
            c("ATINN", 10).not_null(),
            c("KLART", 3).not_null(),
            vc("ATWRT", 40),
            dec("ATFLV"),
        ],
        key_len: 4,
    });

    // -- supplier ----------------------------------------------------------
    let mut lfa1_cols = vec![
        mandt.clone(),
        c("LIFNR", 16).not_null(), // suppkey
        c("NAME1", 25),            // s_name
        vc("STRAS", 40),           // s_address
        c("LAND1", 16),            // s_nationkey
        c("TELF1", 16),            // s_phone
        dec("SALDO"),              // s_acctbal
    ];
    lfa1_cols.extend(filler_cols("LPAD", LFA1_FILL.0, LFA1_FILL.1));
    d.register(LogicalTable {
        name: "LFA1".into(),
        kind: TableKind::Transparent,
        columns: lfa1_cols,
        key_len: 2,
    });

    // -- purchasing info records (PARTSUPP) --------------------------------
    let mut eina_cols = vec![
        mandt.clone(),
        c("INFNR", 16).not_null(), // info record number
        c("MATNR", 16),            // ps_partkey
        c("LIFNR", 16),            // ps_suppkey
    ];
    eina_cols.extend(filler_cols("IPAD", EINA_FILL.0, EINA_FILL.1));
    d.register(LogicalTable {
        name: "EINA".into(),
        kind: TableKind::Transparent,
        columns: eina_cols,
        key_len: 2,
    });
    let mut eine_cols = vec![
        mandt.clone(),
        c("INFNR", 16).not_null(),
        c("EKORG", 4).not_null(),
        dec("NETPR"), // ps_supplycost
        int("BSTMA"), // ps_availqty
    ];
    eine_cols.extend(filler_cols("EPAD", EINE_FILL.0, EINE_FILL.1));
    d.register(LogicalTable {
        name: "EINE".into(),
        kind: TableKind::Transparent,
        columns: eine_cols,
        key_len: 3,
    });

    // -- customer -----------------------------------------------------------
    let mut kna1_cols = vec![
        mandt.clone(),
        c("KUNNR", 16).not_null(), // custkey
        c("NAME1", 25),
        vc("STRAS", 40),
        c("LAND1", 16),
        c("TELF1", 16),
        dec("SALDO"),
        c("KDGRP", 10), // c_mktsegment
    ];
    kna1_cols.extend(filler_cols("KPAD", KNA1_FILL.0, KNA1_FILL.1));
    d.register(LogicalTable {
        name: "KNA1".into(),
        kind: TableKind::Transparent,
        columns: kna1_cols,
        key_len: 2,
    });

    // -- sales documents (ORDER / LINEITEM) --------------------------------
    let mut vbak_cols = vec![
        mandt.clone(),
        c("VBELN", 16).not_null(), // orderkey
        c("KUNNR", 16),            // custkey
        date("AUDAT"),             // orderdate
        dec("NETWR"),              // totalprice
        c("VBTYP", 1),             // orderstatus
        c("PRIOK", 15),            // orderpriority
        c("ERNAM", 15),            // clerk
        int("SPRIO"),              // shippriority
        c("KNUMV", 16),            // pricing document -> KONV
    ];
    vbak_cols.extend(filler_cols("APAD", VBAK_FILL.0, VBAK_FILL.1));
    d.register(LogicalTable {
        name: "VBAK".into(),
        kind: TableKind::Transparent,
        columns: vbak_cols,
        key_len: 2,
    });
    let mut vbap_cols = vec![
        mandt.clone(),
        c("VBELN", 16).not_null(), // orderkey
        c("POSNR", 6).not_null(),  // linenumber
        c("MATNR", 16),            // partkey
        c("LIFNR", 16),            // suppkey
        dec("KWMENG"),             // quantity
        dec("NETWR"),              // extendedprice
        c("RFLAG", 1),             // returnflag
        c("LSTAT", 1),             // linestatus
    ];
    vbap_cols.extend(filler_cols("PPAD", VBAP_FILL.0, VBAP_FILL.1));
    d.register(LogicalTable {
        name: "VBAP".into(),
        kind: TableKind::Transparent,
        columns: vbap_cols,
        key_len: 3,
    });
    let mut vbep_cols = vec![
        mandt.clone(),
        c("VBELN", 16).not_null(),
        c("POSNR", 6).not_null(),
        c("ETENR", 4).not_null(),
        date("EDATU"),  // shipdate
        date("WADAT"),  // commitdate
        date("LDDAT"),  // receiptdate
        c("VSART", 10), // shipmode
        c("LIFSP", 25), // shipinstruct
    ];
    vbep_cols.extend(filler_cols("SPAD", VBEP_FILL.0, VBEP_FILL.1));
    d.register(LogicalTable {
        name: "VBEP".into(),
        kind: TableKind::Transparent,
        columns: vbep_cols,
        key_len: 4,
    });

    // KONV: pricing conditions — discount and tax per line item. The paper's
    // §4.2 report uses KBETR in per-mille (KAWRT * (1 + KBETR/1000)).
    let mut konv_cols = vec![
        mandt.clone(),
        c("KNUMV", 16).not_null(), // pricing document (== VBAK.KNUMV)
        c("KPOSN", 6).not_null(),  // item number (== VBAP.POSNR)
        c("STUNR", 3).not_null(),  // step number
        c("ZAEHK", 2).not_null(),  // condition counter
        c("KSCHL", 4),             // condition type: 'DISC' or 'TAX'
        dec("KBETR"),              // rate in per-mille
        dec("KAWRT"),              // condition base value (extendedprice)
    ];
    konv_cols.extend(filler_cols("CPAD", KONV_FILL.0, KONV_FILL.1));
    d.register(LogicalTable {
        name: "KONV".into(),
        kind: match release {
            Release::R22 => TableKind::Cluster { container: "KOCLU".into(), cluster_key_len: 2 },
            Release::R30 => TableKind::Transparent,
        },
        columns: konv_cols,
        key_len: 5,
    });

    // STXL: long texts (all TPC-D comment fields).
    d.register(LogicalTable {
        name: "STXL".into(),
        kind: TableKind::Transparent,
        columns: vec![
            mandt.clone(),
            c("TDOBJECT", 10).not_null(),
            c("TDNAME", 32).not_null(),
            c("TDID", 4).not_null(),
            vc("TDLINE", 220),
        ],
        key_len: 4,
    });

    d
}

/// Physical DDL: transparent tables 1:1, containers for pool/cluster, the
/// primary-key indexes, and SAP's default secondary indexes (including the
/// shipdate index the paper deleted for its 3.0E run).
pub fn physical_ddl(dict: &DataDict) -> Vec<String> {
    let mut stmts = Vec::new();
    let mut containers_done: Vec<String> = Vec::new();
    for name in dict.table_names() {
        let t = dict.table(&name).expect("listed");
        match &t.kind {
            TableKind::Transparent => {
                let cols: Vec<String> = t
                    .columns
                    .iter()
                    .map(|col| {
                        format!(
                            "{} {}{}",
                            col.name,
                            col.ty,
                            if col.nullable { "" } else { " NOT NULL" }
                        )
                    })
                    .collect();
                let pk: Vec<String> = t.key_columns().iter().map(|col| col.name.clone()).collect();
                stmts.push(format!(
                    "CREATE TABLE {} ({}, PRIMARY KEY ({}))",
                    t.name,
                    cols.join(", "),
                    pk.join(", ")
                ));
            }
            TableKind::Pool { container } => {
                if !containers_done.contains(container) {
                    stmts.push(pool_container_ddl(container));
                    containers_done.push(container.clone());
                }
            }
            TableKind::Cluster { container, cluster_key_len } => {
                if !containers_done.contains(container) {
                    let key_cols: Vec<(String, DataType)> = t.columns[1..*cluster_key_len]
                        .iter()
                        .map(|col| (col.name.clone(), col.ty))
                        .collect();
                    let refs: Vec<(&str, DataType)> =
                        key_cols.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
                    stmts.push(cluster_container_ddl(container, &refs));
                    containers_done.push(container.clone());
                }
            }
        }
    }
    // SAP default secondary indexes relevant to the workload.
    for idx in [
        "CREATE INDEX VBAP_MATNR ON VBAP (MANDT, MATNR)",
        "CREATE INDEX VBAP_LIFNR ON VBAP (MANDT, LIFNR)",
        "CREATE INDEX VBAK_KUNNR ON VBAK (MANDT, KUNNR)",
        "CREATE INDEX EINA_MATNR ON EINA (MANDT, MATNR)",
        "CREATE INDEX EINA_LIFNR ON EINA (MANDT, LIFNR)",
        "CREATE INDEX KNA1_LAND1 ON KNA1 (MANDT, LAND1)",
        "CREATE INDEX LFA1_LAND1 ON LFA1 (MANDT, LAND1)",
        "CREATE INDEX A004_SHIP ON MAKT (MANDT, SPRAS)",
        // The index SAP creates by default on shipdate-equivalent
        // (deleted in the paper's 3.0E configuration).
        "CREATE INDEX VBEP_EDATU ON VBEP (MANDT, EDATU)",
    ] {
        stmts.push(idx.to_string());
    }
    stmts
}

// ---------------------------------------------------------------------------
// TPC-D record -> logical SAP rows
// ---------------------------------------------------------------------------

fn mandt_val() -> Value {
    Value::str(MANDT)
}

/// One logical insert: (table name, row).
pub type LogicalRow = (&'static str, Vec<Value>);

pub fn nation_rows(n: &Nation) -> Vec<LogicalRow> {
    vec![
        (
            "T005",
            vec![
                mandt_val(),
                key16(n.nationkey),
                key16(n.regionkey),
                Value::str("XX"),
                Value::str("E"),
                Value::str("USD"),
                Value::str("KALSM"),
                Value::str("X"),
                Value::str("XX"),
            ],
        ),
        (
            "T005T",
            vec![
                mandt_val(),
                Value::str("E"),
                key16(n.nationkey),
                Value::str(&n.name),
                Value::str(&n.name),
            ],
        ),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("LAND"),
                Value::Str(format!("{:016}", n.nationkey)),
                Value::str("0001"),
                Value::str(&n.comment),
            ],
        ),
    ]
}

pub fn region_rows(r: &Region) -> Vec<LogicalRow> {
    vec![
        ("T005U", vec![mandt_val(), Value::str("E"), key16(r.regionkey), Value::str(&r.name)]),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("REGIO"),
                Value::Str(format!("{:016}", r.regionkey)),
                Value::str("0001"),
                Value::str(&r.comment),
            ],
        ),
    ]
}

pub fn part_rows(p: &Part) -> Vec<LogicalRow> {
    let mut mara = vec![
        mandt_val(),
        key16(p.partkey),
        Value::str(&p.type_),
        Value::str(&p.brand),
        Value::Int(p.size),
        Value::str(&p.container),
        Value::str(&p.mfgr),
        Value::str("M"),
        Value::str("EA"),
        Value::str("01"),
    ];
    mara.extend(filler_vals(MARA_FILL.0, MARA_FILL.1));
    vec![
        ("MARA", mara),
        ("MAKT", vec![mandt_val(), key16(p.partkey), Value::str("E"), Value::str(&p.name)]),
        (
            "A004",
            vec![
                mandt_val(),
                Value::str("V"),
                Value::str("PR00"),
                key16(p.partkey),
                key16(p.partkey), // KNUMH == partkey in our load
                Value::date(1992, 1, 1),
                Value::date(1999, 12, 31),
            ],
        ),
        (
            "KONP",
            vec![
                mandt_val(),
                key16(p.partkey),
                Value::str("01"),
                Value::str("PR00"),
                Value::Decimal(p.retailprice),
                Value::str("USD"),
                Value::str("EA"),
            ],
        ),
        (
            "AUSP",
            vec![
                mandt_val(),
                key16(p.partkey),
                Value::str("CONTAINER"),
                Value::str("001"),
                Value::str(&p.container),
                Value::Decimal(rdbms::types::Decimal::from_int(p.size)),
            ],
        ),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("MATERIAL"),
                Value::Str(format!("{:016}", p.partkey)),
                Value::str("0001"),
                Value::str(&p.comment),
            ],
        ),
    ]
}

pub fn supplier_rows(s: &Supplier) -> Vec<LogicalRow> {
    let mut lfa1 = vec![
        mandt_val(),
        key16(s.suppkey),
        Value::str(&s.name),
        Value::str(&s.address),
        key16(s.nationkey),
        Value::str(&s.phone),
        Value::Decimal(s.acctbal),
    ];
    lfa1.extend(filler_vals(LFA1_FILL.0, LFA1_FILL.1));
    vec![
        ("LFA1", lfa1),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("LFA1"),
                Value::Str(format!("{:016}", s.suppkey)),
                Value::str("0001"),
                Value::str(&s.comment),
            ],
        ),
    ]
}

/// The synthetic purchasing-info-record number for a partsupp pair.
pub fn infnr(partkey: i64, suppkey: i64) -> Value {
    Value::Str(format!("{partkey:08}{suppkey:08}"))
}

pub fn partsupp_rows(ps: &PartSupp) -> Vec<LogicalRow> {
    let mut eina =
        vec![mandt_val(), infnr(ps.partkey, ps.suppkey), key16(ps.partkey), key16(ps.suppkey)];
    eina.extend(filler_vals(EINA_FILL.0, EINA_FILL.1));
    let mut eine = vec![
        mandt_val(),
        infnr(ps.partkey, ps.suppkey),
        Value::str("0001"),
        Value::Decimal(ps.supplycost),
        Value::Int(ps.availqty),
    ];
    eine.extend(filler_vals(EINE_FILL.0, EINE_FILL.1));
    vec![
        ("EINA", eina),
        ("EINE", eine),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("INFO"),
                Value::Str(format!("{:08}{:08}", ps.partkey, ps.suppkey)),
                Value::str("0001"),
                Value::str(&ps.comment),
            ],
        ),
    ]
}

pub fn customer_rows(cu: &Customer) -> Vec<LogicalRow> {
    let mut kna1 = vec![
        mandt_val(),
        key16(cu.custkey),
        Value::str(&cu.name),
        Value::str(&cu.address),
        key16(cu.nationkey),
        Value::str(&cu.phone),
        Value::Decimal(cu.acctbal),
        Value::str(&cu.mktsegment),
    ];
    kna1.extend(filler_vals(KNA1_FILL.0, KNA1_FILL.1));
    vec![
        ("KNA1", kna1),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("KNA1"),
                Value::Str(format!("{:016}", cu.custkey)),
                Value::str("0001"),
                Value::str(&cu.comment),
            ],
        ),
    ]
}

pub fn order_rows(o: &Order) -> Vec<LogicalRow> {
    let mut vbak = vec![
        mandt_val(),
        key16(o.orderkey),
        key16(o.custkey),
        Value::Date(o.orderdate),
        Value::Decimal(o.totalprice),
        Value::str(&o.orderstatus),
        Value::str(&o.orderpriority),
        Value::str(&o.clerk),
        Value::Int(o.shippriority),
        key16(o.orderkey), // KNUMV == orderkey in our load
    ];
    vbak.extend(filler_vals(VBAK_FILL.0, VBAK_FILL.1));
    vec![
        ("VBAK", vbak),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("VBBK"),
                Value::Str(format!("{:016}", o.orderkey)),
                Value::str("0001"),
                Value::str(&o.comment),
            ],
        ),
    ]
}

/// Discount/tax rates are stored SAP-style in per-mille on KONV
/// (paper §4.2: `KAWRT * (1 + KBETR/1000)`).
pub fn permille(d: rdbms::types::Decimal) -> rdbms::types::Decimal {
    d.mul(rdbms::types::Decimal::from_int(1000)).rescale(0)
}

pub fn lineitem_rows(l: &LineItem) -> Vec<LogicalRow> {
    let mut vbap = vec![
        mandt_val(),
        key16(l.orderkey),
        key6(l.linenumber),
        key16(l.partkey),
        key16(l.suppkey),
        Value::Decimal(rdbms::types::Decimal::from_int(l.quantity).rescale(2)),
        Value::Decimal(l.extendedprice),
        Value::str(&l.returnflag),
        Value::str(&l.linestatus),
    ];
    vbap.extend(filler_vals(VBAP_FILL.0, VBAP_FILL.1));
    let mut vbep = vec![
        mandt_val(),
        key16(l.orderkey),
        key6(l.linenumber),
        Value::str("0001"),
        Value::Date(l.shipdate),
        Value::Date(l.commitdate),
        Value::Date(l.receiptdate),
        Value::str(&l.shipmode),
        Value::str(&l.shipinstruct),
    ];
    vbep.extend(filler_vals(VBEP_FILL.0, VBEP_FILL.1));
    let mut konv_disc = vec![
        mandt_val(),
        key16(l.orderkey), // KNUMV
        key6(l.linenumber),
        Value::str("040"),
        Value::str("01"),
        Value::str("DISC"),
        Value::Decimal(permille(l.discount)),
        Value::Decimal(l.extendedprice),
    ];
    konv_disc.extend(filler_vals(KONV_FILL.0, KONV_FILL.1));
    let mut konv_tax = vec![
        mandt_val(),
        key16(l.orderkey),
        key6(l.linenumber),
        Value::str("050"),
        Value::str("01"),
        Value::str("TAX"),
        Value::Decimal(permille(l.tax)),
        Value::Decimal(l.extendedprice),
    ];
    konv_tax.extend(filler_vals(KONV_FILL.0, KONV_FILL.1));
    vec![
        ("VBAP", vbap),
        ("VBEP", vbep),
        ("KONV", konv_disc),
        ("KONV", konv_tax),
        (
            "STXL",
            vec![
                mandt_val(),
                Value::str("VBBP"),
                Value::Str(format!("{:016}{:06}", l.orderkey, l.linenumber)),
                Value::str("0001"),
                Value::str(&l.comment),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_has_all_17_tables() {
        for release in [Release::R22, Release::R30] {
            let d = build_dict(release);
            for t in SAP_TABLES {
                assert!(d.table(t).is_ok(), "{t} missing in {release:?}");
            }
        }
    }

    #[test]
    fn release_controls_konv_kind() {
        let d22 = build_dict(Release::R22);
        assert!(d22.table("KONV").unwrap().kind.is_encapsulated());
        assert!(matches!(d22.table("A004").unwrap().kind, TableKind::Pool { .. }));
        let d30 = build_dict(Release::R30);
        assert_eq!(d30.table("KONV").unwrap().kind, TableKind::Transparent);
        // A004 stays a pool table in both releases.
        assert!(d30.table("A004").unwrap().kind.is_encapsulated());
    }

    #[test]
    fn physical_ddl_parses_and_counts() {
        for release in [Release::R22, Release::R30] {
            let d = build_dict(release);
            let ddl = physical_ddl(&d);
            for stmt in &ddl {
                rdbms::sql::parse_statement(stmt)
                    .unwrap_or_else(|e| panic!("{release:?} DDL failed: {e}\n{stmt}"));
            }
        }
        // R22: 15 transparent tables + KAPOL + KOCLU containers.
        let d22 = build_dict(Release::R22);
        let creates = physical_ddl(&d22).iter().filter(|s| s.starts_with("CREATE TABLE")).count();
        assert_eq!(creates, 17, "15 transparent + 2 containers");
        // R30: 16 transparent + KAPOL.
        let d30 = build_dict(Release::R30);
        let creates30 = physical_ddl(&d30).iter().filter(|s| s.starts_with("CREATE TABLE")).count();
        assert_eq!(creates30, 17, "16 transparent + 1 container");
    }

    #[test]
    fn key_round_trip() {
        let k = key16(12345);
        assert_eq!(parse_key(&k), 12345);
        assert_eq!(parse_key(&key6(3)), 3);
        if let Value::Str(s) = &k {
            assert_eq!(s.len(), 16);
        }
    }

    #[test]
    fn permille_conversion() {
        let d = rdbms::types::Decimal::parse("0.05").unwrap();
        assert_eq!(permille(d).to_string(), "50");
        let t = rdbms::types::Decimal::parse("0.08").unwrap();
        assert_eq!(permille(t).to_string(), "80");
    }

    #[test]
    fn lineitem_produces_five_logical_rows() {
        let gen = tpcd::DbGen::new(0.001);
        let (_, lineitems) = gen.orders_and_lineitems();
        let rows = lineitem_rows(&lineitems[0]);
        assert_eq!(rows.len(), 5);
        let tables: Vec<&str> = rows.iter().map(|(t, _)| *t).collect();
        assert_eq!(tables, vec!["VBAP", "VBEP", "KONV", "KONV", "STXL"]);
        // Row shapes match the dictionary.
        let dict = build_dict(Release::R30);
        for (t, row) in &rows {
            let lt = dict.table(t).unwrap();
            assert_eq!(row.len(), lt.columns.len(), "{t} arity");
        }
    }

    #[test]
    fn all_record_mappings_match_dictionary() {
        let gen = tpcd::DbGen::new(0.001);
        let dict = build_dict(Release::R22);
        let mut all: Vec<LogicalRow> = Vec::new();
        all.extend(nation_rows(&gen.nations()[0]));
        all.extend(region_rows(&gen.regions()[0]));
        all.extend(part_rows(&gen.parts()[0]));
        all.extend(supplier_rows(&gen.suppliers()[0]));
        all.extend(partsupp_rows(&gen.partsupps()[0]));
        all.extend(customer_rows(&gen.customers()[0]));
        let (orders, lineitems) = gen.orders_and_lineitems();
        all.extend(order_rows(&orders[0]));
        all.extend(lineitem_rows(&lineitems[0]));
        for (t, row) in &all {
            let lt = dict.table(t).unwrap();
            assert_eq!(row.len(), lt.columns.len(), "{t} arity mismatch");
        }
    }
}
