//! The ABAP-style report runtime.
//!
//! Reports process database rows in the application server. This module
//! provides the constructs the paper's report listings use (Figures 3–5):
//!
//! * **internal tables** — materialized row collections ("it is not
//!   possible to define indexes on temporary tables", §2.3);
//! * **EXTRACT / SORT / LOOP … AT END OF** — SAP's grouping idiom, which
//!   (§4.2) "proceeds in two separate steps: first, sorting and writing
//!   the sorted result to secondary storage, and then re-reading the
//!   sorted table to perform the grouping" — so a SORT always charges
//!   spill I/O for a write *and* a read pass;
//! * an application-side aggregation helper used by every Open SQL report
//!   that cannot push its aggregates down.

use rdbms::clock::{CostMeter, Counter};
use rdbms::error::{DbError, DbResult};
use rdbms::exec::expr::{BExpr, ExecCtx};
use rdbms::schema::Row;
use rdbms::sql::ast::AggFunc;
use rdbms::storage::PAGE_SIZE;
use rdbms::types::{Decimal, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// An ABAP internal (temporary) table: plain materialized rows, no indexes.
#[derive(Debug, Default, Clone)]
pub struct InternalTable {
    pub rows: Vec<Row>,
}

impl InternalTable {
    pub fn new() -> Self {
        InternalTable { rows: Vec::new() }
    }

    /// APPEND.
    pub fn append(&mut self, meter: &CostMeter, row: Row) {
        meter.bump(Counter::AppTuples);
        self.rows.push(row);
    }

    /// READ TABLE ... WITH KEY — a *linear scan*: internal tables have no
    /// indexes, every probe walks the table (this is why materializing an
    /// inner relation app-side is still expensive).
    pub fn read_with_key(
        &self,
        meter: &CostMeter,
        key_cols: &[usize],
        key: &[Value],
    ) -> Option<&Row> {
        for row in &self.rows {
            meter.bump(Counter::AppTuples);
            if key_cols.iter().zip(key).all(|(&c, v)| row[c].group_eq(v)) {
                return Some(row);
            }
        }
        None
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate memory footprint (drives spill accounting).
    pub fn bytes(&self) -> usize {
        self.rows.iter().map(|r| r.iter().map(|v| v.storage_size()).sum::<usize>() + 16).sum()
    }
}

/// An EXTRACT dataset: (sort key, payload) lines accumulated by the report.
#[derive(Debug, Default)]
pub struct Extract {
    lines: Vec<(Vec<Value>, Row)>,
    sorted: bool,
}

impl Extract {
    pub fn new() -> Self {
        Extract::default()
    }

    /// EXTRACT: append one line under the current field-group values.
    pub fn extract(&mut self, meter: &CostMeter, key: Vec<Value>, data: Row) {
        meter.bump(Counter::AppTuples);
        self.lines.push((key, data));
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    fn bytes(&self) -> usize {
        self.lines
            .iter()
            .map(|(k, d)| {
                k.iter().map(|v| v.storage_size()).sum::<usize>()
                    + d.iter().map(|v| v.storage_size()).sum::<usize>()
                    + 16
            })
            .sum()
    }

    /// SORT: orders the dataset by its keys. Per §4.2 this writes the
    /// sorted result to secondary storage and re-reads it — two passes of
    /// spill I/O are charged regardless of size.
    pub fn sort(&mut self, meter: &CostMeter) {
        let pages = (self.bytes() / PAGE_SIZE).max(1) as u64;
        meter.add(Counter::AppSpillPages, 2 * pages); // write + re-read
        meter.add(Counter::AppTuples, self.lines.len() as u64);
        self.lines.sort_by(|(a, _), (b, _)| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.sorted = true;
    }

    /// LOOP ... AT END OF `<key>`: stream groups of equal keys through `f`.
    /// The dataset must have been sorted.
    pub fn loop_groups(
        &self,
        meter: &CostMeter,
        mut f: impl FnMut(&[Value], &[(Vec<Value>, Row)]) -> DbResult<()>,
    ) -> DbResult<()> {
        if !self.sorted && !self.lines.is_empty() {
            return Err(DbError::execution("LOOP over unsorted extract — SORT first"));
        }
        let mut start = 0usize;
        while start < self.lines.len() {
            let key = &self.lines[start].0;
            let mut end = start + 1;
            while end < self.lines.len()
                && self.lines[end].0.iter().zip(key.iter()).all(|(a, b)| a.total_cmp(b).is_eq())
            {
                end += 1;
            }
            meter.add(Counter::AppTuples, (end - start) as u64);
            f(key, &self.lines[start..end])?;
            start = end;
        }
        Ok(())
    }
}

/// Application-side aggregation spec: group columns by index plus
/// aggregates over arbitrary expressions of the input row (ABAP computes
/// the expression per line before extracting — this is how "complex
/// aggregations" are done when Open SQL cannot push them, §4.2).
#[derive(Clone)]
pub struct AppAgg {
    pub group_cols: Vec<usize>,
    pub aggs: Vec<(AggFunc, BExpr)>,
    /// Optional HAVING-style filter over the output row
    /// (group cols then agg results).
    pub having: Option<BExpr>,
}

/// Run an application-side aggregation over `rows` using the EXTRACT/SORT/
/// LOOP machinery (charging its spill), returning output rows of
/// group values followed by aggregate values.
pub fn app_aggregate(meter: &Arc<CostMeter>, rows: &[Row], agg: &AppAgg) -> DbResult<Vec<Row>> {
    let ctx = ExecCtx::new(&[], meter);
    let mut extract = Extract::new();
    for row in rows {
        let key: Vec<Value> = agg.group_cols.iter().map(|&i| row[i].clone()).collect();
        extract.extract(meter, key, row.clone());
    }
    extract.sort(meter);
    let mut out: Vec<Row> = Vec::new();
    extract.loop_groups(meter, |key, lines| {
        let mut result: Row = key.to_vec();
        for (func, expr) in &agg.aggs {
            let mut acc = AppAcc::new();
            for (_, row) in lines {
                let v = expr.eval(row, &ctx)?;
                acc.update(v)?;
            }
            result.push(acc.finish(*func)?);
        }
        if let Some(h) = &agg.having {
            if h.eval_bool(&result, &ctx)? != Some(true) {
                return Ok(());
            }
        }
        out.push(result);
        Ok(())
    })?;
    Ok(out)
}

/// Scalar (ungrouped) application-side aggregation.
pub fn app_aggregate_scalar(
    meter: &Arc<CostMeter>,
    rows: &[Row],
    aggs: &[(AggFunc, BExpr)],
) -> DbResult<Row> {
    let ctx = ExecCtx::new(&[], meter);
    let mut accs: Vec<AppAcc> = aggs.iter().map(|_| AppAcc::new()).collect();
    for row in rows {
        meter.bump(Counter::AppTuples);
        for ((_, expr), acc) in aggs.iter().zip(&mut accs) {
            acc.update(expr.eval(row, &ctx)?)?;
        }
    }
    aggs.iter().zip(&accs).map(|((f, _), acc)| acc.finish(*f)).collect()
}

/// Sort rows app-side by (column, desc) keys. Internal-table sorts also
/// spill per §4.2.
pub fn app_sort(meter: &CostMeter, rows: &mut [Row], keys: &[(usize, bool)]) {
    let bytes: usize =
        rows.iter().map(|r| r.iter().map(|v| v.storage_size()).sum::<usize>() + 16).sum();
    let pages = (bytes / PAGE_SIZE).max(1) as u64;
    meter.add(Counter::AppSpillPages, 2 * pages);
    meter.add(Counter::AppTuples, rows.len() as u64);
    rows.sort_by(|a, b| {
        for (i, desc) in keys {
            let ord = a[*i].total_cmp(&b[*i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// One aggregate accumulator.
struct AppAcc {
    count: u64,
    sum: Option<Value>,
    min: Option<Value>,
    max: Option<Value>,
}

impl AppAcc {
    fn new() -> Self {
        AppAcc { count: 0, sum: None, min: None, max: None }
    }

    fn update(&mut self, v: Value) -> DbResult<()> {
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        self.sum = Some(match self.sum.take() {
            None => v.clone(),
            Some(s) => {
                if s.type_name() == "STRING" {
                    s
                } else {
                    rdbms::exec::expr::arith(s, rdbms::sql::ast::BinOp::Add, v.clone())?
                }
            }
        });
        if self.min.as_ref().map(|m| v.total_cmp(m).is_lt()).unwrap_or(true) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().map(|m| v.total_cmp(m).is_gt()).unwrap_or(true) {
            self.max = Some(v);
        }
        Ok(())
    }

    fn finish(&self, func: AggFunc) -> DbResult<Value> {
        Ok(match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => self.sum.clone().unwrap_or(Value::Null),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => match &self.sum {
                None => Value::Null,
                Some(s) => {
                    Value::Decimal(s.as_decimal()?.div(Decimal::from_int(self.count as i64))?)
                }
            },
        })
    }
}

/// COUNT DISTINCT helper for app-side Q16-style logic.
pub fn app_count_distinct(meter: &CostMeter, values: impl Iterator<Item = Value>) -> i64 {
    let mut seen: HashMap<Value, ()> = HashMap::new();
    let mut n = 0i64;
    for v in values {
        meter.bump(Counter::AppTuples);
        if v.is_null() {
            continue;
        }
        if seen.insert(v, ()).is_none() {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> Arc<CostMeter> {
        CostMeter::new()
    }

    #[test]
    fn extract_sort_loop_groups() {
        let m = meter();
        let mut e = Extract::new();
        for (k, v) in [("B", 1), ("A", 2), ("B", 3), ("A", 4), ("C", 5)] {
            e.extract(&m, vec![Value::str(k)], vec![Value::Int(v)]);
        }
        e.sort(&m);
        let mut groups: Vec<(String, i64)> = Vec::new();
        e.loop_groups(&m, |key, lines| {
            let sum: i64 = lines.iter().map(|(_, r)| r[0].as_int().unwrap()).sum();
            groups.push((key[0].to_string(), sum));
            Ok(())
        })
        .unwrap();
        assert_eq!(groups, vec![("A".into(), 6), ("B".into(), 4), ("C".into(), 5)]);
        // Spill was charged (write + read passes).
        assert!(m.get(Counter::AppSpillPages) >= 2);
    }

    #[test]
    fn loop_requires_sort() {
        let m = meter();
        let mut e = Extract::new();
        e.extract(&m, vec![Value::Int(1)], vec![]);
        assert!(e.loop_groups(&m, |_, _| Ok(())).is_err());
    }

    #[test]
    fn app_aggregate_groups_and_aggregates() {
        let m = meter();
        let rows: Vec<Row> = vec![
            vec![Value::str("X"), Value::Int(10)],
            vec![Value::str("Y"), Value::Int(5)],
            vec![Value::str("X"), Value::Int(20)],
        ];
        let agg = AppAgg {
            group_cols: vec![0],
            aggs: vec![
                (AggFunc::Sum, BExpr::Column(1)),
                (AggFunc::Count, BExpr::Column(1)),
                (AggFunc::Avg, BExpr::Column(1)),
            ],
            having: None,
        };
        let out = app_aggregate(&m, &rows, &agg).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][0], Value::str("X"));
        assert_eq!(out[0][1], Value::Int(30));
        assert_eq!(out[0][2], Value::Int(2));
        assert_eq!(out[0][3].as_decimal().unwrap().to_f64(), 15.0);
    }

    #[test]
    fn app_aggregate_complex_expression() {
        // The §4.2 case: AVG(KAWRT * (1 + KBETR/1000)) app-side.
        let m = meter();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::decimal(10000, 2), Value::decimal(50, 0)],
            vec![Value::Int(1), Value::decimal(20000, 2), Value::decimal(100, 0)],
        ];
        use rdbms::sql::ast::BinOp;
        let charge = BExpr::Binary {
            left: BExpr::Column(1).boxed(),
            op: BinOp::Mul,
            right: BExpr::Binary {
                left: BExpr::Literal(Value::Int(1)).boxed(),
                op: BinOp::Add,
                right: BExpr::Binary {
                    left: BExpr::Column(2).boxed(),
                    op: BinOp::Div,
                    right: BExpr::Literal(Value::Int(1000)).boxed(),
                }
                .boxed(),
            }
            .boxed(),
        };
        let agg = AppAgg { group_cols: vec![0], aggs: vec![(AggFunc::Avg, charge)], having: None };
        let out = app_aggregate(&m, &rows, &agg).unwrap();
        assert_eq!(out.len(), 1);
        // (100*1.05 + 200*1.10)/2 = (105 + 220)/2 = 162.5
        assert!((out[0][1].as_decimal().unwrap().to_f64() - 162.5).abs() < 1e-9);
    }

    #[test]
    fn having_filters_groups() {
        let m = meter();
        let rows: Vec<Row> =
            vec![vec![Value::str("X"), Value::Int(10)], vec![Value::str("Y"), Value::Int(1)]];
        use rdbms::sql::ast::BinOp;
        let agg = AppAgg {
            group_cols: vec![0],
            aggs: vec![(AggFunc::Sum, BExpr::Column(1))],
            having: Some(BExpr::Binary {
                left: BExpr::Column(1).boxed(),
                op: BinOp::Gt,
                right: BExpr::Literal(Value::Int(5)).boxed(),
            }),
        };
        let out = app_aggregate(&m, &rows, &agg).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::str("X"));
    }

    #[test]
    fn internal_table_linear_probe() {
        let m = meter();
        let mut t = InternalTable::new();
        for i in 0..100 {
            t.append(&m, vec![Value::Int(i), Value::str(format!("v{i}"))]);
        }
        let before = m.get(Counter::AppTuples);
        let hit = t.read_with_key(&m, &[0], &[Value::Int(99)]).cloned();
        assert!(hit.is_some());
        // Linear scan: ~100 probes charged for the last entry.
        assert!(m.get(Counter::AppTuples) - before >= 99);
        assert!(t.read_with_key(&m, &[0], &[Value::Int(1000)]).is_none());
    }

    #[test]
    fn sort_rows_app_side() {
        let m = meter();
        let mut rows: Vec<Row> = vec![
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(3), Value::str("c")],
        ];
        app_sort(&m, &mut rows, &[(0, true)]);
        assert_eq!(rows[0][0], Value::Int(3));
        assert!(m.get(Counter::AppSpillPages) >= 2);
    }

    #[test]
    fn count_distinct() {
        let m = meter();
        let vals = vec![Value::Int(1), Value::Int(2), Value::Int(1), Value::Null];
        assert_eq!(app_count_distinct(&m, vals.into_iter()), 2);
    }
}
