//! ST05-style SQL trace.
//!
//! SAP's transaction ST05 records every statement the application server
//! sends across the RDBMS interface — the instrument the paper's authors
//! used to discover what Open SQL actually submits (§4.1's blind
//! parameterized plans, §2.3's per-document nested SELECT loops). This
//! module is that instrument for the simulator: when enabled on an
//! [`crate::R3System`], every interface crossing appends a
//! [`SqlTraceEntry`] carrying the statement text, bound parameters, rows
//! shipped, crossings charged, and the exact [`MeterSnapshot`] work delta
//! of the call (captured through a scratch [`MeterScope`], so concurrent
//! work on other threads does not pollute the attribution).
//!
//! Buffer hits are traced too, with zero crossings — making "buffer hit
//! vs. pass-through" directly visible — and the invariant that the traced
//! crossings sum to the meter's `ipc_crossings` counter is tested in
//! `tests/sqltrace_equivalence.rs`.

use rdbms::clock::{CostMeter, MeterScope, MeterSnapshot};
use rdbms::types::Value;
use serde_json::Json;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// What kind of interface call an entry records. OPEN/REOPEN/EXEC each
/// model one OPEN + FETCH-to-completion + CLOSE round trip (a single
/// crossing, matching the meter); REOPEN means the cursor cache supplied
/// the prepared plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOp {
    /// First execution of a parameterized statement: PREPARE + OPEN.
    Open,
    /// Cursor-cache hit: the statement re-executes with new bindings.
    Reopen,
    /// Native SQL / direct statement with literals inline.
    Exec,
    /// SELECT SINGLE satisfied by the application-server table buffer —
    /// no crossing reaches the RDBMS.
    BufferHit,
    /// Dictionary-mediated INSERT.
    Insert,
    /// Open SQL DELETE (or cluster-document delete).
    Delete,
    /// COMMIT WORK: the database commit at the end of a logical unit of
    /// work (group commit parks here until a log force covers it).
    Commit,
    /// Wire protocol: Parse message — statement text parsed, normalized,
    /// and planned (or fetched from the shared plan cache).
    Parse,
    /// Wire protocol: Bind message — host variables bound to a prepared
    /// statement, producing an executable portal.
    Bind,
}

impl SqlOp {
    pub fn label(self) -> &'static str {
        match self {
            SqlOp::Open => "OPEN",
            SqlOp::Reopen => "REOPEN",
            SqlOp::Exec => "EXEC",
            SqlOp::BufferHit => "BUFHIT",
            SqlOp::Insert => "INSERT",
            SqlOp::Delete => "DELETE",
            SqlOp::Commit => "COMMIT",
            SqlOp::Parse => "PARSE",
            SqlOp::Bind => "BIND",
        }
    }
}

/// One traced interface call.
#[derive(Debug, Clone)]
pub struct SqlTraceEntry {
    pub seq: u64,
    /// End-to-end request trace this crossing happened under (see
    /// `trace::request`); 0 when no request trace was active, so one
    /// request's crossings are retrievable by id via
    /// [`SqlTrace::entries_for`].
    pub trace_id: u64,
    pub op: SqlOp,
    /// Statement text as submitted (parameter markers for Open SQL,
    /// literals for Native SQL).
    pub statement: String,
    /// Bound parameter values, in order (empty for direct statements).
    pub params: Vec<Value>,
    /// Rows shipped to the application server (or affected, for DML).
    pub rows: u64,
    /// Interface crossings this call charged to the meter (0 for buffer
    /// hits).
    pub crossings: u64,
    /// Exact work delta of the call.
    pub work: MeterSnapshot,
}

impl SqlTraceEntry {
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("seq", self.seq)
            .field("trace_id", self.trace_id)
            .field("op", self.op.label())
            .field("statement", self.statement.clone())
            .field(
                "params",
                Json::Array(self.params.iter().map(|p| Json::from(p.to_string())).collect()),
            )
            .field("rows", self.rows)
            .field("crossings", self.crossings)
            .field("work", self.work.to_json())
    }
}

/// The trace facility. Lives on [`crate::R3System`]; disabled (and nearly
/// free) unless a caller enables it.
///
/// The buffer is a bounded ring: once `capacity` entries are held, each
/// new entry evicts the oldest and bumps [`SqlTrace::dropped`]. A
/// long-running traced workload therefore keeps the most recent window
/// (what ST05 shows) at a fixed memory ceiling instead of growing without
/// bound.
#[derive(Debug)]
pub struct SqlTrace {
    enabled: AtomicBool,
    next_seq: AtomicU64,
    capacity: usize,
    entries: Mutex<VecDeque<SqlTraceEntry>>,
    dropped: AtomicU64,
}

/// Default ring capacity — comfortably above the largest single-query
/// trace in the workspace (TPC-D Q3 on the R/3 schema records ~35k calls).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for SqlTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl SqlTrace {
    /// A trace whose ring holds at most `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SqlTrace {
            enabled: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted from the ring since the last [`SqlTrace::clear`]
    /// (drained entries do not count as dropped).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain the recorded entries (ordered by sequence number).
    pub fn take(&self) -> Vec<SqlTraceEntry> {
        let mut entries: Vec<SqlTraceEntry> =
            std::mem::take(&mut *self.entries.lock().unwrap()).into();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Non-draining view of the calls recorded under one request trace id
    /// (ordered by sequence number). This is "show me exactly what SQL
    /// that request submitted" — the ST05 workflow the paper's authors
    /// used, now joinable against M$TRACES.
    pub fn entries_for(&self, trace_id: u64) -> Vec<SqlTraceEntry> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<SqlTraceEntry> =
            entries.iter().filter(|e| e.trace_id == trace_id).cloned().collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Begin recording one interface call; `None` when tracing is off.
    /// The guard's scratch meter scope captures exactly the work performed
    /// on this thread until [`SqlTraceGuard::finish`].
    pub fn begin(&self) -> Option<SqlTraceGuard<'_>> {
        if !self.is_enabled() {
            return None;
        }
        let meter = CostMeter::new();
        let scope = MeterScope::enter(Arc::clone(&meter));
        Some(SqlTraceGuard { trace: self, meter, _scope: scope })
    }
}

/// In-flight recording of one traced call. Dropping it without
/// [`SqlTraceGuard::finish`] discards the entry (e.g. when the statement
/// errored).
pub struct SqlTraceGuard<'a> {
    trace: &'a SqlTrace,
    meter: Arc<CostMeter>,
    _scope: MeterScope,
}

impl SqlTraceGuard<'_> {
    pub fn finish(
        self,
        op: SqlOp,
        statement: impl Into<String>,
        params: &[Value],
        rows: u64,
        crossings: u64,
    ) {
        let work = self.meter.snapshot();
        let trace_id = trace::request::current_trace_id().unwrap_or(0);
        let seq = self.trace.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.trace.entries.lock().unwrap();
        if entries.len() == self.trace.capacity {
            entries.pop_front();
            self.trace.dropped.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(SqlTraceEntry {
            seq,
            trace_id,
            op,
            statement: statement.into(),
            params: params.to_vec(),
            rows,
            crossings,
            work,
        });
        // _scope pops here, ending the attribution window.
    }
}

/// Aggregate view of a trace (per report / per experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlTraceSummary {
    pub statements: u64,
    pub crossings: u64,
    pub rows: u64,
    pub buffer_hits: u64,
}

pub fn summarize(entries: &[SqlTraceEntry]) -> SqlTraceSummary {
    let mut s = SqlTraceSummary::default();
    for e in entries {
        s.statements += 1;
        s.crossings += e.crossings;
        s.rows += e.rows;
        if e.op == SqlOp::BufferHit {
            s.buffer_hits += 1;
        }
    }
    s
}

/// Render entries as an ST05-style list. `cal` converts each entry's work
/// delta into simulated milliseconds; `max_statement` truncates long SQL
/// and `max_entries` limits the listed calls (0 = no limit; the totals
/// line always covers every entry).
pub fn render(
    entries: &[SqlTraceEntry],
    cal: &rdbms::clock::Calibration,
    max_statement: usize,
    max_entries: usize,
) -> String {
    let shown = if max_entries > 0 { entries.len().min(max_entries) } else { entries.len() };
    let mut out = String::new();
    out.push_str("   # |       ms |     op | rows | x | statement\n");
    out.push_str("-----+----------+--------+------+---+----------------------------------------\n");
    for e in &entries[..shown] {
        let mut stmt = e.statement.replace('\n', " ");
        if max_statement > 0 && stmt.len() > max_statement {
            stmt.truncate(max_statement.saturating_sub(1));
            stmt.push('…');
        }
        if !e.params.is_empty() {
            let ps: Vec<String> = e.params.iter().map(|p| format!("'{p}'")).collect();
            stmt.push_str(&format!("  [{}]", ps.join(", ")));
        }
        out.push_str(&format!(
            "{:>4} | {:>8.3} | {:>6} | {:>4} | {} | {}\n",
            e.seq,
            cal.millis(&e.work),
            e.op.label(),
            e.rows,
            e.crossings,
            stmt,
        ));
    }
    if shown < entries.len() {
        out.push_str(&format!("   … ({} more calls not listed)\n", entries.len() - shown));
    }
    let s = summarize(entries);
    out.push_str(&format!(
        "total: {} statements, {} crossings, {} rows shipped, {} buffer hits\n",
        s.statements, s.crossings, s.rows, s.buffer_hits,
    ));
    out
}

/// JSON export: summary totals over *all* entries plus the first
/// `max_entries` entries in full (0 = all; `entries_truncated` records how
/// many were dropped).
pub fn to_json(
    entries: &[SqlTraceEntry],
    cal: &rdbms::clock::Calibration,
    max_entries: usize,
) -> Json {
    let shown = if max_entries > 0 { entries.len().min(max_entries) } else { entries.len() };
    let s = summarize(entries);
    let mut ms = 0.0;
    for e in entries {
        ms += cal.millis(&e.work);
    }
    Json::object()
        .field("statements", s.statements)
        .field("crossings", s.crossings)
        .field("rows_shipped", s.rows)
        .field("buffer_hits", s.buffer_hits)
        .field("traced_ms", ms)
        .field("entries_truncated", (entries.len() - shown) as u64)
        .field(
            "entries",
            Json::Array(entries[..shown].iter().map(SqlTraceEntry::to_json).collect()),
        )
}

impl fmt::Display for SqlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_entries_and_counts_drops() {
        let trace = SqlTrace::with_capacity(4);
        trace.enable();
        for i in 0..10 {
            trace.begin().unwrap().finish(SqlOp::Exec, format!("S{i}"), &[], 0, 1);
        }
        assert_eq!(trace.dropped(), 6);
        let entries = trace.take();
        let stmts: Vec<&str> = entries.iter().map(|e| e.statement.as_str()).collect();
        assert_eq!(stmts, vec!["S6", "S7", "S8", "S9"]);
        // Draining is not dropping; clear resets the counter.
        assert_eq!(trace.dropped(), 6);
        trace.clear();
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn entries_carry_the_active_trace_id_and_are_retrievable_by_it() {
        let ring = trace::request::TraceRing::new(8);
        let st05 = SqlTrace::with_capacity(16);
        st05.enable();
        // Outside any request: crossings tag trace_id 0.
        st05.begin().unwrap().finish(SqlOp::Exec, "S-untraced", &[], 0, 1);
        let ctx = ring.begin("test", "first");
        let first_id = ctx.trace_id();
        {
            let _guard = ctx.install();
            st05.begin().unwrap().finish(SqlOp::Open, "S-first-a", &[], 1, 1);
            st05.begin().unwrap().finish(SqlOp::Reopen, "S-first-b", &[], 1, 1);
        }
        let ctx = ring.begin("test", "second");
        let second_id = ctx.trace_id();
        {
            let _guard = ctx.install();
            st05.begin().unwrap().finish(SqlOp::Commit, "S-second", &[], 0, 1);
        }
        let first: Vec<String> =
            st05.entries_for(first_id).iter().map(|e| e.statement.clone()).collect();
        assert_eq!(first, vec!["S-first-a", "S-first-b"]);
        assert_eq!(st05.entries_for(second_id).len(), 1);
        assert_eq!(st05.entries_for(0).len(), 1, "untraced crossing under id 0");
        // entries_for does not drain: the full ring is still there.
        assert_eq!(st05.take().len(), 4);
        // And the JSON export carries the id for offline correlation.
        st05.begin().unwrap().finish(SqlOp::Exec, "S-json", &[], 0, 1);
        let json = to_json(&st05.take(), &rdbms::clock::Calibration::default(), 0);
        assert!(serde_json::to_string(&json).unwrap().contains("\"trace_id\""));
    }

    #[test]
    fn default_capacity_is_large_and_ring_is_inert_below_it() {
        let trace = SqlTrace::default();
        assert_eq!(trace.capacity(), DEFAULT_TRACE_CAPACITY);
        trace.enable();
        for i in 0..100 {
            trace.begin().unwrap().finish(SqlOp::Open, format!("S{i}"), &[], 1, 1);
        }
        assert_eq!(trace.dropped(), 0);
        assert_eq!(trace.take().len(), 100);
    }
}
