//! The SAP R/3 dispatcher and work-process pool.
//!
//! In the paper's three-tier architecture (Figure 1) every application
//! server runs one **dispatcher** that queues incoming requests and hands
//! them to a fixed pool of **work processes**: dialog work processes serve
//! interactive steps, batch work processes run background jobs (the batch
//! input sessions of §2.4 and the update stream of the throughput test).
//! A request that arrives while every suitable work process is busy waits
//! in the dispatcher queue — that queue wait is a real, measured component
//! of R/3 response time, so it is reported per request here.
//!
//! Work processes are real OS threads sharing one [`R3System`] (database,
//! table buffer, cursor cache). Per-request work attribution uses
//! [`MeterScope`]: everything a job meters lands both on the system-wide
//! meter and on the request's own meter.

use crate::R3System;
use parking_lot::{Condvar, Mutex};
use rdbms::clock::{Calibration, CostMeter, MeterScope, MeterSnapshot, WaitEvent};
use rdbms::{DbError, DbResult, RequestCtx};
use serde_json::Json;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trace::Histogram;

/// Work-process type, which doubles as the request class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WpKind {
    Dialog,
    Batch,
}

impl std::fmt::Display for WpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WpKind::Dialog => write!(f, "DIA"),
            WpKind::Batch => write!(f, "BTC"),
        }
    }
}

/// Pool sizing. R/3 installations of the era ran a handful of dialog work
/// processes and one or two batch work processes per application server.
#[derive(Debug, Clone, Copy)]
pub struct DispatcherConfig {
    pub dialog_processes: usize,
    pub batch_processes: usize,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig { dialog_processes: 2, batch_processes: 1 }
    }
}

type Job = Box<dyn FnOnce(&R3System) -> DbResult<()> + Send + 'static>;

struct Request {
    name: String,
    kind: WpKind,
    job: Job,
    enqueued: Instant,
    /// Trace context minted at submission (queue entry), carried across
    /// the thread boundary and installed by the serving work process.
    trace: Option<RequestCtx>,
    handle: Arc<HandleState>,
}

/// Completed-request report: where the time went and what work was done.
#[derive(Debug, Clone)]
pub struct RequestStats {
    pub name: String,
    pub kind: WpKind,
    /// Which work process served the request ("DIA-0", "BTC-1", ...).
    pub worker: String,
    /// End-to-end trace id for M$TRACES / M$SPANS / ST05 correlation
    /// (0 when the database monitor was disabled at submission).
    pub trace_id: u64,
    /// Time spent in the dispatcher queue before a work process picked
    /// the request up.
    pub queue_wait: Duration,
    /// Wall time inside the work process.
    pub service: Duration,
    /// Metered work attributed to this request (database I/O, tuples,
    /// interface crossings, lock waits, ...).
    pub work: MeterSnapshot,
    pub result: Result<(), DbError>,
}

impl RequestStats {
    /// Simulated seconds of database-side work for this request.
    pub fn db_seconds(&self, cal: &Calibration) -> f64 {
        cal.seconds(&self.work)
    }
}

/// Latency distributions for one work-process class, in wall-clock
/// microseconds. Atomic throughout: work processes record concurrently
/// without coordination.
#[derive(Debug, Default)]
pub struct WpMetrics {
    /// Time requests spent in the dispatcher queue.
    pub queue_wait_us: Histogram,
    /// Time requests spent inside a work process.
    pub service_us: Histogram,
}

impl WpMetrics {
    fn record(&self, stats: &RequestStats) {
        self.queue_wait_us.record(stats.queue_wait.as_micros() as u64);
        self.service_us.record(stats.service.as_micros() as u64);
    }

    pub fn to_json(&self) -> Json {
        Json::object()
            .field("queue_wait", self.queue_wait_us.to_json("us"))
            .field("service", self.service_us.to_json("us"))
    }
}

/// Per-class latency histograms for the whole dispatcher.
#[derive(Debug, Default)]
pub struct DispatcherMetrics {
    pub dialog: WpMetrics,
    pub batch: WpMetrics,
}

impl DispatcherMetrics {
    pub fn for_kind(&self, kind: WpKind) -> &WpMetrics {
        match kind {
            WpKind::Dialog => &self.dialog,
            WpKind::Batch => &self.batch,
        }
    }

    pub fn to_json(&self) -> Json {
        Json::object().field("dialog", self.dialog.to_json()).field("batch", self.batch.to_json())
    }
}

struct HandleState {
    done: Mutex<Option<RequestStats>>,
    cv: Condvar,
}

/// Ticket for a submitted request; `wait` blocks until a work process has
/// finished it and returns the stats.
pub struct RequestHandle {
    state: Arc<HandleState>,
}

impl RequestHandle {
    pub fn wait(self) -> RequestStats {
        let mut done = self.state.done.lock();
        loop {
            if let Some(stats) = done.take() {
                return stats;
            }
            self.state.cv.wait(&mut done);
        }
    }
}

struct Queues {
    dialog: VecDeque<Request>,
    batch: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    sys: Arc<R3System>,
    queues: Mutex<Queues>,
    enqueued: Condvar,
    metrics: Arc<DispatcherMetrics>,
}

/// Dispatcher + work-process pool. Dropping it drains the queues and joins
/// the worker threads.
pub struct Dispatcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    pub fn start(sys: Arc<R3System>, config: DispatcherConfig) -> Dispatcher {
        let shared = Arc::new(Shared {
            sys,
            queues: Mutex::new(Queues {
                dialog: VecDeque::new(),
                batch: VecDeque::new(),
                shutdown: false,
            }),
            enqueued: Condvar::new(),
            metrics: Arc::new(DispatcherMetrics::default()),
        });
        let mut workers = Vec::new();
        for (kind, count) in
            [(WpKind::Dialog, config.dialog_processes), (WpKind::Batch, config.batch_processes)]
        {
            for i in 0..count {
                let shared = Arc::clone(&shared);
                let name = format!("{kind}-{i}");
                workers.push(
                    std::thread::Builder::new()
                        .name(name.clone())
                        .spawn(move || work_process(shared, kind, name))
                        .expect("spawn work process"),
                );
            }
        }
        Dispatcher { shared, workers }
    }

    /// Queue a request for the given work-process class.
    pub fn submit(
        &self,
        kind: WpKind,
        name: impl Into<String>,
        job: impl FnOnce(&R3System) -> DbResult<()> + Send + 'static,
    ) -> RequestHandle {
        let handle = Arc::new(HandleState { done: Mutex::new(None), cv: Condvar::new() });
        let name = name.into();
        // Mint the trace at queue entry so the dispatcher wait is inside
        // the request's end-to-end window; the work process installs it.
        let origin = match kind {
            WpKind::Dialog => "r3/dialog",
            WpKind::Batch => "r3/batch",
        };
        let trace = self.shared.sys.db.begin_request(origin, &name);
        let request = Request {
            name,
            kind,
            job: Box::new(job),
            enqueued: Instant::now(),
            trace,
            handle: Arc::clone(&handle),
        };
        {
            let mut q = self.shared.queues.lock();
            assert!(!q.shutdown, "submit after shutdown");
            match kind {
                WpKind::Dialog => q.dialog.push_back(request),
                WpKind::Batch => q.batch.push_back(request),
            }
        }
        self.shared.enqueued.notify_all();
        RequestHandle { state: handle }
    }

    /// Latency histograms recorded so far (shared with the live work
    /// processes; safe to read while requests are still being served).
    pub fn metrics(&self) -> Arc<DispatcherMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Number of requests currently waiting in the queues.
    pub fn queued(&self) -> usize {
        let q = self.shared.queues.lock();
        q.dialog.len() + q.batch.len()
    }

    /// Drain the queues and stop every work process.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queues.lock();
            if q.shutdown {
                return;
            }
            q.shutdown = true;
        }
        self.shared.enqueued.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn work_process(shared: Arc<Shared>, kind: WpKind, worker_name: String) {
    loop {
        let request = {
            let mut q = shared.queues.lock();
            loop {
                let next = match kind {
                    WpKind::Dialog => q.dialog.pop_front(),
                    WpKind::Batch => q.batch.pop_front(),
                };
                if let Some(r) = next {
                    break r;
                }
                if q.shutdown {
                    return;
                }
                shared.enqueued.wait(&mut q);
            }
        };
        let mut request = request;
        // Install the trace context before recording the queue wait so the
        // DispatchQueue interval (and every wait below the job) attaches
        // to this request's trace.
        let trace_id = request.trace.as_ref().map(RequestCtx::trace_id).unwrap_or(0);
        let traced = request.trace.take().map(RequestCtx::install);
        let queue_wait = request.enqueued.elapsed();
        // Queue time is a real wait the paper measures; surface it in
        // M$WAIT_EVENTS alongside the engine's own block points.
        shared.sys.db.wait_stats().record(WaitEvent::DispatchQueue, queue_wait);
        let meter = CostMeter::new();
        let started = Instant::now();
        let result = {
            let _scope = MeterScope::enter(Arc::clone(&meter));
            // A panicking job must not take the work process down with it:
            // report it as a failed request and keep serving.
            match catch_unwind(AssertUnwindSafe(|| (request.job)(&shared.sys))) {
                Ok(r) => r,
                Err(_) => Err(DbError::execution(format!(
                    "work process {worker_name} aborted request {}: job panicked",
                    request.name
                ))),
            }
        };
        // End of the traced window: the finished trace lands in M$TRACES
        // before the submitter is woken, so a caller holding the stats can
        // immediately look its trace_id up.
        drop(traced);
        let stats = RequestStats {
            name: request.name,
            kind: request.kind,
            worker: worker_name.clone(),
            trace_id,
            queue_wait,
            service: started.elapsed(),
            work: meter.snapshot(),
            result,
        };
        shared.metrics.for_kind(stats.kind).record(&stats);
        shared.sys.workload.record(&stats, &shared.sys.calibration());
        *request.handle.done.lock() = Some(stats);
        request.handle.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Release;

    #[test]
    fn r3_system_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<R3System>();
        assert_send_sync::<Dispatcher>();
    }

    #[test]
    fn dialog_and_batch_requests_complete_with_stats() {
        let sys = Arc::new(R3System::install_default(Release::R30).unwrap());
        sys.db.execute("CREATE TABLE z (a INTEGER)").unwrap();
        sys.db.execute("INSERT INTO z VALUES (1), (2), (3)").unwrap();
        let dispatcher = Dispatcher::start(
            Arc::clone(&sys),
            DispatcherConfig { dialog_processes: 2, batch_processes: 1 },
        );
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let kind = if i % 4 == 0 { WpKind::Batch } else { WpKind::Dialog };
                dispatcher.submit(kind, format!("req-{i}"), move |sys| {
                    let r = sys.db_select_prepared(
                        "SELECT COUNT(*) FROM z WHERE a > ?",
                        &[rdbms::Value::Int(0)],
                    )?;
                    assert_eq!(r.scalar()?.as_int()?, 3);
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            let stats = h.wait();
            assert!(stats.result.is_ok(), "{:?}", stats.result);
            assert!(stats.work.ipc_crossings() > 0, "request work was metered");
            match stats.kind {
                WpKind::Dialog => assert!(stats.worker.starts_with("DIA-")),
                WpKind::Batch => assert!(stats.worker.starts_with("BTC-")),
            }
        }
        let metrics = dispatcher.metrics();
        assert_eq!(metrics.dialog.service_us.count(), 6);
        assert_eq!(metrics.batch.service_us.count(), 2);
        assert_eq!(metrics.dialog.queue_wait_us.count(), 6);
        assert!(metrics.dialog.service_us.p50() <= metrics.dialog.service_us.max());
        dispatcher.shutdown();
    }

    #[test]
    fn workload_rollup_is_queryable_as_m_workload() {
        let sys = Arc::new(R3System::install_default(Release::R30).unwrap());
        sys.db.execute("CREATE TABLE z (a INTEGER)").unwrap();
        sys.db.execute("INSERT INTO z VALUES (1)").unwrap();
        let dispatcher = Dispatcher::start(
            Arc::clone(&sys),
            DispatcherConfig { dialog_processes: 2, batch_processes: 1 },
        );
        let handles: Vec<_> = (0..6)
            .map(|i| {
                dispatcher.submit(WpKind::Dialog, format!("order-{i}"), |sys| {
                    sys.db_query_direct("SELECT COUNT(*) FROM z")?;
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            assert!(h.wait().result.is_ok());
        }
        // The instance suffix is stripped: six requests, one ST03 line.
        let rows = sys
            .db_query_direct(
                "SELECT TASK_TYPE, WP_TYPE, STEPS, SERVICE_US FROM M$WORKLOAD \
                 WHERE TASK_TYPE = 'order'",
            )
            .unwrap();
        assert_eq!(rows.rows.len(), 1, "{rows:?}");
        assert_eq!(rows.rows[0][1], rdbms::Value::str("DIA"));
        assert_eq!(rows.rows[0][2], rdbms::Value::Int(6));
        // Every pickup recorded its dispatcher-queue wait.
        let snap = sys.db.wait_stats().snapshot();
        assert!(snap.count(WaitEvent::DispatchQueue) >= 6);
        dispatcher.shutdown();
    }

    #[test]
    fn requests_carry_trace_context_across_the_pool() {
        let sys = Arc::new(R3System::install_default(Release::R30).unwrap());
        sys.db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        sys.db.execute("INSERT INTO t VALUES (1)").unwrap();
        let dispatcher = Dispatcher::start(
            Arc::clone(&sys),
            DispatcherConfig { dialog_processes: 1, batch_processes: 0 },
        );
        // One worker: the second request must sit in the dispatcher queue
        // while the first sleeps, making its queue wait trace-visible.
        let slow = dispatcher.submit(WpKind::Dialog, "slow", |_| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        });
        let queued = dispatcher.submit(WpKind::Dialog, "queued", |sys| {
            sys.db_query_direct("SELECT COUNT(*) FROM t")?;
            Ok(())
        });
        let slow_stats = slow.wait();
        let queued_stats = queued.wait();
        assert_ne!(queued_stats.trace_id, 0, "monitor on => request minted a trace");
        assert_ne!(slow_stats.trace_id, queued_stats.trace_id);
        // The finished trace is in the ring before wait() returns.
        let t = sys
            .db
            .trace_ring()
            .get(queued_stats.trace_id)
            .expect("completed trace landed in M$TRACES ring");
        assert_eq!(t.origin, "r3/dialog");
        assert_eq!(t.label, "queued");
        // Queue time was recorded while the trace was installed...
        assert!(
            t.waits.iter().any(|w| w.event == WaitEvent::DispatchQueue),
            "dispatcher-queue wait attached to the trace: {:?}",
            t.waits
        );
        // ...and the critical path still partitions end-to-end exactly.
        let p = t.critical_path();
        assert_eq!(p.sum_us(), t.end_to_end_us());
        assert!(p.segment(WaitEvent::DispatchQueue) > 0, "{p:?}");
        dispatcher.shutdown();
    }

    #[test]
    fn monitor_off_requests_are_untraced() {
        let sys = Arc::new(R3System::install_default(Release::R30).unwrap());
        sys.db.set_monitor_enabled(false);
        let dispatcher = Dispatcher::start(
            Arc::clone(&sys),
            DispatcherConfig { dialog_processes: 1, batch_processes: 0 },
        );
        let stats = dispatcher.submit(WpKind::Dialog, "dark", |_| Ok(())).wait();
        assert_eq!(stats.trace_id, 0);
        assert_eq!(sys.db.trace_ring().completed(), 0);
        dispatcher.shutdown();
    }

    #[test]
    fn panicking_job_fails_request_but_not_the_pool() {
        let sys = Arc::new(R3System::install_default(Release::R30).unwrap());
        let dispatcher = Dispatcher::start(
            Arc::clone(&sys),
            DispatcherConfig { dialog_processes: 1, batch_processes: 0 },
        );
        let bad = dispatcher.submit(WpKind::Dialog, "bad", |_| panic!("boom"));
        let good = dispatcher.submit(WpKind::Dialog, "good", |_| Ok(()));
        assert!(bad.wait().result.is_err());
        assert!(good.wait().result.is_ok(), "pool survived the panic");
    }
}
