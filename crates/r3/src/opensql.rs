//! The Open SQL interface (paper §2.3).
//!
//! Open SQL is the portable, dictionary-mediated way ABAP reports access
//! the database. Its defining properties, all implemented here:
//!
//! * the client predicate (`MANDT = '301'`) is injected automatically from
//!   the application context — reports never write it;
//! * statements are translated into **parameterized** SQL and executed
//!   through cached cursors, so the RDBMS optimizer never sees the
//!   constants (§4.1 — this is what produces the blind plans of Table 6);
//! * pool and cluster tables are decoded through the dictionary in the
//!   application server; only their key prefix can be pushed down;
//! * Release 2.2: single-table statements only (joins need predefined join
//!   views over transparent tables along key/foreign-key paths); no
//!   grouping or aggregation;
//! * Release 3.0: inner joins of transparent tables push down, and
//!   *simple* aggregations (a bare column, never an arithmetic
//!   expression) push down too.

use crate::dict::{decode_cluster_rows, decode_row_data, TableKind};
use crate::schema::MANDT;
use crate::sqltrace::SqlOp;
use crate::system::{pool_varkey, R3System};
use crate::Release;
use rdbms::clock::Counter;
use rdbms::error::{DbError, DbResult};
use rdbms::exec::expr::like_match;
use rdbms::schema::{Column, Row, Schema};
use rdbms::sql::ast::AggFunc;
use rdbms::types::Value;
use rdbms::QueryResult;
use std::cmp::Ordering;

/// Comparison operators available in Open SQL WHERE clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Like,
}

impl CmpOp {
    fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Like => "LIKE",
        }
    }

    /// Evaluate the comparison on two values (application-side filtering).
    pub fn eval_pub(&self, lhs: &Value, rhs: &Value) -> bool {
        self.eval(lhs, rhs)
    }

    fn eval(&self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Like => match (lhs, rhs) {
                (Value::Str(s), Value::Str(p)) => like_match(s.trim_end(), p),
                _ => false,
            },
            _ => match lhs.sql_cmp(rhs) {
                None => false,
                Some(ord) => match self {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                    CmpOp::Like => unreachable!(),
                },
            },
        }
    }
}

/// One conjunctive WHERE condition. `field` may be qualified
/// (`VBAP.KWMENG`) inside joins.
#[derive(Debug, Clone)]
pub struct Cond {
    pub field: String,
    pub op: CmpOp,
    pub value: Value,
}

impl Cond {
    pub fn new(field: &str, op: CmpOp, value: Value) -> Self {
        Cond { field: field.to_ascii_uppercase(), op, value }
    }

    pub fn eq(field: &str, value: Value) -> Self {
        Cond::new(field, CmpOp::Eq, value)
    }
}

/// A base table reference with an optional alias (aliases let a join use
/// the same table twice, e.g. KONV for discount and tax conditions).
#[derive(Debug, Clone)]
pub struct BaseRef {
    pub name: String,
    pub alias: Option<String>,
}

impl BaseRef {
    pub fn new(name: &str) -> Self {
        BaseRef { name: name.to_ascii_uppercase(), alias: None }
    }

    pub fn aliased(name: &str, alias: &str) -> Self {
        BaseRef { name: name.to_ascii_uppercase(), alias: Some(alias.to_ascii_uppercase()) }
    }

    /// The name used to qualify fields of this reference.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }

    fn render(&self) -> String {
        match &self.alias {
            Some(a) => format!("{} {a}", self.name),
            None => self.name.clone(),
        }
    }
}

/// FROM clause: a table, or (Release 3.0) a left-deep chain of inner joins.
#[derive(Debug, Clone)]
pub enum TableExpr {
    Table(BaseRef),
    Join {
        left: Box<TableExpr>,
        table: BaseRef,
        /// Equality pairs `left_field = right_field` (qualified names).
        on: Vec<(String, String)>,
    },
}

impl TableExpr {
    pub fn table(name: &str) -> Self {
        TableExpr::Table(BaseRef::new(name))
    }

    pub fn table_as(name: &str, alias: &str) -> Self {
        TableExpr::Table(BaseRef::aliased(name, alias))
    }

    pub fn join(self, table: &str, on: &[(&str, &str)]) -> Self {
        self.join_ref(BaseRef::new(table), on)
    }

    pub fn join_as(self, table: &str, alias: &str, on: &[(&str, &str)]) -> Self {
        self.join_ref(BaseRef::aliased(table, alias), on)
    }

    fn join_ref(self, table: BaseRef, on: &[(&str, &str)]) -> Self {
        TableExpr::Join {
            left: Box::new(self),
            table,
            on: on.iter().map(|(a, b)| (a.to_ascii_uppercase(), b.to_ascii_uppercase())).collect(),
        }
    }

    /// Underlying table names (for dictionary/encapsulation checks).
    pub fn tables(&self) -> Vec<String> {
        match self {
            TableExpr::Table(t) => vec![t.name.clone()],
            TableExpr::Join { left, table, .. } => {
                let mut v = left.tables();
                v.push(table.name.clone());
                v
            }
        }
    }

    /// Binding names (alias or table name) in join order.
    pub fn bindings(&self) -> Vec<String> {
        match self {
            TableExpr::Table(t) => vec![t.binding().to_string()],
            TableExpr::Join { left, table, .. } => {
                let mut v = left.bindings();
                v.push(table.binding().to_string());
                v
            }
        }
    }
}

/// An Open SQL SELECT.
#[derive(Debug, Clone)]
pub struct SelectSpec {
    pub from: TableExpr,
    /// Output fields (qualified inside joins); empty = all fields.
    pub fields: Vec<String>,
    pub conds: Vec<Cond>,
    /// Release 3.0 only.
    pub group_by: Vec<String>,
    /// Release 3.0 only: simple aggregates — a bare column or COUNT(*).
    /// Arithmetic expressions are *not expressible* (paper §2.3/§4.2).
    pub aggs: Vec<(AggFunc, Option<String>)>,
    pub order_by: Vec<(String, bool)>,
    /// SELECT SINGLE: at most one row, full-key predicates expected.
    pub single: bool,
    /// UP TO n ROWS.
    pub up_to: Option<u64>,
}

impl SelectSpec {
    pub fn from_table(name: &str) -> Self {
        SelectSpec {
            from: TableExpr::table(name),
            fields: Vec::new(),
            conds: Vec::new(),
            group_by: Vec::new(),
            aggs: Vec::new(),
            order_by: Vec::new(),
            single: false,
            up_to: None,
        }
    }

    pub fn from_expr(from: TableExpr) -> Self {
        SelectSpec { from, ..SelectSpec::from_table("X") }
    }

    pub fn fields(mut self, fields: &[&str]) -> Self {
        self.fields = fields.iter().map(|f| f.to_ascii_uppercase()).collect();
        self
    }

    pub fn cond(mut self, c: Cond) -> Self {
        self.conds.push(c);
        self
    }

    pub fn group(mut self, cols: &[&str]) -> Self {
        self.group_by = cols.iter().map(|c| c.to_ascii_uppercase()).collect();
        self
    }

    pub fn agg(mut self, func: AggFunc, col: Option<&str>) -> Self {
        self.aggs.push((func, col.map(|c| c.to_ascii_uppercase())));
        self
    }

    pub fn order(mut self, cols: &[(&str, bool)]) -> Self {
        self.order_by = cols.iter().map(|(c, d)| (c.to_ascii_uppercase(), *d)).collect();
        self
    }

    pub fn single(mut self) -> Self {
        self.single = true;
        self
    }

    pub fn up_to(mut self, n: u64) -> Self {
        self.up_to = Some(n);
        self
    }
}

impl R3System {
    /// Execute an Open SQL SELECT.
    pub fn open_select(&self, spec: &SelectSpec) -> DbResult<QueryResult> {
        // Feature gating.
        let tables = spec.from.tables();
        let multi = tables.len() > 1;
        if multi && self.release == Release::R22 {
            return Err(DbError::analysis(
                "Open SQL joins require Release 3.0 (use a join view or nested SELECTs)",
            ));
        }
        if (!spec.aggs.is_empty() || !spec.group_by.is_empty()) && self.release == Release::R22 {
            return Err(DbError::analysis(
                "Open SQL aggregation requires Release 3.0 (aggregate in the report)",
            ));
        }
        // Encapsulated tables: single-table, dictionary-decoded access only.
        let mut encapsulated = false;
        for t in &tables {
            // A name that is not in the dictionary may be a join view
            // (registered in the RDBMS only).
            if let Ok(lt) = self.dict.table(t) {
                if lt.kind.is_encapsulated() {
                    encapsulated = true;
                }
            }
        }
        if encapsulated {
            if multi {
                return Err(DbError::analysis(
                    "pool/cluster tables cannot participate in Open SQL joins",
                ));
            }
            if !spec.aggs.is_empty() || !spec.group_by.is_empty() {
                return Err(DbError::analysis(
                    "aggregates cannot be applied to pool/cluster tables",
                ));
            }
            return self.select_encapsulated(&tables[0], spec);
        }
        // SELECT SINGLE on a buffered table: try the application buffer.
        if spec.single && !multi {
            if let Some(result) = self.buffered_single(&tables[0], spec)? {
                return Ok(result);
            }
        }
        // Transparent path: translate to parameterized SQL.
        let (sql, params) = self.translate(spec, &tables)?;
        let mut result = self.db_select_prepared(&sql, &params)?;
        // Install into the buffer if applicable.
        if spec.single && !multi && self.buffer.is_buffered(&tables[0]) && spec.fields.is_empty() {
            if let Some(key) = self.single_key(&tables[0], spec)? {
                self.buffer.put(&tables[0], &key, result.rows.first().cloned());
            }
        }
        if spec.single {
            result.rows.truncate(1);
        }
        Ok(result)
    }

    /// Open SQL INSERT (dictionary-mediated write).
    pub fn open_insert(&self, table: &str, row: &[Value]) -> DbResult<()> {
        let traced = self.sql_trace.begin();
        self.meter().bump(Counter::IpcCrossings);
        self.insert_logical(table, row)?;
        if let Some(t) = traced {
            t.finish(SqlOp::Insert, format!("INSERT {table}"), &[], 1, 1);
        }
        // Invalidate any buffered copy.
        if self.buffer.is_buffered(table) {
            if let Ok(lt) = self.dict.table(table) {
                let key = pool_varkey(&lt, row);
                self.buffer.invalidate(table, &key);
            }
        }
        Ok(())
    }

    /// Open SQL DELETE by key conditions.
    pub fn open_delete(&self, table: &str, conds: &[Cond]) -> DbResult<u64> {
        let lt = self.dict.table(table)?;
        if lt.kind.is_encapsulated() {
            // Cluster delete by document key.
            if let Some(c) = conds.iter().find(|c| c.op == CmpOp::Eq) {
                let traced = self.sql_trace.begin();
                self.meter().bump(Counter::IpcCrossings);
                let n = self.delete_cluster_document(table, &c.value)?;
                if let Some(t) = traced {
                    t.finish(
                        SqlOp::Delete,
                        format!("DELETE {table} (cluster document)"),
                        std::slice::from_ref(&c.value),
                        n,
                        1,
                    );
                }
                return Ok(n);
            }
            return Err(DbError::analysis("encapsulated delete needs a key condition"));
        }
        let mut sql = format!("DELETE FROM {} WHERE MANDT = '{MANDT}'", lt.name);
        for c in conds {
            sql.push_str(&format!(" AND {} {} {}", c.field, c.op.sql(), literal(&c.value)));
        }
        let traced = self.sql_trace.begin();
        self.meter().bump(Counter::IpcCrossings);
        let n = self.db.execute(&sql)?.count()?;
        if let Some(t) = traced {
            t.finish(SqlOp::Delete, sql, &[], n, 1);
        }
        Ok(n)
    }

    // ------------------------------------------------------------------

    /// Build the parameterized SQL translation of an Open SQL statement.
    /// Public for tests that inspect the blind-plan mechanism.
    pub fn translate(
        &self,
        spec: &SelectSpec,
        tables: &[String],
    ) -> DbResult<(String, Vec<Value>)> {
        let mut params: Vec<Value> = Vec::new();
        let mut sql = String::from("SELECT ");
        let multi = tables.len() > 1;
        // Projection.
        let mut parts: Vec<String> = Vec::new();
        if spec.aggs.is_empty() {
            if spec.fields.is_empty() {
                if multi {
                    return Err(DbError::analysis("join SELECT requires an explicit field list"));
                }
                parts.push("*".into());
            } else {
                parts.extend(spec.fields.iter().cloned());
            }
        } else {
            parts.extend(spec.group_by.iter().cloned());
            for (f, col) in &spec.aggs {
                match col {
                    None => parts.push("COUNT(*)".into()),
                    Some(c) => parts.push(format!("{f}({c})")),
                }
            }
        }
        sql.push_str(&parts.join(", "));
        // FROM.
        sql.push_str(" FROM ");
        match &spec.from {
            TableExpr::Table(t) => sql.push_str(&t.render()),
            TableExpr::Join { .. } => {
                sql.push_str(&render_join(&spec.from)?);
            }
        }
        // WHERE: automatic client injection, then the conditions.
        let bindings = spec.from.bindings();
        let mandt_field =
            if multi { format!("{}.MANDT", bindings[0]) } else { "MANDT".to_string() };
        sql.push_str(&format!(" WHERE {mandt_field} = ?"));
        params.push(Value::str(MANDT));
        for b in bindings.iter().skip(1) {
            sql.push_str(&format!(" AND {b}.MANDT = {mandt_field}"));
        }
        for c in &spec.conds {
            sql.push_str(&format!(" AND {} {} ?", c.field, c.op.sql()));
            params.push(c.value.clone());
        }
        if !spec.group_by.is_empty() {
            sql.push_str(" GROUP BY ");
            sql.push_str(&spec.group_by.join(", "));
        }
        if !spec.order_by.is_empty() {
            sql.push_str(" ORDER BY ");
            let keys: Vec<String> = spec
                .order_by
                .iter()
                .map(|(c, desc)| format!("{c}{}", if *desc { " DESC" } else { "" }))
                .collect();
            sql.push_str(&keys.join(", "));
        }
        if spec.single {
            sql.push_str(" LIMIT 1");
        } else if let Some(n) = spec.up_to {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        Ok((sql, params))
    }

    /// Key string of a SELECT SINGLE if its conditions cover the full key.
    fn single_key(&self, table: &str, spec: &SelectSpec) -> DbResult<Option<String>> {
        let lt = self.dict.table(table)?;
        let mut key = String::new();
        for col in &lt.key_columns()[1..] {
            match spec.conds.iter().find(|c| c.op == CmpOp::Eq && c.field == col.name) {
                Some(c) => {
                    key.push_str(&c.value.to_string());
                    key.push('\u{1}');
                }
                None => return Ok(None),
            }
        }
        Ok(Some(key))
    }

    /// Probe the table buffer for a SELECT SINGLE; `None` = not buffered /
    /// not a full-key probe / miss.
    fn buffered_single(&self, table: &str, spec: &SelectSpec) -> DbResult<Option<QueryResult>> {
        if !self.buffer.is_buffered(table) || !spec.fields.is_empty() {
            return Ok(None);
        }
        let Some(key) = self.single_key(table, spec)? else {
            return Ok(None);
        };
        let traced = self.sql_trace.begin();
        match self.buffer.get(table, &key) {
            Some(cached) => {
                let lt = self.dict.table(table)?;
                let schema = Schema::qualified(lt.columns.clone(), table);
                let rows = match cached {
                    Some(r) => vec![r],
                    None => vec![],
                };
                if let Some(t) = traced {
                    // Served from the application-server buffer: zero
                    // crossings reach the RDBMS.
                    let params: Vec<Value> = spec.conds.iter().map(|c| c.value.clone()).collect();
                    t.finish(
                        SqlOp::BufferHit,
                        format!("SELECT SINGLE * FROM {table}"),
                        &params,
                        rows.len() as u64,
                        0,
                    );
                }
                Ok(Some(QueryResult { schema, rows }))
            }
            None => Ok(None),
        }
    }

    /// Dictionary-decoded read of a pool or cluster table.
    fn select_encapsulated(&self, table: &str, spec: &SelectSpec) -> DbResult<QueryResult> {
        let lt = self.dict.table(table)?;
        let mut rows: Vec<Row> = Vec::new();
        match &lt.kind {
            TableKind::Pool { container } => {
                // Push the key prefix if every key field has an Eq cond.
                let full_key: Option<Vec<Value>> = lt.key_columns()[1..]
                    .iter()
                    .map(|col| {
                        spec.conds
                            .iter()
                            .find(|c| c.op == CmpOp::Eq && c.field == col.name)
                            .map(|c| c.value.clone())
                    })
                    .collect();
                let result = match full_key {
                    Some(vals) => {
                        let mut probe = vec![Value::str(MANDT)];
                        probe.extend(vals);
                        let varkey = pool_varkey(&lt, &probe_row(&lt, &probe));
                        self.db_select_prepared(
                            &format!(
                                "SELECT VARKEY, VARDATA FROM {container} \
                                 WHERE MANDT = ? AND TABNAME = ? AND VARKEY = ?"
                            ),
                            &[Value::str(MANDT), Value::str(&lt.name), Value::Str(varkey)],
                        )?
                    }
                    None => self.db_select_prepared(
                        &format!(
                            "SELECT VARKEY, VARDATA FROM {container} \
                             WHERE MANDT = ? AND TABNAME = ?"
                        ),
                        &[Value::str(MANDT), Value::str(&lt.name)],
                    )?,
                };
                for prow in &result.rows {
                    self.meter().bump(Counter::AppTuples); // dictionary decode
                    let varkey = prow[0].as_str()?;
                    let data = decode_row_data(prow[1].as_str()?, lt.data_columns())?;
                    let mut row = decode_pool_key(&lt, varkey)?;
                    row.extend(data);
                    rows.push(row);
                }
            }
            TableKind::Cluster { container, cluster_key_len } => {
                let key_col = &lt.columns[1].name;
                let key_cond = spec.conds.iter().find(|c| c.op == CmpOp::Eq && c.field == *key_col);
                let result = match key_cond {
                    Some(c) => self.db_select_prepared(
                        &format!(
                            "SELECT {key_col}, VARDATA FROM {container} \
                             WHERE MANDT = ? AND {key_col} = ?"
                        ),
                        &[Value::str(MANDT), c.value.clone()],
                    )?,
                    None => self.db_select_prepared(
                        &format!("SELECT {key_col}, VARDATA FROM {container} WHERE MANDT = ?"),
                        &[Value::str(MANDT)],
                    )?,
                };
                for prow in &result.rows {
                    let decoded =
                        decode_cluster_rows(prow[1].as_str()?, lt.data_cluster_columns())?;
                    for data in decoded {
                        self.meter().bump(Counter::AppTuples); // decode per logical row
                        let mut row: Row = Vec::with_capacity(lt.columns.len());
                        row.push(Value::str(MANDT));
                        row.push(prow[0].clone());
                        row.extend(data);
                        debug_assert_eq!(row.len(), lt.columns.len());
                        let _ = cluster_key_len;
                        rows.push(row);
                    }
                }
            }
            TableKind::Transparent => unreachable!("checked by caller"),
        }
        // Residual predicate evaluation in the application server.
        let schema = Schema::qualified(lt.columns.clone(), table);
        let mut filtered: Vec<Row> = Vec::new();
        'rows: for row in rows {
            for c in &spec.conds {
                let idx = lt.column_index(&c.field)?;
                self.meter().bump(Counter::AppTuples);
                if !c.op.eval(&row[idx], &c.value) {
                    continue 'rows;
                }
            }
            filtered.push(row);
        }
        // Projection.
        let (schema, mut out_rows) = if spec.fields.is_empty() {
            (schema, filtered)
        } else {
            let idxs: Vec<usize> =
                spec.fields.iter().map(|f| lt.column_index(f)).collect::<DbResult<_>>()?;
            let cols: Vec<Column> = idxs.iter().map(|&i| lt.columns[i].clone()).collect();
            let rows = filtered
                .into_iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect();
            (Schema::qualified(cols, table), rows)
        };
        // Ordering / limits app-side.
        if !spec.order_by.is_empty() {
            let key_idx: Vec<(usize, bool)> = spec
                .order_by
                .iter()
                .map(|(f, d)| schema.resolve(None, f).map(|i| (i, *d)))
                .collect::<DbResult<_>>()?;
            out_rows.sort_by(|a, b| {
                for (i, desc) in &key_idx {
                    let ord = a[*i].total_cmp(&b[*i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        if spec.single {
            out_rows.truncate(1);
        } else if let Some(n) = spec.up_to {
            out_rows.truncate(n as usize);
        }
        Ok(QueryResult { schema, rows: out_rows })
    }
}

/// Render a join tree as SQL (Release 3.0 push-down).
fn render_join(expr: &TableExpr) -> DbResult<String> {
    match expr {
        TableExpr::Table(t) => Ok(t.render()),
        TableExpr::Join { left, table, on } => {
            let l = render_join(left)?;
            if on.is_empty() {
                return Err(DbError::analysis("Open SQL join requires ON conditions"));
            }
            let conds: Vec<String> = on.iter().map(|(a, b)| format!("{a} = {b}")).collect();
            Ok(format!("{l} JOIN {} ON {}", table.render(), conds.join(" AND ")))
        }
    }
}

/// Reconstruct the key values of a pool row from its VARKEY.
fn decode_pool_key(lt: &crate::dict::LogicalTable, varkey: &str) -> DbResult<Row> {
    let mut row: Row = vec![Value::str(MANDT)];
    let mut off = 0usize;
    for col in &lt.key_columns()[1..] {
        let w = col.ty.fixed_width().ok_or_else(|| {
            DbError::storage(format!("pool key field {} must be fixed width", col.name))
        })?;
        if off + w > varkey.len() {
            return Err(DbError::storage("pool VARKEY too short"));
        }
        row.push(Value::Str(varkey[off..off + w].to_string()));
        off += w;
    }
    Ok(row)
}

/// A full-width dummy row carrying only the key values (for varkey
/// computation from a key probe).
fn probe_row(lt: &crate::dict::LogicalTable, key_vals: &[Value]) -> Row {
    let mut row: Row = key_vals.to_vec();
    row.resize(lt.columns.len(), Value::Null);
    row
}

/// Render a value as a SQL literal (Native-style DML helpers).
pub fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Int(i) => i.to_string(),
        Value::Decimal(d) => d.to_string(),
        Value::Str(s) => format!("'{}'", crate::system::sql_quote(s)),
        Value::Date(d) => format!("DATE '{d}'"),
        Value::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::key16;
    use tpcd::DbGen;

    fn sys(release: Release) -> R3System {
        let sys = R3System::install_default(release).unwrap();
        sys.load_tpcd(&DbGen::new(0.001)).unwrap();
        sys
    }

    #[test]
    fn single_table_select_injects_mandt_and_params() {
        let s = sys(Release::R22);
        let spec = SelectSpec::from_table("KNA1")
            .fields(&["KUNNR", "NAME1"])
            .cond(Cond::eq("KUNNR", key16(1)));
        let (sql, params) = s.translate(&spec, &spec.from.tables()).unwrap();
        assert!(sql.contains("MANDT = ?"), "{sql}");
        assert!(sql.contains("KUNNR = ?"), "{sql}");
        assert_eq!(params.len(), 2);
        let r = s.open_select(&spec).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn r22_rejects_joins_and_aggregates() {
        let s = sys(Release::R22);
        let join = SelectSpec::from_expr(
            TableExpr::table("VBAP").join("VBEP", &[("VBAP.VBELN", "VBEP.VBELN")]),
        )
        .fields(&["VBAP.NETWR"]);
        assert!(s.open_select(&join).is_err());
        let agg = SelectSpec::from_table("VBAP").agg(AggFunc::Sum, Some("NETWR"));
        assert!(s.open_select(&agg).is_err());
    }

    #[test]
    fn r30_pushes_joins_and_simple_aggregates() {
        let s = sys(Release::R30);
        let spec = SelectSpec::from_expr(
            TableExpr::table("VBAP")
                .join("VBEP", &[("VBAP.VBELN", "VBEP.VBELN"), ("VBAP.POSNR", "VBEP.POSNR")]),
        )
        .fields(&["VBAP.NETWR", "VBEP.EDATU"]);
        let r = s.open_select(&spec).unwrap();
        let vbap: i64 =
            s.db.query("SELECT COUNT(*) FROM VBAP").unwrap().scalar().unwrap().as_int().unwrap();
        assert_eq!(r.rows.len(), vbap as usize);

        let agg = SelectSpec::from_table("VBAP")
            .group(&["RFLAG"])
            .agg(AggFunc::Sum, Some("KWMENG"))
            .agg(AggFunc::Count, None);
        let r = s.open_select(&agg).unwrap();
        assert!(r.rows.len() >= 2 && r.rows.len() <= 3, "R/A/N flags: {}", r.rows.len());
    }

    #[test]
    fn cluster_table_reads_through_dictionary() {
        let s = sys(Release::R22);
        // Keyed read: one document.
        let spec = SelectSpec::from_table("KONV")
            .cond(Cond::eq("KNUMV", key16(1)))
            .cond(Cond::eq("KSCHL", Value::str("DISC")));
        let r = s.open_select(&spec).unwrap();
        assert!(!r.rows.is_empty());
        let kschl = r.schema.resolve(None, "KSCHL").unwrap();
        assert!(r.rows.iter().all(|row| row[kschl] == Value::str("DISC")));
        // The same logical rows are visible in R30's transparent KONV.
        let s30 = sys(Release::R30);
        let spec30 = SelectSpec::from_table("KONV")
            .cond(Cond::eq("KNUMV", key16(1)))
            .cond(Cond::eq("KSCHL", Value::str("DISC")));
        let r30 = s30.open_select(&spec30).unwrap();
        assert_eq!(r.rows.len(), r30.rows.len());
    }

    #[test]
    fn pool_table_reads() {
        let s = sys(Release::R22);
        let spec = SelectSpec::from_table("A004")
            .cond(Cond::eq("KAPPL", Value::str("V")))
            .cond(Cond::eq("KSCHL", Value::str("PR00")))
            .cond(Cond::eq("MATNR", key16(1)));
        let r = s.open_select(&spec).unwrap();
        assert_eq!(r.rows.len(), 1);
        let knumh = r.schema.resolve(None, "KNUMH").unwrap();
        assert_eq!(r.rows[0][knumh], key16(1));
    }

    #[test]
    fn encapsulated_rejects_joins_and_aggs() {
        let s = sys(Release::R30);
        let spec = SelectSpec::from_table("A004").agg(AggFunc::Count, None);
        assert!(s.open_select(&spec).is_err());
        let join = SelectSpec::from_expr(
            TableExpr::table("A004").join("KONP", &[("A004.KNUMH", "KONP.KNUMH")]),
        )
        .fields(&["KONP.KBETR"]);
        assert!(s.open_select(&join).is_err());
    }

    #[test]
    fn select_single_uses_buffer() {
        let s = sys(Release::R30);
        s.buffer.set_capacity_bytes(1 << 20);
        s.buffer.enable("MARA");
        let spec = SelectSpec::from_table("MARA").cond(Cond::eq("MATNR", key16(1))).single();
        s.meter().reset();
        let r1 = s.open_select(&spec).unwrap();
        assert_eq!(r1.rows.len(), 1);
        let after_first = s.snapshot();
        assert_eq!(after_first.ipc_crossings(), 1, "miss goes to the database");
        let r2 = s.open_select(&spec).unwrap();
        assert_eq!(r2.rows.len(), 1);
        let after_second = s.snapshot();
        assert_eq!(after_second.ipc_crossings(), 1, "hit stays in the app server");
        assert_eq!(after_second.cache_hits(), 1);
        assert_eq!(r1.rows[0], r2.rows[0]);
    }

    #[test]
    fn open_sql_plans_are_blind() {
        let s = sys(Release::R30);
        // Range predicate on the quantity field (the Table 6 experiment):
        // the Open SQL translation is parameterized, so the engine picks
        // the plan without seeing the constant.
        s.db.execute("CREATE INDEX VBAP_KWMENG ON VBAP (KWMENG)").unwrap();
        let spec = SelectSpec::from_table("VBAP").fields(&["KWMENG"]).cond(Cond::new(
            "KWMENG",
            CmpOp::Lt,
            Value::Int(9999),
        ));
        let (sql, _) = s.translate(&spec, &spec.from.tables()).unwrap();
        let _ = s.open_select(&spec).unwrap();
        let plan = s.cached_plan_description(&sql).unwrap();
        assert!(plan.contains("IndexScan"), "blind plan must pick the index: {plan}");
    }

    #[test]
    fn open_delete_and_insert() {
        let s = sys(Release::R22);
        let before: i64 =
            s.db.query("SELECT COUNT(*) FROM KNA1").unwrap().scalar().unwrap().as_int().unwrap();
        let gen = DbGen::new(0.001);
        let mut c = gen.customers()[0].clone();
        c.custkey = 99_999;
        for (t, row) in crate::schema::customer_rows(&c) {
            s.open_insert(t, &row).unwrap();
        }
        let mid: i64 =
            s.db.query("SELECT COUNT(*) FROM KNA1").unwrap().scalar().unwrap().as_int().unwrap();
        assert_eq!(mid, before + 1);
        let n = s.open_delete("KNA1", &[Cond::eq("KUNNR", key16(99_999))]).unwrap();
        assert_eq!(n, 1);
    }
}
