//! The R/3 system: application server + data dictionary + back-end RDBMS.
//!
//! Every call from the application server into the RDBMS goes through the
//! metered helpers here, charging interface crossings and shipped tuples —
//! the costs that drive the paper's Native-vs-Open-vs-isolated comparisons.

use crate::buffer::TableBuffer;
use crate::dict::{
    decode_cluster_rows, encode_cluster_rows, encode_row_data, DataDict, LogicalTable, TableKind,
};
use crate::schema::{build_dict, physical_ddl, MANDT};
use crate::sqltrace::{SqlOp, SqlTrace};
use crate::workload::WorkloadMonitor;
use crate::Release;
use parking_lot::Mutex;
use rdbms::clock::{Calibration, CostMeter, Counter, MeterSnapshot};
use rdbms::error::{DbError, DbResult};
use rdbms::schema::Row;
use rdbms::types::Value;
use rdbms::{Database, DbConfig, Prepared, QueryResult};
use std::collections::HashMap;
use std::sync::Arc;
use tpcd::DbGen;

/// Escape a string for inclusion in a SQL literal.
pub fn sql_quote(s: &str) -> String {
    s.replace('\'', "''")
}

/// The running system.
pub struct R3System {
    pub release: Release,
    pub db: Database,
    pub dict: DataDict,
    pub buffer: TableBuffer,
    /// Cursor cache: Open SQL statement text -> prepared plan (§2.3).
    cursor_cache: Mutex<HashMap<String, Arc<Prepared>>>,
    /// Number-range allocation lock (SAP serializes NRIV intervals).
    pub(crate) number_range_lock: Mutex<()>,
    /// ST05-style SQL trace; disabled unless a caller enables it.
    pub sql_trace: SqlTrace,
    /// ST03-style workload roll-up, published as `M$WORKLOAD`.
    pub workload: Arc<WorkloadMonitor>,
}

impl R3System {
    /// Install R/3: build the dictionary for the release and create the
    /// physical schema on a fresh database.
    pub fn install(release: Release, config: DbConfig) -> DbResult<Self> {
        let db = Database::new(config);
        let dict = build_dict(release);
        for stmt in physical_ddl(&dict) {
            db.execute(&stmt)?;
        }
        let buffer = TableBuffer::new(Arc::clone(db.meter()));
        let workload = WorkloadMonitor::new();
        db.catalog().register_monitor_view(workload.view());
        Ok(R3System {
            release,
            db,
            dict,
            buffer,
            cursor_cache: Mutex::new(HashMap::new()),
            number_range_lock: Mutex::new(()),
            sql_trace: SqlTrace::default(),
            workload,
        })
    }

    pub fn install_default(release: Release) -> DbResult<Self> {
        Self::install(release, DbConfig::default())
    }

    pub fn meter(&self) -> &Arc<CostMeter> {
        self.db.meter()
    }

    pub fn calibration(&self) -> Calibration {
        self.db.calibration()
    }

    pub fn snapshot(&self) -> MeterSnapshot {
        self.db.meter().snapshot()
    }

    // ------------------------------------------------------------------
    // Metered database interface
    // ------------------------------------------------------------------

    /// One prepared round trip (the Open SQL path: parameterized text,
    /// cursor-cached plan).
    pub fn db_select_prepared(&self, sql: &str, params: &[Value]) -> DbResult<QueryResult> {
        let (prepared, reopen) = {
            let mut cache = self.cursor_cache.lock();
            match cache.get(sql) {
                Some(p) => (Arc::clone(p), true),
                None => {
                    let p = Arc::new(self.db.prepare(sql)?);
                    cache.insert(sql.to_string(), Arc::clone(&p));
                    (p, false)
                }
            }
        };
        let traced = self.sql_trace.begin();
        self.meter().bump(Counter::IpcCrossings);
        let result = self.db.execute_prepared(&prepared, params)?;
        self.meter().add(Counter::IpcTuples, result.rows.len() as u64);
        if let Some(t) = traced {
            let op = if reopen { SqlOp::Reopen } else { SqlOp::Open };
            t.finish(op, sql, params, result.rows.len() as u64, 1);
        }
        Ok(result)
    }

    /// The prepared plan for a statement (for tests asserting blindness).
    pub fn cached_plan_description(&self, sql: &str) -> Option<String> {
        self.cursor_cache.lock().get(sql).map(|p| p.plan_description.clone())
    }

    /// One direct round trip with literals visible (the Native SQL path).
    pub fn db_execute_direct(&self, sql: &str) -> DbResult<rdbms::ExecOutcome> {
        let traced = self.sql_trace.begin();
        self.meter().bump(Counter::IpcCrossings);
        let out = self.db.execute(sql)?;
        let rows = match &out {
            rdbms::ExecOutcome::Rows(r) => {
                self.meter().add(Counter::IpcTuples, r.rows.len() as u64);
                r.rows.len() as u64
            }
            rdbms::ExecOutcome::Count(n) => *n,
            _ => 0,
        };
        if let Some(t) = traced {
            t.finish(SqlOp::Exec, sql, &[], rows, 1);
        }
        Ok(out)
    }

    pub fn db_query_direct(&self, sql: &str) -> DbResult<QueryResult> {
        self.db_execute_direct(sql)?.rows()
    }

    /// COMMIT WORK: the durability point at the end of a logical unit of
    /// work (one batch-input document). Everything the work process wrote
    /// is made durable per the database's [`rdbms::CommitPolicy`] — under
    /// group commit the calling work process parks here until a shared log
    /// force covers it — and the commit round trip is traced as one
    /// interface crossing. No-op when the database runs without a WAL.
    pub fn commit_work(&self) -> DbResult<()> {
        let Some(wal) = self.db.wal() else {
            return Ok(());
        };
        let traced = self.sql_trace.begin();
        self.meter().bump(Counter::IpcCrossings);
        wal.commit_appended()?;
        if let Some(t) = traced {
            t.finish(SqlOp::Commit, "COMMIT WORK", &[], 0, 1);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Logical-table writes through the dictionary
    // ------------------------------------------------------------------

    /// Insert one logical row (dictionary-mediated; handles pool and
    /// cluster encoding). Used by batch input and the direct loader.
    pub fn insert_logical(&self, table: &str, row: &[Value]) -> DbResult<()> {
        let lt = self.dict.table(table)?;
        if row.len() != lt.columns.len() {
            return Err(DbError::execution(format!(
                "{table}: row has {} fields, dictionary says {}",
                row.len(),
                lt.columns.len()
            )));
        }
        match &lt.kind {
            TableKind::Transparent => self.db.insert_row(&lt.name, row),
            TableKind::Pool { container } => {
                let varkey = pool_varkey(&lt, row);
                let vardata = encode_row_data(&row[lt.key_len..]);
                self.db.insert_row(
                    container,
                    &[
                        Value::str(MANDT),
                        Value::str(&lt.name),
                        Value::Str(varkey),
                        Value::Str(vardata),
                    ],
                )
            }
            TableKind::Cluster { .. } => {
                self.insert_cluster_rows(&lt, std::slice::from_ref(&row.to_vec()))
            }
        }
    }

    /// Insert a batch of logical rows of a *cluster* table that share the
    /// same cluster key (one business document), bundling them into the
    /// physical container row. Appends to an existing blob if present.
    pub fn insert_cluster_rows(&self, lt: &LogicalTable, rows: &[Row]) -> DbResult<()> {
        let TableKind::Cluster { container, cluster_key_len } = &lt.kind else {
            return Err(DbError::execution(format!("{} is not a cluster table", lt.name)));
        };
        if rows.is_empty() {
            return Ok(());
        }
        let key = &rows[0][..*cluster_key_len];
        if rows.iter().any(|r| &r[..*cluster_key_len] != key) {
            return Err(DbError::execution("cluster batch insert requires a single cluster key"));
        }
        let data_rows: Vec<Row> = rows.iter().map(|r| r[*cluster_key_len..].to_vec()).collect();
        let key_col = &lt.columns[1].name; // after MANDT
        let key_lit = sql_quote(key[1].as_str()?);
        // Read-modify-write of the container row.
        let existing = self.db.query(&format!(
            "SELECT VARDATA FROM {container} WHERE MANDT = '{MANDT}' AND {key_col} = '{key_lit}'"
        ))?;
        if existing.rows.is_empty() {
            let blob = encode_cluster_rows(&data_rows);
            self.db.insert_row(
                container,
                &[key[0].clone(), key[1].clone(), Value::Int(0), Value::Str(blob)],
            )?;
        } else {
            let old = existing.rows[0][0].as_str()?.to_string();
            let mut all = decode_cluster_rows(&old, lt.data_cluster_columns())?;
            all.extend(data_rows);
            let blob = encode_cluster_rows(&all);
            self.db.execute(&format!(
                "UPDATE {container} SET VARDATA = '{}' WHERE MANDT = '{MANDT}' AND {key_col} = '{key_lit}'",
                sql_quote(&blob)
            ))?;
        }
        Ok(())
    }

    /// Delete all cluster rows for one cluster key (document).
    pub fn delete_cluster_document(&self, table: &str, key: &Value) -> DbResult<u64> {
        let lt = self.dict.table(table)?;
        let TableKind::Cluster { container, .. } = &lt.kind else {
            return Err(DbError::execution(format!("{table} is not a cluster table")));
        };
        let key_col = &lt.columns[1].name;
        self.db
            .execute(&format!(
                "DELETE FROM {container} WHERE MANDT = '{MANDT}' AND {key_col} = '{}'",
                sql_quote(key.as_str()?)
            ))?
            .count()
    }

    // ------------------------------------------------------------------
    // Direct (experiment-setup) loader
    // ------------------------------------------------------------------

    /// Load the whole TPC-D population into the SAP schema via the
    /// database path — used to set up experiments. The *measured* loading
    /// experiment (paper Table 3) goes through `batch_input` instead.
    pub fn load_tpcd(&self, gen: &DbGen) -> DbResult<()> {
        use crate::schema as s;
        for n in gen.nations() {
            for (t, row) in s::nation_rows(&n) {
                self.insert_logical(t, &row)?;
            }
        }
        for r in gen.regions() {
            for (t, row) in s::region_rows(&r) {
                self.insert_logical(t, &row)?;
            }
        }
        for p in gen.parts() {
            for (t, row) in s::part_rows(&p) {
                self.insert_logical(t, &row)?;
            }
        }
        for su in gen.suppliers() {
            for (t, row) in s::supplier_rows(&su) {
                self.insert_logical(t, &row)?;
            }
        }
        for ps in gen.partsupps() {
            for (t, row) in s::partsupp_rows(&ps) {
                self.insert_logical(t, &row)?;
            }
        }
        for c in gen.customers() {
            for (t, row) in s::customer_rows(&c) {
                self.insert_logical(t, &row)?;
            }
        }
        let (orders, lineitems) = gen.orders_and_lineitems();
        let konv = self.dict.table("KONV")?;
        let mut li_idx = 0usize;
        for o in &orders {
            for (t, row) in s::order_rows(o) {
                self.insert_logical(t, &row)?;
            }
            // This order's lineitems (generated contiguously).
            let mut konv_rows: Vec<Row> = Vec::new();
            while li_idx < lineitems.len() && lineitems[li_idx].orderkey == o.orderkey {
                for (t, row) in s::lineitem_rows(&lineitems[li_idx]) {
                    if t == "KONV" && konv.kind.is_encapsulated() {
                        konv_rows.push(row);
                    } else {
                        self.insert_logical(t, &row)?;
                    }
                }
                li_idx += 1;
            }
            if !konv_rows.is_empty() {
                self.insert_cluster_rows(&konv, &konv_rows)?;
            }
        }
        self.db.execute("ANALYZE")?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Size accounting (Table 2)
    // ------------------------------------------------------------------

    /// (data bytes, index bytes) of the physical storage behind a logical
    /// table. Pool/cluster tables report their container's share.
    pub fn logical_table_sizes(&self, table: &str) -> DbResult<(u64, u64)> {
        let lt = self.dict.table(table)?;
        let physical = match &lt.kind {
            TableKind::Transparent => lt.name.clone(),
            TableKind::Pool { container } | TableKind::Cluster { container, .. } => {
                container.clone()
            }
        };
        let t = self.db.catalog().table(&physical)?;
        Ok(self.db.catalog().table_sizes(&t))
    }
}

/// The pool container VARKEY: the key fields beyond MANDT, each padded to
/// its declared CHAR width and concatenated.
pub fn pool_varkey(lt: &LogicalTable, row: &[Value]) -> String {
    let mut out = String::new();
    for (col, v) in lt.columns[1..lt.key_len].iter().zip(&row[1..lt.key_len]) {
        let s = match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        };
        let width = col.ty.fixed_width().unwrap_or(s.len());
        out.push_str(&format!("{s:<width$}"));
    }
    out
}

impl LogicalTable {
    /// The columns stored inside a cluster blob (everything after the
    /// cluster key prefix).
    pub fn data_cluster_columns(&self) -> &[rdbms::schema::Column] {
        match &self.kind {
            TableKind::Cluster { cluster_key_len, .. } => &self.columns[*cluster_key_len..],
            _ => &self.columns[..],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_creates_physical_schema() {
        let sys = R3System::install_default(Release::R22).unwrap();
        // Transparent tables exist; KONV does not (it is clustered).
        assert!(sys.db.catalog().table("VBAP").is_ok());
        assert!(sys.db.catalog().table("KOCLU").is_ok());
        assert!(sys.db.catalog().table("KAPOL").is_ok());
        assert!(sys.db.catalog().table("KONV").is_err());
        let sys30 = R3System::install_default(Release::R30).unwrap();
        assert!(sys30.db.catalog().table("KONV").is_ok());
        assert!(sys30.db.catalog().table("KOCLU").is_err());
    }

    #[test]
    fn load_small_tpcd_both_releases() {
        for release in [Release::R22, Release::R30] {
            let sys = R3System::install_default(release).unwrap();
            let gen = DbGen::new(0.001);
            sys.load_tpcd(&gen).unwrap();
            let vbap: i64 = sys
                .db
                .query("SELECT COUNT(*) FROM VBAP")
                .unwrap()
                .scalar()
                .unwrap()
                .as_int()
                .unwrap();
            let (_, lineitems) = gen.orders_and_lineitems();
            assert_eq!(vbap, lineitems.len() as i64, "{release:?}");
            // KONV rows: 2 per lineitem (transparent) or bundled (cluster).
            match release {
                Release::R30 => {
                    let konv: i64 = sys
                        .db
                        .query("SELECT COUNT(*) FROM KONV")
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_int()
                        .unwrap();
                    assert_eq!(konv, 2 * lineitems.len() as i64);
                }
                Release::R22 => {
                    let (orders, _) = gen.orders_and_lineitems();
                    let koclu: i64 = sys
                        .db
                        .query("SELECT COUNT(*) FROM KOCLU")
                        .unwrap()
                        .scalar()
                        .unwrap()
                        .as_int()
                        .unwrap();
                    assert_eq!(koclu, orders.len() as i64, "one blob per order");
                }
            }
        }
    }

    #[test]
    fn cluster_rmw_append() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let konv = sys.dict.table("KONV").unwrap();
        let mk_row = |stunr: &str| {
            let mut r = vec![
                Value::str(MANDT),
                crate::schema::key16(1),
                crate::schema::key6(1),
                Value::str(stunr),
                Value::str("01"),
                Value::str("DISC"),
                Value::decimal(50, 0),
                Value::decimal(10000, 2),
            ];
            // Pad with defaults up to the dictionary's arity (KONV carries
            // configurable filler fields).
            while r.len() < konv.columns.len() {
                r.push(Value::str("X       "));
            }
            r
        };
        sys.insert_cluster_rows(&konv, &[mk_row("040")]).unwrap();
        sys.insert_cluster_rows(&konv, &[mk_row("050")]).unwrap();
        let blob = sys.db.query("SELECT VARDATA FROM KOCLU").unwrap();
        assert_eq!(blob.rows.len(), 1, "single container row");
        let rows =
            decode_cluster_rows(blob.rows[0][0].as_str().unwrap(), konv.data_cluster_columns())
                .unwrap();
        assert_eq!(rows.len(), 2, "both logical rows in one blob");
    }

    #[test]
    fn pool_insert_encodes() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.001);
        let p = &gen.parts()[0];
        for (t, row) in crate::schema::part_rows(p) {
            sys.insert_logical(t, &row).unwrap();
        }
        let pool = sys.db.query("SELECT TABNAME, VARKEY FROM KAPOL").unwrap();
        assert_eq!(pool.rows.len(), 1);
        assert_eq!(pool.rows[0][0], Value::str("A004"));
    }

    #[test]
    fn prepared_interface_meters_crossings() {
        let sys = R3System::install_default(Release::R30).unwrap();
        let gen = DbGen::new(0.001);
        sys.load_tpcd(&gen).unwrap();
        sys.meter().reset();
        let r = sys
            .db_select_prepared(
                "SELECT NAME1 FROM KNA1 WHERE MANDT = ? AND KUNNR = ?",
                &[Value::str(MANDT), crate::schema::key16(1)],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        let snap = sys.snapshot();
        assert_eq!(snap.ipc_crossings(), 1);
        assert_eq!(snap.ipc_tuples(), 1);
        // Second call reuses the cursor (same plan object).
        assert!(sys
            .cached_plan_description("SELECT NAME1 FROM KNA1 WHERE MANDT = ? AND KUNNR = ?")
            .is_some());
    }

    #[test]
    fn sizes_inflate_vs_tpcd() {
        // The SAP representation of the same records must be several times
        // larger than the original TPC-D representation (paper Table 2).
        let gen = DbGen::new(0.001);
        let tpcd_db = Database::with_defaults();
        tpcd::schema::load(&tpcd_db, &gen).unwrap();
        let tpcd_total: u64 =
            tpcd::schema::table_sizes(&tpcd_db).unwrap().iter().map(|(_, d, _)| d).sum();

        let sys = R3System::install_default(Release::R22).unwrap();
        sys.load_tpcd(&gen).unwrap();
        let mut sap_total = 0u64;
        let mut seen = std::collections::HashSet::new();
        for t in crate::schema::SAP_TABLES {
            let lt = sys.dict.table(t).unwrap();
            let phys = match &lt.kind {
                TableKind::Transparent => t.to_string(),
                TableKind::Pool { container } | TableKind::Cluster { container, .. } => {
                    container.clone()
                }
            };
            if seen.insert(phys) {
                sap_total += sys.logical_table_sizes(t).unwrap().0;
            }
        }
        let ratio = sap_total as f64 / tpcd_total as f64;
        assert!(
            ratio > 4.0,
            "SAP data should be several times larger: {sap_total} vs {tpcd_total} ({ratio:.1}x)"
        );
    }
}
