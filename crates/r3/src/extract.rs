//! EIS-style data-warehouse extraction (paper §2.5 and §5, Table 9).
//!
//! To build a data warehouse, the data must leave SAP through its query
//! interfaces: Open SQL reports reconstruct the *original* TPC-D tables
//! from the partitioned SAP schema and write them out as ASCII. The cost
//! of these reports is the paper's Table 9 — comparable to running the
//! whole Open SQL power test once.

use crate::opensql::{Cond, SelectSpec};
use crate::system::R3System;
use crate::Release;
use rdbms::clock::Counter;
use rdbms::error::DbResult;
use rdbms::schema::Row;
use rdbms::types::Value;
use std::fmt::Write as _;

/// Result of extracting one TPC-D table.
pub struct ExtractResult {
    pub table: String,
    pub rows: u64,
    pub ascii_bytes: u64,
    pub seconds: f64,
}

fn ascii_line(out: &mut String, fields: &[&Value]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        let _ = write!(out, "{f}");
    }
    out.push('\n');
}

impl R3System {
    fn stxl_comment(&self, object: &str, name: &str) -> DbResult<Value> {
        let r = self.open_select(
            &SelectSpec::from_table("STXL")
                .fields(&["TDLINE"])
                .cond(Cond::eq("TDOBJECT", Value::str(object)))
                .cond(Cond::eq("TDNAME", Value::str(name)))
                .cond(Cond::eq("TDID", Value::str("0001")))
                .single(),
        )?;
        Ok(r.rows.first().map(|row| row[0].clone()).unwrap_or(Value::Null))
    }

    fn field(&self, result: &rdbms::QueryResult, row: &Row, name: &str) -> Value {
        let idx = result.schema.resolve(None, name).expect("extract field");
        self.meter().bump(Counter::AppTuples);
        row[idx].clone()
    }
}

/// Extract one TPC-D table through Open SQL; returns rows and ASCII bytes.
pub fn extract_table(sys: &R3System, table: &str) -> DbResult<ExtractResult> {
    let before = sys.snapshot();
    let mut out = String::new();
    let mut rows = 0u64;
    match table {
        "REGION" => {
            let r = sys.open_select(&SelectSpec::from_table("T005U"))?;
            for row in &r.rows {
                let regio = sys.field(&r, row, "REGIO");
                let name = sys.field(&r, row, "BEZEI");
                let comment = sys.stxl_comment("REGIO", regio.as_str()?)?;
                ascii_line(&mut out, &[&regio, &name, &comment]);
                rows += 1;
            }
        }
        "NATION" => {
            let r = sys.open_select(&SelectSpec::from_table("T005"))?;
            for row in &r.rows {
                let land1 = sys.field(&r, row, "LAND1");
                let regio = sys.field(&r, row, "REGIO");
                let names = sys.open_select(
                    &SelectSpec::from_table("T005T")
                        .fields(&["LANDX"])
                        .cond(Cond::eq("SPRAS", Value::str("E")))
                        .cond(Cond::eq("LAND1", land1.clone()))
                        .single(),
                )?;
                let name = names.rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null);
                let comment = sys.stxl_comment("LAND", land1.as_str()?)?;
                ascii_line(&mut out, &[&land1, &name, &regio, &comment]);
                rows += 1;
            }
        }
        "SUPPLIER" => {
            let r = sys.open_select(&SelectSpec::from_table("LFA1"))?;
            for row in &r.rows {
                let lifnr = sys.field(&r, row, "LIFNR");
                let comment = sys.stxl_comment("LFA1", lifnr.as_str()?)?;
                ascii_line(
                    &mut out,
                    &[
                        &lifnr,
                        &sys.field(&r, row, "NAME1"),
                        &sys.field(&r, row, "STRAS"),
                        &sys.field(&r, row, "LAND1"),
                        &sys.field(&r, row, "TELF1"),
                        &sys.field(&r, row, "SALDO"),
                        &comment,
                    ],
                );
                rows += 1;
            }
        }
        "PART" => {
            let r = sys.open_select(&SelectSpec::from_table("MARA"))?;
            for row in &r.rows {
                let matnr = sys.field(&r, row, "MATNR");
                let name = sys
                    .open_select(
                        &SelectSpec::from_table("MAKT")
                            .fields(&["MAKTX"])
                            .cond(Cond::eq("MATNR", matnr.clone()))
                            .cond(Cond::eq("SPRAS", Value::str("E")))
                            .single(),
                    )?
                    .rows
                    .first()
                    .map(|r| r[0].clone())
                    .unwrap_or(Value::Null);
                // Retail price: through the pool table A004 to KONP.
                let a004 = sys.open_select(
                    &SelectSpec::from_table("A004")
                        .cond(Cond::eq("KAPPL", Value::str("V")))
                        .cond(Cond::eq("KSCHL", Value::str("PR00")))
                        .cond(Cond::eq("MATNR", matnr.clone()))
                        .single(),
                )?;
                let price = match a004.rows.first() {
                    Some(arow) => {
                        let knumh_idx = a004.schema.resolve(None, "KNUMH")?;
                        sys.open_select(
                            &SelectSpec::from_table("KONP")
                                .fields(&["KBETR"])
                                .cond(Cond::eq("KNUMH", arow[knumh_idx].clone()))
                                .single(),
                        )?
                        .rows
                        .first()
                        .map(|r| r[0].clone())
                        .unwrap_or(Value::Null)
                    }
                    None => Value::Null,
                };
                let comment = sys.stxl_comment("MATERIAL", matnr.as_str()?)?;
                ascii_line(
                    &mut out,
                    &[
                        &matnr,
                        &name,
                        &sys.field(&r, row, "MFRNR"),
                        &sys.field(&r, row, "MATKL"),
                        &sys.field(&r, row, "MTART"),
                        &sys.field(&r, row, "GROES"),
                        &sys.field(&r, row, "MAGRV"),
                        &price,
                        &comment,
                    ],
                );
                rows += 1;
            }
        }
        "PARTSUPP" => {
            let r = sys.open_select(&SelectSpec::from_table("EINA"))?;
            for row in &r.rows {
                let infnr = sys.field(&r, row, "INFNR");
                let eine = sys.open_select(
                    &SelectSpec::from_table("EINE")
                        .fields(&["NETPR", "BSTMA"])
                        .cond(Cond::eq("INFNR", infnr.clone()))
                        .single(),
                )?;
                let (cost, qty) = match eine.rows.first() {
                    Some(e) => (e[0].clone(), e[1].clone()),
                    None => (Value::Null, Value::Null),
                };
                let comment = sys.stxl_comment("INFO", infnr.as_str()?.trim_end())?;
                ascii_line(
                    &mut out,
                    &[
                        &sys.field(&r, row, "MATNR"),
                        &sys.field(&r, row, "LIFNR"),
                        &qty,
                        &cost,
                        &comment,
                    ],
                );
                rows += 1;
            }
        }
        "CUSTOMER" => {
            let r = sys.open_select(&SelectSpec::from_table("KNA1"))?;
            for row in &r.rows {
                let kunnr = sys.field(&r, row, "KUNNR");
                let comment = sys.stxl_comment("KNA1", kunnr.as_str()?)?;
                ascii_line(
                    &mut out,
                    &[
                        &kunnr,
                        &sys.field(&r, row, "NAME1"),
                        &sys.field(&r, row, "STRAS"),
                        &sys.field(&r, row, "LAND1"),
                        &sys.field(&r, row, "TELF1"),
                        &sys.field(&r, row, "SALDO"),
                        &sys.field(&r, row, "KDGRP"),
                        &comment,
                    ],
                );
                rows += 1;
            }
        }
        "ORDER" => {
            let r = sys.open_select(&SelectSpec::from_table("VBAK"))?;
            for row in &r.rows {
                let vbeln = sys.field(&r, row, "VBELN");
                let comment = sys.stxl_comment("VBBK", vbeln.as_str()?)?;
                ascii_line(
                    &mut out,
                    &[
                        &vbeln,
                        &sys.field(&r, row, "KUNNR"),
                        &sys.field(&r, row, "VBTYP"),
                        &sys.field(&r, row, "NETWR"),
                        &sys.field(&r, row, "AUDAT"),
                        &sys.field(&r, row, "PRIOK"),
                        &sys.field(&r, row, "ERNAM"),
                        &sys.field(&r, row, "SPRIO"),
                        &comment,
                    ],
                );
                rows += 1;
            }
        }
        "LINEITEM" => {
            // Per-document reconstruction: items + schedule lines +
            // pricing conditions + text — the n-way reassembly that makes
            // extraction "extremely complex reports" (§5).
            let orders =
                sys.open_select(&SelectSpec::from_table("VBAK").fields(&["VBELN", "KNUMV"]))?;
            for orow in &orders.rows {
                let vbeln = orow[0].clone();
                let knumv = orow[1].clone();
                let (items, eteps, konv) = lineitem_parts(sys, &vbeln, &knumv)?;
                let posnr_idx = items.schema.resolve(None, "POSNR")?;
                for irow in &items.rows {
                    let posnr = irow[posnr_idx].clone();
                    let etep = find_by(sys, &eteps, "POSNR", &posnr);
                    let disc = find_konv(sys, &konv, &posnr, "DISC");
                    let tax = find_konv(sys, &konv, &posnr, "TAX");
                    let comment = sys
                        .stxl_comment("VBBP", &format!("{}{}", vbeln.as_str()?, posnr.as_str()?))?;
                    let mut fields: Vec<Value> = vec![
                        vbeln.clone(),
                        sys.field(&items, irow, "MATNR"),
                        sys.field(&items, irow, "LIFNR"),
                        posnr.clone(),
                        sys.field(&items, irow, "KWMENG"),
                        sys.field(&items, irow, "NETWR"),
                        disc,
                        tax,
                        sys.field(&items, irow, "RFLAG"),
                        sys.field(&items, irow, "LSTAT"),
                    ];
                    if let Some(e) = etep {
                        fields.push(sys.field(&eteps, &e, "EDATU"));
                        fields.push(sys.field(&eteps, &e, "WADAT"));
                        fields.push(sys.field(&eteps, &e, "LDDAT"));
                        fields.push(sys.field(&eteps, &e, "VSART"));
                        fields.push(sys.field(&eteps, &e, "LIFSP"));
                    }
                    fields.push(comment);
                    let refs: Vec<&Value> = fields.iter().collect();
                    ascii_line(&mut out, &refs);
                    rows += 1;
                }
            }
        }
        other => return Err(rdbms::DbError::analysis(format!("unknown TPC-D table '{other}'"))),
    }
    let work = sys.snapshot().since(&before);
    Ok(ExtractResult {
        table: table.to_string(),
        rows,
        ascii_bytes: out.len() as u64,
        seconds: sys.calibration().seconds(&work),
    })
}

type Parts = (rdbms::QueryResult, rdbms::QueryResult, rdbms::QueryResult);

fn lineitem_parts(sys: &R3System, vbeln: &Value, knumv: &Value) -> DbResult<Parts> {
    let items = match sys.release {
        // The reconstruction logic is identical across releases; what
        // differs is how KONV is physically read (cluster vs transparent),
        // which open_select handles through the dictionary.
        Release::R30 | Release::R22 => sys.open_select(
            &SelectSpec::from_table("VBAP")
                .fields(&["POSNR", "MATNR", "LIFNR", "KWMENG", "NETWR", "RFLAG", "LSTAT"])
                .cond(Cond::eq("VBELN", vbeln.clone())),
        )?,
    };
    let eteps = sys.open_select(
        &SelectSpec::from_table("VBEP")
            .fields(&["POSNR", "EDATU", "WADAT", "LDDAT", "VSART", "LIFSP"])
            .cond(Cond::eq("VBELN", vbeln.clone())),
    )?;
    let konv = sys.open_select(
        &SelectSpec::from_table("KONV")
            .fields(&["KPOSN", "KSCHL", "KBETR"])
            .cond(Cond::eq("KNUMV", knumv.clone())),
    )?;
    Ok((items, eteps, konv))
}

fn find_by(sys: &R3System, result: &rdbms::QueryResult, col: &str, key: &Value) -> Option<Row> {
    let idx = result.schema.resolve(None, col).ok()?;
    for row in &result.rows {
        sys.meter().bump(Counter::AppTuples);
        if row[idx].group_eq(key) {
            return Some(row.clone());
        }
    }
    None
}

fn find_konv(sys: &R3System, konv: &rdbms::QueryResult, posnr: &Value, kschl: &str) -> Value {
    let kposn = konv.schema.resolve(None, "KPOSN").expect("KPOSN");
    let ks = konv.schema.resolve(None, "KSCHL").expect("KSCHL");
    let kbetr = konv.schema.resolve(None, "KBETR").expect("KBETR");
    for row in &konv.rows {
        sys.meter().bump(Counter::AppTuples);
        if row[kposn].group_eq(posnr) && row[ks].group_eq(&Value::str(kschl)) {
            return row[kbetr].clone();
        }
    }
    Value::Null
}

/// Extract all eight TPC-D tables (the paper's Table 9 run).
pub fn extract_warehouse(sys: &R3System) -> DbResult<Vec<ExtractResult>> {
    ["REGION", "NATION", "SUPPLIER", "PART", "PARTSUPP", "CUSTOMER", "ORDER", "LINEITEM"]
        .iter()
        .map(|t| extract_table(sys, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcd::DbGen;

    #[test]
    fn extraction_reconstructs_all_tables() {
        let sys = R3System::install_default(Release::R30).unwrap();
        let gen = DbGen::new(0.0005);
        sys.load_tpcd(&gen).unwrap();
        let results = extract_warehouse(&sys).unwrap();
        assert_eq!(results.len(), 8);
        let by_name = |n: &str| results.iter().find(|r| r.table == n).unwrap();
        assert_eq!(by_name("REGION").rows, 5);
        assert_eq!(by_name("NATION").rows, 25);
        assert_eq!(by_name("PART").rows, gen.n_parts() as u64);
        assert_eq!(by_name("CUSTOMER").rows, gen.n_customers() as u64);
        assert_eq!(by_name("ORDER").rows, gen.n_orders() as u64);
        let (_, lineitems) = gen.orders_and_lineitems();
        assert_eq!(by_name("LINEITEM").rows, lineitems.len() as u64);
        // LINEITEM dominates the cost, as in Table 9.
        let li = by_name("LINEITEM");
        for r in &results {
            if r.table != "LINEITEM" {
                assert!(li.seconds >= r.seconds, "{} vs LINEITEM", r.table);
            }
        }
        assert!(li.ascii_bytes > 1000);
    }

    #[test]
    fn extraction_works_on_22_with_cluster_konv() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.0005);
        sys.load_tpcd(&gen).unwrap();
        let li = extract_table(&sys, "LINEITEM").unwrap();
        let (_, lineitems) = gen.orders_and_lineitems();
        assert_eq!(li.rows, lineitems.len() as u64);
    }
}
