//! # r3 — a three-tier SAP R/3 application-system simulator
//!
//! The application-system side of the SIGMOD'97 reproduction. Implements
//! the architecture of the paper's Figures 1 and 2:
//!
//! * a **data dictionary** with transparent / pool / cluster logical tables
//!   ([`dict`], [`schema`]),
//! * the **Open SQL** interface — portable, dictionary-mediated,
//!   release-gated (no joins/aggregates in 2.2; joins and *simple*
//!   aggregates in 3.0), automatic client (MANDT) injection, translation
//!   into parameterized SQL with cursor caching ([`opensql`]),
//! * the **Native SQL** interface — `EXEC SQL` pass-through that cannot
//!   touch encapsulated tables ([`nativesql`]),
//! * an **application-server table buffer** ([`buffer`]),
//! * an ABAP-style **report runtime** with internal tables and
//!   EXTRACT/SORT/LOOP…AT END OF processing, including the sort-spill
//!   behaviour of §4.2 ([`report`]),
//! * the **batch-input** facility with per-record consistency checking
//!   ([`batch_input`]),
//! * an **ST05-style SQL trace** recording every statement that crosses
//!   the RDBMS interface ([`sqltrace`]),
//! * **ST03-style workload statistics** rolled up per task type and
//!   work-process class, published as the `M$WORKLOAD` monitor view
//!   ([`workload`]),
//! * **EIS warehouse extraction** ([`extract`]),
//! * and the TPC-D **reports** in four variants each — Native/Open SQL ×
//!   Release 2.2/3.0 ([`reports`]).

pub mod batch_input;
pub mod buffer;
pub mod dict;
pub mod dispatcher;
pub mod extract;
pub mod nativesql;
pub mod opensql;
pub mod report;
pub mod reports;
pub mod schema;
pub mod sqltrace;
pub mod system;
pub mod throughput;
pub mod workload;

pub use sqltrace::{SqlOp, SqlTrace, SqlTraceEntry};
pub use system::R3System;
pub use workload::{TaskStats, WorkloadMonitor};

/// SAP R/3 release. Gates Open SQL features and the KONV representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Release {
    /// Release 2.2G: Open SQL is single-table (plus join views); no
    /// grouping/aggregation push-down; KONV is a cluster table.
    R22,
    /// Release 3.0E: Open SQL joins and simple aggregations push down;
    /// KONV converted to a transparent table.
    R30,
}

impl std::fmt::Display for Release {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Release::R22 => write!(f, "2.2G"),
            Release::R30 => write!(f, "3.0E"),
        }
    }
}
