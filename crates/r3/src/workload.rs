//! ST03-style workload statistics.
//!
//! SAP's transaction ST03 is the paper's primary tuning instrument at the
//! application-server level: dialog steps per transaction type with their
//! response-time decomposition (dispatcher queue, work-process service,
//! database share). The [`WorkloadMonitor`] is that roll-up for the
//! simulator: every completed dispatcher request is folded into an
//! aggregate keyed by *task type* — the request name with any trailing
//! `-<digits>` instance suffix stripped, so `order-17` and `order-18` are
//! one line — and work-process class. The aggregate is published as the
//! `M$WORKLOAD` monitor view, readable over the wire while the dispatcher
//! is still serving.

use crate::dispatcher::{RequestStats, WpKind};
use parking_lot::Mutex;
use rdbms::clock::Calibration;
use rdbms::monitor::MonitorView;
use rdbms::schema::Column;
use rdbms::types::{DataType, Value};
use serde_json::Json;
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated statistics for one (task type, work-process class) pair.
#[derive(Debug, Clone, Default)]
pub struct TaskStats {
    /// Completed dispatcher steps (ST03's "dialog steps" for DIA).
    pub steps: u64,
    /// Steps whose job returned an error.
    pub errors: u64,
    /// Total time spent in the dispatcher queue, microseconds.
    pub queue_us: u64,
    /// Total time inside a work process, microseconds.
    pub service_us: u64,
    /// Calibrated database share of the service time, microseconds.
    pub db_us: u64,
}

impl TaskStats {
    pub fn mean_service_us(&self) -> u64 {
        self.service_us.checked_div(self.steps).unwrap_or(0)
    }
}

/// Strip a trailing `-<digits>` instance suffix: `order-17` → `order`,
/// `ship` → `ship`. Names whose tail is not numeric are left alone.
pub fn task_type(name: &str) -> &str {
    match name.rsplit_once('-') {
        Some((head, tail)) if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) => head,
        _ => name,
    }
}

/// The roll-up. One per [`crate::R3System`]; the dispatcher's work
/// processes record into it concurrently.
#[derive(Debug, Default)]
pub struct WorkloadMonitor {
    inner: Mutex<HashMap<(String, WpKind), TaskStats>>,
}

impl WorkloadMonitor {
    pub fn new() -> Arc<WorkloadMonitor> {
        Arc::new(WorkloadMonitor::default())
    }

    /// Fold one completed request in. `cal` converts the request's metered
    /// work into its simulated database time.
    pub fn record(&self, stats: &RequestStats, cal: &Calibration) {
        let key = (task_type(&stats.name).to_string(), stats.kind);
        let mut inner = self.inner.lock();
        let agg = inner.entry(key).or_default();
        agg.steps += 1;
        agg.errors += stats.result.is_err() as u64;
        agg.queue_us += stats.queue_wait.as_micros() as u64;
        agg.service_us += stats.service.as_micros() as u64;
        agg.db_us += (stats.db_seconds(cal) * 1_000_000.0) as u64;
    }

    /// Point-in-time roll-up, sorted by task type then class.
    pub fn snapshot(&self) -> Vec<(String, WpKind, TaskStats)> {
        let inner = self.inner.lock();
        let mut out: Vec<(String, WpKind, TaskStats)> =
            inner.iter().map(|((t, k), s)| (t.clone(), *k, s.clone())).collect();
        out.sort_by(|a, b| (&a.0, a.1.to_string()).cmp(&(&b.0, b.1.to_string())));
        out
    }

    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// Build the `M$WORKLOAD` view over this monitor.
    pub fn view(self: &Arc<Self>) -> Arc<MonitorView> {
        let monitor = Arc::clone(self);
        MonitorView::new(
            "M$WORKLOAD",
            vec![
                Column::new("TASK_TYPE", DataType::VarChar(64)),
                Column::new("WP_TYPE", DataType::VarChar(8)),
                Column::new("STEPS", DataType::Int),
                Column::new("ERRORS", DataType::Int),
                Column::new("QUEUE_US", DataType::Int),
                Column::new("SERVICE_US", DataType::Int),
                Column::new("DB_US", DataType::Int),
                Column::new("MEAN_SERVICE_US", DataType::Int),
            ],
            move || {
                monitor
                    .snapshot()
                    .into_iter()
                    .map(|(task, kind, s)| {
                        vec![
                            Value::str(task),
                            Value::str(kind.to_string()),
                            Value::Int(s.steps as i64),
                            Value::Int(s.errors as i64),
                            Value::Int(s.queue_us as i64),
                            Value::Int(s.service_us as i64),
                            Value::Int(s.db_us as i64),
                            Value::Int(s.mean_service_us() as i64),
                        ]
                    })
                    .collect()
            },
        )
    }

    pub fn to_json(&self) -> Json {
        let mut arr = Vec::new();
        for (task, kind, s) in self.snapshot() {
            arr.push(
                Json::object()
                    .field("task_type", task)
                    .field("wp_type", kind.to_string())
                    .field("steps", s.steps)
                    .field("errors", s.errors)
                    .field("queue_us", s.queue_us)
                    .field("service_us", s.service_us)
                    .field("db_us", s.db_us),
            );
        }
        Json::Array(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbms::clock::MeterSnapshot;
    use std::time::Duration;

    fn stats(name: &str, kind: WpKind, queue_ms: u64, service_ms: u64) -> RequestStats {
        RequestStats {
            name: name.to_string(),
            kind,
            worker: "DIA-0".into(),
            trace_id: 0,
            queue_wait: Duration::from_millis(queue_ms),
            service: Duration::from_millis(service_ms),
            work: MeterSnapshot::default(),
            result: Ok(()),
        }
    }

    #[test]
    fn task_type_strips_instance_suffix_only() {
        assert_eq!(task_type("order-17"), "order");
        assert_eq!(task_type("order-17-3"), "order-17");
        assert_eq!(task_type("ship"), "ship");
        assert_eq!(task_type("q3-run"), "q3-run");
        assert_eq!(task_type("x-"), "x-");
    }

    #[test]
    fn steps_aggregate_by_task_type_and_class() {
        let monitor = WorkloadMonitor::new();
        let cal = Calibration::default();
        monitor.record(&stats("order-1", WpKind::Dialog, 1, 10), &cal);
        monitor.record(&stats("order-2", WpKind::Dialog, 3, 30), &cal);
        monitor.record(&stats("update-1", WpKind::Batch, 0, 5), &cal);
        let snap = monitor.snapshot();
        assert_eq!(snap.len(), 2);
        let (task, kind, s) = &snap[0];
        assert_eq!((task.as_str(), *kind), ("order", WpKind::Dialog));
        assert_eq!(s.steps, 2);
        assert_eq!(s.queue_us, 4_000);
        assert_eq!(s.service_us, 40_000);
        assert_eq!(s.mean_service_us(), 20_000);
        assert_eq!(snap[1].0, "update");

        let view = monitor.view();
        assert_eq!(view.name(), "M$WORKLOAD");
        assert_eq!(view.rows().len(), 2);
        monitor.reset();
        assert!(monitor.snapshot().is_empty());
        assert!(view.rows().is_empty(), "view reads live state, not a copy");
    }
}
