//! The batch-input facility (paper §2.4, §3.4.2).
//!
//! Batch input "simulates an interactive entry of data": records read from
//! an external file are pushed through the *full application logic*, so
//! every record is individually validated before being inserted a tuple at
//! a time — SAP "does not exploit the bulk loading interface of the RDBMS".
//! That is why the paper's Table 3 shows a month-long load.
//!
//! The consistency checks implemented per record (each metered as
//! check-units plus its real database probes):
//!
//! * field-format validation against the data dictionary (type, width,
//!   NOT NULL of key fields);
//! * referential checks through SELECT SINGLE (customer exists for an
//!   order; part, supplier and info record exist for an item; country
//!   exists for a master record) — these benefit from table buffering;
//! * duplicate-key probe (the document number must be free);
//! * number-range bookkeeping (the NRIV-style counter table is read and
//!   updated per document);
//! * finally the tuple-at-a-time inserts into every affected SAP table.

use crate::opensql::{Cond, SelectSpec};
use crate::schema::{self, key16, MANDT};
use crate::system::R3System;
use rdbms::clock::Counter;
use rdbms::error::{DbError, DbResult};
use rdbms::schema::Row;
use rdbms::types::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use tpcd::records::{Customer, LineItem, Order, Part, PartSupp, Supplier};

/// How many check-units one record of each type costs on top of its real
/// database probes (dialog simulation, screen logic, authority checks, ...).
fn base_checks(table_rows: usize) -> u64 {
    2 + table_rows as u64
}

impl R3System {
    fn check(&self, units: u64) {
        self.meter().add(Counter::CheckUnits, units);
    }

    /// Validate a row against the dictionary (formats, widths, key NOT
    /// NULL) — one check unit plus errors on violation.
    fn validate_row(&self, table: &str, row: &[Value]) -> DbResult<()> {
        let lt = self.dict.table(table)?;
        self.check(1);
        if row.len() != lt.columns.len() {
            return Err(DbError::execution(format!(
                "batch input: {table} row arity {} != {}",
                row.len(),
                lt.columns.len()
            )));
        }
        for (v, col) in row.iter().zip(&lt.columns) {
            if v.is_null() {
                if !col.nullable {
                    return Err(DbError::constraint(format!(
                        "batch input: {table}.{} is a key field and may not be initial",
                        col.name
                    )));
                }
                continue;
            }
            v.coerce_to(&col.ty).map_err(|e| {
                DbError::execution(format!("batch input: {table}.{}: {e}", col.name))
            })?;
        }
        Ok(())
    }

    /// SELECT SINGLE existence probe (buffer-aware).
    fn must_exist(&self, table: &str, conds: Vec<Cond>) -> DbResult<()> {
        self.check(1);
        let mut spec = SelectSpec::from_table(table).single();
        spec.conds = conds;
        let r = self.open_select(&spec)?;
        if r.rows.is_empty() {
            return Err(DbError::constraint(format!(
                "batch input: referenced {table} record does not exist"
            )));
        }
        Ok(())
    }

    fn must_not_exist(&self, table: &str, conds: Vec<Cond>) -> DbResult<()> {
        self.check(1);
        let mut spec = SelectSpec::from_table(table).single();
        spec.conds = conds;
        let r = self.open_select(&spec)?;
        if !r.rows.is_empty() {
            return Err(DbError::constraint(format!(
                "batch input: {table} document already exists"
            )));
        }
        Ok(())
    }

    /// Number-range bookkeeping: read + update the interval counter.
    /// Serialized, as SAP serializes number-range intervals.
    fn allocate_number(&self, object: &str) -> DbResult<()> {
        let _guard = self.number_range_lock.lock();
        self.check(1);
        // The NRIV table is created lazily (single-threaded setup phase).
        {
            let created = self.db.catalog().try_table("NRIV").is_some();
            if !created {
                let _ = self.db.execute(
                    "CREATE TABLE NRIV (MANDT CHAR(3) NOT NULL, OBJECT CHAR(10) NOT NULL, \
                     NRLEVEL INTEGER, PRIMARY KEY (MANDT, OBJECT))",
                );
            }
        }
        let existing = self.db_select_prepared(
            "SELECT NRLEVEL FROM NRIV WHERE MANDT = ? AND OBJECT = ?",
            &[Value::str(MANDT), Value::str(object)],
        )?;
        if existing.rows.is_empty() {
            self.db.insert_row("NRIV", &[Value::str(MANDT), Value::str(object), Value::Int(1)])?;
        } else {
            let n = existing.rows[0][0].as_int()? + 1;
            let traced = self.sql_trace.begin();
            self.meter().bump(Counter::IpcCrossings);
            let sql = format!(
                "UPDATE NRIV SET NRLEVEL = {n} WHERE MANDT = '{MANDT}' AND OBJECT = '{object}'"
            );
            self.db.execute(&sql)?;
            if let Some(t) = traced {
                t.finish(crate::sqltrace::SqlOp::Exec, sql, &[], 1, 1);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Per-record-type transactions
    // ------------------------------------------------------------------

    pub fn batch_input_supplier(&self, s: &Supplier) -> DbResult<()> {
        let rows = schema::supplier_rows(s);
        self.check(base_checks(rows.len()));
        self.must_exist("T005", vec![Cond::eq("LAND1", key16(s.nationkey))])?;
        for (t, row) in &rows {
            self.validate_row(t, row)?;
        }
        self.allocate_number("KRED")?;
        for (t, row) in &rows {
            self.open_insert(t, row)?;
        }
        self.commit_work()
    }

    pub fn batch_input_customer(&self, c: &Customer) -> DbResult<()> {
        let rows = schema::customer_rows(c);
        self.check(base_checks(rows.len()));
        self.must_exist("T005", vec![Cond::eq("LAND1", key16(c.nationkey))])?;
        for (t, row) in &rows {
            self.validate_row(t, row)?;
        }
        self.allocate_number("DEBI")?;
        for (t, row) in &rows {
            self.open_insert(t, row)?;
        }
        self.commit_work()
    }

    pub fn batch_input_part(&self, p: &Part) -> DbResult<()> {
        let rows = schema::part_rows(p);
        self.check(base_checks(rows.len()));
        for (t, row) in &rows {
            self.validate_row(t, row)?;
        }
        self.allocate_number("MATL")?;
        for (t, row) in &rows {
            self.open_insert(t, row)?;
        }
        self.commit_work()
    }

    pub fn batch_input_partsupp(&self, ps: &PartSupp) -> DbResult<()> {
        let rows = schema::partsupp_rows(ps);
        self.check(base_checks(rows.len()));
        self.must_exist("MARA", vec![Cond::eq("MATNR", key16(ps.partkey))])?;
        self.must_exist("LFA1", vec![Cond::eq("LIFNR", key16(ps.suppkey))])?;
        for (t, row) in &rows {
            self.validate_row(t, row)?;
        }
        self.allocate_number("INFO")?;
        for (t, row) in &rows {
            self.open_insert(t, row)?;
        }
        self.commit_work()
    }

    /// Orders and their lineitems "can only be loaded jointly" (§3.4.2).
    pub fn batch_input_order(&self, o: &Order, lineitems: &[&LineItem]) -> DbResult<()> {
        let order_rows = schema::order_rows(o);
        self.check(base_checks(order_rows.len()));
        self.must_exist("KNA1", vec![Cond::eq("KUNNR", key16(o.custkey))])?;
        self.must_not_exist("VBAK", vec![Cond::eq("VBELN", key16(o.orderkey))])?;
        self.allocate_number("VBELN")?;
        for (t, row) in &order_rows {
            self.validate_row(t, row)?;
        }
        // Items: per-item checks, then insert; KONV rows of the whole
        // document bundle into one cluster write under Release 2.2.
        let konv = self.dict.table("KONV")?;
        let mut konv_rows: Vec<Row> = Vec::new();
        for l in lineitems {
            let rows = schema::lineitem_rows(l);
            self.check(base_checks(rows.len()));
            self.must_exist("MARA", vec![Cond::eq("MATNR", key16(l.partkey))])?;
            self.must_exist("LFA1", vec![Cond::eq("LIFNR", key16(l.suppkey))])?;
            // The item must reference an existing purchasing relationship.
            self.must_exist("EINA", vec![Cond::eq("INFNR", schema::infnr(l.partkey, l.suppkey))])?;
            for (t, row) in &rows {
                self.validate_row(t, row)?;
            }
            for (t, row) in rows {
                if t == "KONV" && konv.kind.is_encapsulated() {
                    konv_rows.push(row);
                } else {
                    self.open_insert(t, &row)?;
                }
            }
        }
        for (t, row) in &order_rows {
            self.open_insert(t, row)?;
        }
        if !konv_rows.is_empty() {
            let traced = self.sql_trace.begin();
            self.meter().bump(Counter::IpcCrossings);
            self.insert_cluster_rows(&konv, &konv_rows)?;
            if let Some(t) = traced {
                t.finish(
                    crate::sqltrace::SqlOp::Insert,
                    "INSERT KONV (cluster batch)",
                    &[],
                    konv_rows.len() as u64,
                    1,
                );
            }
        }
        self.commit_work()
    }

    /// Delete one order document with its items (UF2 through the
    /// application logic — also checked tuple-at-a-time).
    pub fn batch_delete_order(&self, orderkey: i64) -> DbResult<()> {
        self.check(3);
        self.must_exist("VBAK", vec![Cond::eq("VBELN", key16(orderkey))])?;
        // Item long texts first (their keys come from the items).
        let items = self.open_select(
            &SelectSpec::from_table("VBAP")
                .fields(&["POSNR"])
                .cond(Cond::eq("VBELN", key16(orderkey))),
        )?;
        for row in &items.rows {
            let posnr = row[0].as_str()?;
            self.open_delete(
                "STXL",
                &[
                    Cond::eq("TDOBJECT", Value::str("VBBP")),
                    Cond::eq("TDNAME", Value::Str(format!("{orderkey:016}{posnr}"))),
                ],
            )?;
        }
        self.open_delete("VBAP", &[Cond::eq("VBELN", key16(orderkey))])?;
        self.open_delete("VBEP", &[Cond::eq("VBELN", key16(orderkey))])?;
        let konv = self.dict.table("KONV")?;
        if konv.kind.is_encapsulated() {
            let traced = self.sql_trace.begin();
            self.meter().bump(Counter::IpcCrossings);
            let n = self.delete_cluster_document("KONV", &key16(orderkey))?;
            if let Some(t) = traced {
                t.finish(
                    crate::sqltrace::SqlOp::Delete,
                    "DELETE KONV (cluster document)",
                    std::slice::from_ref(&key16(orderkey)),
                    n,
                    1,
                );
            }
        } else {
            self.open_delete("KONV", &[Cond::eq("KNUMV", key16(orderkey))])?;
        }
        self.open_delete(
            "STXL",
            &[
                Cond::eq("TDOBJECT", Value::str("VBBK")),
                Cond::eq("TDNAME", Value::Str(format!("{orderkey:016}"))),
            ],
        )?;
        self.open_delete("VBAK", &[Cond::eq("VBELN", key16(orderkey))])?;
        self.commit_work()
    }
}

/// Per-table timing of a batch-input load.
pub struct LoadTiming {
    pub table: String,
    pub seconds: f64,
    pub records: u64,
}

/// A full batch-input load of the TPC-D population with `workers` parallel
/// batch-input processes (the paper ran two). Returns per-table simulated
/// elapsed seconds — work divided by the worker count, as wall-clock
/// elapsed time would be.
pub fn batch_input_load(
    sys: &R3System,
    gen: &tpcd::DbGen,
    workers: usize,
) -> DbResult<Vec<LoadTiming>> {
    assert!(workers >= 1);
    let cal = sys.calibration();
    let mut out = Vec::new();

    // REGION and NATION were "typed in interactively" in the paper; load
    // them through the logical path without timing them.
    for n in gen.nations() {
        for (t, row) in schema::nation_rows(&n) {
            sys.insert_logical(t, &row)?;
        }
    }
    for r in gen.regions() {
        for (t, row) in schema::region_rows(&r) {
            sys.insert_logical(t, &row)?;
        }
    }

    macro_rules! timed {
        ($name:expr, $items:expr, $f:expr) => {{
            let items = $items;
            let before = sys.snapshot();
            run_parallel(sys, &items, workers, $f)?;
            let work = sys.snapshot().since(&before);
            out.push(LoadTiming {
                table: $name.to_string(),
                seconds: cal.seconds(&work) / workers as f64,
                records: items.len() as u64,
            });
        }};
    }

    timed!("SUPPLIER", gen.suppliers(), |s: &R3System, r: &Supplier| s.batch_input_supplier(r));
    timed!("PART", gen.parts(), |s: &R3System, r: &Part| s.batch_input_part(r));
    timed!("PARTSUPP", gen.partsupps(), |s: &R3System, r: &PartSupp| s.batch_input_partsupp(r));
    timed!("CUSTOMER", gen.customers(), |s: &R3System, r: &Customer| s.batch_input_customer(r));

    // ORDER + LINEITEM jointly.
    let (orders, lineitems) = gen.orders_and_lineitems();
    let docs: Vec<(Order, Vec<LineItem>)> = {
        let mut docs = Vec::with_capacity(orders.len());
        let mut idx = 0usize;
        for o in orders {
            let mut items = Vec::new();
            while idx < lineitems.len() && lineitems[idx].orderkey == o.orderkey {
                items.push(lineitems[idx].clone());
                idx += 1;
            }
            docs.push((o, items));
        }
        docs
    };
    timed!("ORDER+LINEITEM", docs, |s: &R3System, (o, items): &(Order, Vec<LineItem>)| {
        let refs: Vec<&LineItem> = items.iter().collect();
        s.batch_input_order(o, &refs)
    });

    sys.db.execute("ANALYZE")?;
    Ok(out)
}

/// Run a record batch through N worker threads (the paper's "two parallel
/// batch-input processes").
fn run_parallel<T: Sync>(
    sys: &R3System,
    items: &[T],
    workers: usize,
    f: impl Fn(&R3System, &T) -> DbResult<()> + Sync,
) -> DbResult<()> {
    if workers <= 1 || items.len() < 2 {
        for item in items {
            f(sys, item)?;
        }
        return Ok(());
    }
    let next = AtomicUsize::new(0);
    let errors: parking_lot::Mutex<Vec<DbError>> = parking_lot::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() || !errors.lock().is_empty() {
                    break;
                }
                if let Err(e) = f(sys, &items[i]) {
                    errors.lock().push(e);
                    break;
                }
            });
        }
    });
    match errors.into_inner().pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// UF1 via batch input (the SAP-side update function of Tables 4/5).
pub fn batch_uf1(sys: &R3System, gen: &tpcd::DbGen, stream: u64) -> DbResult<u64> {
    let (orders, lineitems) = gen.update_stream(stream);
    let mut idx = 0usize;
    let mut n = 0u64;
    for o in &orders {
        let mut items: Vec<&LineItem> = Vec::new();
        while idx < lineitems.len() && lineitems[idx].orderkey == o.orderkey {
            items.push(&lineitems[idx]);
            idx += 1;
        }
        sys.batch_input_order(o, &items)?;
        n += 1 + items.len() as u64;
    }
    Ok(n)
}

/// UF2 via batch input.
pub fn batch_uf2(sys: &R3System, gen: &tpcd::DbGen, stream: u64) -> DbResult<u64> {
    let (orders, _) = gen.update_stream(stream);
    for o in &orders {
        sys.batch_delete_order(o.orderkey)?;
    }
    Ok(orders.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Release;
    use rdbms::clock::Counter;
    use tpcd::DbGen;

    #[test]
    fn batch_load_small() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.0005);
        let timings = batch_input_load(&sys, &gen, 1).unwrap();
        assert_eq!(timings.len(), 5);
        // Consistency-check work dominates and was metered.
        assert!(sys.meter().get(Counter::CheckUnits) > 1000);
        // ORDER+LINEITEM is by far the slowest (paper: 25 of ~30 days).
        let order_t = timings.iter().find(|t| t.table == "ORDER+LINEITEM").unwrap();
        for t in &timings {
            if t.table != "ORDER+LINEITEM" {
                assert!(
                    order_t.seconds > t.seconds,
                    "{} ({}) should be under ORDER+LINEITEM ({})",
                    t.table,
                    t.seconds,
                    order_t.seconds
                );
            }
        }
        // The data is actually there and consistent.
        let vbak: i64 = sys
            .db
            .query("SELECT COUNT(*) FROM VBAK WHERE MANDT = '301'")
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(vbak, gen.n_orders());
    }

    #[test]
    fn two_workers_halve_elapsed_time() {
        let gen = DbGen::new(0.0005);
        let sys1 = R3System::install_default(Release::R22).unwrap();
        let t1 = batch_input_load(&sys1, &gen, 1).unwrap();
        let sys2 = R3System::install_default(Release::R22).unwrap();
        let t2 = batch_input_load(&sys2, &gen, 2).unwrap();
        let total1: f64 = t1.iter().map(|t| t.seconds).sum();
        let total2: f64 = t2.iter().map(|t| t.seconds).sum();
        let ratio = total1 / total2;
        assert!(
            (1.4..=2.8).contains(&ratio),
            "two workers should roughly halve elapsed time, got {ratio:.2}"
        );
    }

    #[test]
    fn bad_references_rejected() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.0005);
        // No customers loaded yet: an order must fail its existence check.
        let (orders, lineitems) = gen.orders_and_lineitems();
        let items: Vec<&LineItem> = lineitems.iter().take(1).collect();
        let err = sys.batch_input_order(&orders[0], &items);
        assert!(err.is_err(), "order without customer must be rejected");
    }

    #[test]
    fn duplicate_order_rejected() {
        let sys = R3System::install_default(Release::R22).unwrap();
        let gen = DbGen::new(0.0005);
        batch_input_load(&sys, &gen, 1).unwrap();
        let (orders, lineitems) = gen.orders_and_lineitems();
        let items: Vec<&LineItem> =
            lineitems.iter().filter(|l| l.orderkey == orders[0].orderkey).collect();
        let err = sys.batch_input_order(&orders[0], &items);
        assert!(err.is_err(), "duplicate document number must be rejected");
    }

    #[test]
    fn uf1_uf2_round_trip() {
        for release in [Release::R22, Release::R30] {
            let sys = R3System::install_default(release).unwrap();
            let gen = DbGen::new(0.0005);
            sys.load_tpcd(&gen).unwrap();
            let count = |sql: &str| -> i64 {
                sys.db.query(sql).unwrap().scalar().unwrap().as_int().unwrap()
            };
            let before = count("SELECT COUNT(*) FROM VBAP");
            batch_uf1(&sys, &gen, 1).unwrap();
            assert!(count("SELECT COUNT(*) FROM VBAP") > before, "{release:?}: UF1 inserted");
            batch_uf2(&sys, &gen, 1).unwrap();
            assert_eq!(
                count("SELECT COUNT(*) FROM VBAP"),
                before,
                "{release:?}: UF2 restored the population"
            );
        }
    }
}
